//! Offline stand-in for the `proptest` crate (API subset, no shrinking).
//!
//! Provides the pieces the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], the `proptest!` macro with
//! optional `#![proptest_config(...)]` header, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, by design of this offline shim:
//!
//! - **No shrinking.** A failing case reports its case index and the
//!   deterministic per-test seed, not a minimized input.
//! - Cases default to 64 per test (override with the `PROPTEST_CASES`
//!   environment variable or `ProptestConfig::with_cases`).
//! - Value generation is driven by the workspace's vendored `rand` shim,
//!   so runs are reproducible across machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Test-runner plumbing: RNG and per-test configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// RNG handed to strategies during generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Deterministic per-test stream: FNV-1a of the test name, xored
        /// with `PROPTEST_SEED` when set.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra;
                }
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        let mid = self.source.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::Rng::gen(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::Rng::gen(rng)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Finite values spanning a wide magnitude range (no NaN/inf).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mantissa: f64 = rand::Rng::gen_range(rng, -1.0f64..1.0);
        let exp: i32 = rand::Rng::gen_range(rng, 0u32..61) as i32 - 30;
        mantissa * 2f64.powi(exp)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy with the given element strategy and length bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each function body runs once per generated
/// case, with every `name in strategy` binding drawn fresh.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    move || $body
                ));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed (set PROPTEST_SEED/PROPTEST_CASES to vary)",
                        stringify!($name),
                        case + 1,
                        config.cases,
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let x = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&y));
            let z = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&z));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = Strategy::generate(&collection::vec(0usize..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            let fixed = Strategy::generate(&collection::vec(0.0f64..1.0, 6), &mut rng);
            assert_eq!(fixed.len(), 6);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat =
            (1usize..5).prop_flat_map(|n| collection::vec(0usize..n, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0usize..10, b in collection::vec(any::<bool>(), 0..5)) {
            prop_assert!(a < 10);
            prop_assert!(b.len() < 5);
        }

        #[test]
        fn tuples_generate(pair in (0usize..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
            let _: bool = pair.1;
        }
    }
}
