//! Offline stand-in for the `rand` crate (API subset).
//!
//! This workspace builds in a network-isolated container, so the real
//! `rand` cannot be fetched from crates.io. This shim provides the exact
//! API subset the workspace uses — `Rng` (`gen`, `gen_bool`, `gen_range`),
//! `SeedableRng::seed_from_u64`, `rngs::StdRng` and `seq::SliceRandom` —
//! with the same trait shapes, so swapping the real crate back in is a
//! one-line Cargo change.
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — a
//! high-quality, fast, reproducible stream. It does **not** reproduce the
//! byte streams of the real `rand::rngs::StdRng` (ChaCha12); all seeds in
//! this workspace are workspace-internal, so only determinism matters,
//! not cross-crate stream compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::should_implement_trait)] // Rng::gen mirrors the real crate.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG (the shim's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire) without the
                // rejection step: the bias is < 2^-64 * span, irrelevant for
                // the workspace's simulation seeds.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_single(rng)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start.wrapping_add(hi as i64)
    }
}

/// High-level random value API (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 as the xoshiro reference code recommends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&x));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in place");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
