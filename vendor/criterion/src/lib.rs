//! Offline stand-in for the `criterion` benchmark harness (API subset).
//!
//! Implements the `criterion_group!`/`criterion_main!` entry points,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `Bencher::iter` and
//! `BenchmarkId`, which is everything the workspace's `benches/` use.
//! Timing is a plain warmup + fixed-budget wall-clock sampler that reports
//! mean/min per iteration; there is no statistical regression machinery.
//! Benchmarks run with `cargo bench` and accept a substring filter:
//! `cargo bench --bench phase_step -- kernel`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    /// Per-iteration wall-clock samples (ns), filled by [`Bencher::iter`].
    samples_ns: Vec<f64>,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling batches of calls
    /// until the time budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + per-call estimate.
        let warmup_start = Instant::now();
        let mut calls = 0u64;
        while calls < 3 || warmup_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            calls += 1;
            if calls > 1_000_000 {
                break;
            }
        }
        let per_call = warmup_start.elapsed().as_secs_f64() / calls as f64;
        // Sample batches sized to ~1/20 of the budget each.
        let batch = ((self.budget.as_secs_f64() / 20.0 / per_call.max(1e-9)) as u64).max(1);
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark manager. Holds the CLI filter and global settings.
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Reads a substring filter from the command line (ignores flags).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_budget: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(&id.id, self.budget, &self.filter, f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_budget: Option<Duration>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; scales the time budget with the
    /// requested sample count (criterion's default is 100 samples).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let base = self.criterion.budget.as_secs_f64();
        self.sample_budget = Some(Duration::from_secs_f64((base * n as f64 / 100.0).max(0.05)));
        self
    }

    fn budget(&self) -> Duration {
        self.sample_budget.unwrap_or(self.criterion.budget)
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.budget(), &self.criterion.filter, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one(
    full_name: &str,
    budget: Duration,
    filter: &Option<String>,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(pat) = filter {
        if !full_name.contains(pat.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples_ns: Vec::new(),
        budget,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{full_name:<40} (no samples: Bencher::iter never called)");
        return;
    }
    let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
    let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{full_name:<40} time: [min {:<12} mean {:<12}] ({} samples)",
        fmt_ns(min),
        fmt_ns(mean),
        b.samples_ns.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            budget: Duration::from_millis(30),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(!b.samples_ns.is_empty());
        assert!(b.samples_ns.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(2116).id, "2116");
        assert_eq!(BenchmarkId::new("eval", 49).id, "eval/49");
    }

    #[test]
    fn group_runs_and_filters() {
        let mut c = Criterion {
            filter: Some("never-matches".into()),
            budget: Duration::from_millis(10),
        };
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        g.finish();
        assert!(!ran, "filter must skip non-matching benchmarks");
    }
}
