//! Offline stand-in for the `crossbeam` crate (scoped-threads +
//! work-stealing-deque subset).
//!
//! The workspace uses `crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join` (batch sharding) and the
//! `deque::{Worker, Stealer, Injector, Steal}` surface (the shard pool
//! in `msropm-core::pool`); this shim implements both on std alone, so
//! no external crate is required in the network-isolated build
//! container. The deque flavor is mutex-backed rather than lock-free —
//! same API and semantics, traded for `#![forbid(unsafe_code)]`; the
//! shard pool's tasks are milliseconds long, so queue-op latency is
//! noise there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads (mirrors
    /// `crossbeam::thread::Scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: the scope handle is just a shared reference.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Creates a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before `scope` returns.
    ///
    /// Unlike `std::thread::scope`, the crossbeam API returns a `Result`:
    /// `Err` if any *unjoined* spawned thread panicked. With this std-backed
    /// shim a panic in an unjoined child propagates as a panic out of
    /// `std::thread::scope` itself, so the `Err` arm is reserved for the
    /// closure's own panic being converted by the caller; workspace code
    /// joins every handle and only `expect`s the outer result.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Work-stealing deques (mirrors `crossbeam::deque`).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Outcome of a steal attempt (mirrors `crossbeam::deque::Steal`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and may be retried. The mutex-backed
        /// shim never loses races, but callers written against the real
        /// crate match on this arm, so it exists.
        Retry,
    }

    impl<T> Steal<T> {
        /// Returns the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                Steal::Empty | Steal::Retry => None,
            }
        }

        /// Returns `true` when the source queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    fn lock<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // A panic while holding one of these locks aborts the pool
        // anyway; recover the guard so unrelated threads keep going.
        q.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The owner side of one worker's local queue.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker queue (the flavor the shard pool uses:
        /// oldest task first, so stage tasks retire in dispatch order).
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Enqueues a task on the owner's end.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Dequeues the owner's next task (FIFO).
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_front()
        }

        /// Returns `true` if the queue currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            lock(&self.queue).len()
        }

        /// Creates a stealer handle onto this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A shareable handle that steals from the far end of a [`Worker`]'s
    /// queue.
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Returns `true` if the queue currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    /// A global FIFO injection queue shared by all workers of a pool.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Steals one task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks into `dest`'s local queue and returns
        /// one of them (the real crate's rebalancing primitive: moves up
        /// to half the injector, so one worker does not drain the world).
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = lock(&self.queue);
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            let extra = q.len() / 2;
            for _ in 0..extra {
                let Some(t) = q.pop_front() else { break };
                dest.push(t);
            }
            Steal::Success(first)
        }

        /// Returns `true` if the injector currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            lock(&self.queue).len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1usize, 2, 3, 4];
        let total = AtomicUsize::new(0);
        thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<usize>()));
            }
            for h in handles {
                total.fetch_add(h.join().expect("no panic"), Ordering::SeqCst);
            }
        })
        .expect("scope");
        assert_eq!(total.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().expect("inner join") * 2
            });
            h.join().expect("outer join")
        })
        .expect("scope");
        assert_eq!(r, 42);
    }

    #[test]
    fn joined_panic_is_an_error() {
        thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .expect("scope itself succeeds");
    }

    mod deque {
        use crate::deque::{Injector, Steal, Worker};

        #[test]
        fn worker_is_fifo_and_stealers_take_the_front() {
            let w: Worker<i32> = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.len(), 3);
            assert_eq!(s.steal(), Steal::Success(1));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(s.clone().steal(), Steal::Success(3));
            assert!(s.is_empty() && w.is_empty());
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn injector_batch_steal_rebalances() {
            let inj: Injector<usize> = Injector::new();
            for i in 0..8 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            // Pops task 0 and moves half the remainder (3 of 7) locally.
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            assert_eq!(w.len(), 3);
            assert_eq!(inj.len(), 4);
            assert_eq!(w.pop(), Some(1));
            assert_eq!(inj.steal(), Steal::Success(4));
            assert!(!inj.is_empty());
        }

        #[test]
        fn steal_success_accessor() {
            assert_eq!(Steal::Success(7).success(), Some(7));
            assert_eq!(Steal::<i32>::Empty.success(), None);
            assert!(Steal::<i32>::Empty.is_empty());
            assert!(!Steal::<i32>::Retry.is_empty());
        }

        #[test]
        fn concurrent_stealing_loses_nothing() {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let inj: Injector<usize> = Injector::new();
            for i in 0..1000 {
                inj.push(i);
            }
            let total = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        let local = Worker::new_fifo();
                        loop {
                            let task = local
                                .pop()
                                .or_else(|| inj.steal_batch_and_pop(&local).success());
                            match task {
                                Some(t) => {
                                    total.fetch_add(t, Ordering::Relaxed);
                                }
                                None => break,
                            }
                        }
                    });
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 999 * 1000 / 2);
        }
    }
}
