//! Offline stand-in for the `crossbeam` crate (scoped-threads subset).
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`; this shim implements that API on top of
//! `std::thread::scope` (stable since Rust 1.63), so no external crate is
//! required in the network-isolated build container.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads (mirrors
    /// `crossbeam::thread::Scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: the scope handle is just a shared reference.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Creates a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before `scope` returns.
    ///
    /// Unlike `std::thread::scope`, the crossbeam API returns a `Result`:
    /// `Err` if any *unjoined* spawned thread panicked. With this std-backed
    /// shim a panic in an unjoined child propagates as a panic out of
    /// `std::thread::scope` itself, so the `Err` arm is reserved for the
    /// closure's own panic being converted by the caller; workspace code
    /// joins every handle and only `expect`s the outer result.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1usize, 2, 3, 4];
        let total = AtomicUsize::new(0);
        thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<usize>()));
            }
            for h in handles {
                total.fetch_add(h.join().expect("no panic"), Ordering::SeqCst);
            }
        })
        .expect("scope");
        assert_eq!(total.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().expect("inner join") * 2
            });
            h.join().expect("outer join")
        })
        .expect("scope");
        assert_eq!(r, 42);
    }

    #[test]
    fn joined_panic_is_an_error() {
        thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .expect("scope itself succeeds");
    }
}
