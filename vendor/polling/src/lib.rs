//! Offline stand-in for the `polling` crate (API subset).
//!
//! This workspace builds in a network-isolated container, so the real
//! `polling` crate cannot be fetched from crates.io. This shim provides
//! the small surface the reactor front end consumes — register file
//! descriptors with a readiness *interest*, block in [`Poller::wait`]
//! for events, and wake the waiter from another thread with
//! [`Poller::notify`] — over two backends:
//!
//! - **epoll** (Linux): `epoll_create1`/`epoll_ctl`/`epoll_wait` with an
//!   `eventfd` notifier — O(ready) wakeups, the production path;
//! - **poll(2)** fallback: a registration table replayed into a `pollfd`
//!   array per wait, with a pipe notifier — O(registered) per call, kept
//!   as the portable/reference backend and exercised by tests so both
//!   stay correct.
//!
//! The shim links against the C library symbols the Rust standard
//! library already pulls in (`epoll_*`, `poll`, `eventfd`, `pipe`,
//! `fcntl`, `read`, `write`); there is no `libc` crate dependency. All
//! fds are owned via [`std::os::fd::OwnedFd`], so dropping a
//! [`Poller`] releases every kernel resource it created.
//!
//! # Semantics
//!
//! Readiness is **level-triggered**: an fd with unread input (or writable
//! buffer space, when write interest is registered) reports ready on
//! every wait until the condition clears. Error/hang-up conditions are
//! folded into the reported event as both `readable` and `writable`, so
//! the caller's next I/O attempt observes the actual error. `notify` is
//! thread-safe, coalescing, and never blocks; a notified wait returns
//! early (possibly with zero events) after draining the wakeup.

#![warn(missing_docs)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One readiness event (or an *interest* when passed to
/// [`Poller::add`]/[`Poller::modify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier reported back by [`Poller::wait`].
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Read-only interest.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write-only interest.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Read + write interest.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (the fd stays registered but reports nothing).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Which kernel readiness API backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Linux `epoll` (default on Linux).
    Epoll,
    /// Portable `poll(2)` (fallback, and selectable for tests).
    Poll,
}

impl BackendKind {
    /// Short lowercase name (`"epoll"` / `"poll"`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Epoll => "epoll",
            BackendKind::Poll => "poll",
        }
    }
}

/// A readiness monitor over a set of registered file descriptors; see
/// the crate docs.
pub struct Poller {
    inner: imp::Inner,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .finish_non_exhaustive()
    }
}

impl Poller {
    /// Creates a poller on the best backend for this platform (epoll on
    /// Linux, poll(2) elsewhere).
    ///
    /// # Errors
    ///
    /// Propagates kernel resource-creation failures.
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(imp::BEST)
    }

    /// Creates a poller on an explicit backend (tests exercise both on
    /// Linux).
    ///
    /// # Errors
    ///
    /// Propagates kernel resource-creation failures, or `Unsupported`
    /// when the backend does not exist on this platform.
    pub fn with_backend(kind: BackendKind) -> io::Result<Poller> {
        Ok(Poller {
            inner: imp::Inner::new(kind)?,
        })
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> BackendKind {
        self.inner.backend()
    }

    /// Registers `fd` with an initial `interest`. The fd must stay open
    /// until [`Poller::delete`]; the caller keeps ownership.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (e.g. the fd is already registered).
    pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        self.inner.add(fd, interest)
    }

    /// Replaces the interest of a registered fd.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (e.g. the fd was never registered).
    pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
        self.inner.modify(fd, interest)
    }

    /// Unregisters `fd`. Call before closing the descriptor.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.inner.delete(fd)
    }

    /// Blocks until at least one registered fd is ready, `timeout`
    /// elapses (`None` = forever), or another thread calls
    /// [`Poller::notify`]. Ready events are appended to `events`
    /// (cleared first); returns how many were delivered. A wakeup by
    /// `notify` (or a signal) may deliver zero events.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.inner.wait(events, timeout)
    }

    /// Wakes a concurrent [`Poller::wait`] from any thread. Coalescing
    /// and non-blocking; waking with no waiter makes the next wait
    /// return immediately.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (never `WouldBlock` — a full notifier
    /// already guarantees a wakeup and is treated as success).
    pub fn notify(&self) -> io::Result<()> {
        self.inner.notify()
    }
}

/// Converts an optional timeout to the millisecond argument of
/// `poll`/`epoll_wait`: `None` → -1 (block forever), sub-millisecond
/// non-zero durations round up to 1ms so short timeouts never spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                let ms = d.as_millis().max(1);
                i32::try_from(ms).unwrap_or(i32::MAX)
            }
        }
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
mod imp {
    use super::{timeout_ms, BackendKind, Event};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::sync::Mutex;
    use std::time::Duration;

    pub const BEST: BackendKind = BackendKind::Epoll;

    mod sys {
        use std::os::raw::{c_int, c_uint, c_ulong, c_void};

        // The epoll_event layout is packed on x86-64 (the kernel ABI),
        // naturally aligned elsewhere.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PollFd {
            pub fd: c_int,
            pub events: i16,
            pub revents: i16,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLL_CLOEXEC: c_int = 0o2000000;

        pub const EFD_CLOEXEC: c_int = 0o2000000;
        pub const EFD_NONBLOCK: c_int = 0o0004000;

        pub const POLLIN: i16 = 0x001;
        pub const POLLOUT: i16 = 0x004;
        pub const POLLERR: i16 = 0x008;
        pub const POLLHUP: i16 = 0x010;
        pub const POLLNVAL: i16 = 0x020;

        pub const F_GETFL: c_int = 3;
        pub const F_SETFL: c_int = 4;
        pub const F_SETFD: c_int = 2;
        pub const FD_CLOEXEC: c_int = 1;
        pub const O_NONBLOCK: c_int = 0o0004000;

        // Symbols provided by the C library the Rust standard library
        // already links (glibc/musl); no `libc` crate needed.
        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
            pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
            pub fn pipe(fds: *mut c_int) -> c_int;
            pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
            pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
            pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        }
    }

    /// Checks a -1-on-error C return value.
    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Drains a non-blocking fd (the notifier) until it would block.
    fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }

    /// Writes one wakeup token, treating a full notifier as success (a
    /// wakeup is already pending).
    fn poke(fd: RawFd, token: &[u8]) -> io::Result<()> {
        let n = unsafe { sys::write(fd, token.as_ptr().cast(), token.len()) };
        if n >= 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(err)
        }
    }

    pub enum Inner {
        Epoll(Epoll),
        Poll(Poll),
    }

    impl Inner {
        pub fn new(kind: BackendKind) -> io::Result<Inner> {
            match kind {
                BackendKind::Epoll => Epoll::new().map(Inner::Epoll),
                BackendKind::Poll => Poll::new().map(Inner::Poll),
            }
        }

        pub fn backend(&self) -> BackendKind {
            match self {
                Inner::Epoll(_) => BackendKind::Epoll,
                Inner::Poll(_) => BackendKind::Poll,
            }
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            match self {
                Inner::Epoll(p) => p.ctl(sys::EPOLL_CTL_ADD, fd, interest),
                Inner::Poll(p) => p.add(fd, interest),
            }
        }

        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            match self {
                Inner::Epoll(p) => p.ctl(sys::EPOLL_CTL_MOD, fd, interest),
                Inner::Poll(p) => p.modify(fd, interest),
            }
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            match self {
                Inner::Epoll(p) => p.ctl(sys::EPOLL_CTL_DEL, fd, Event::none(0)),
                Inner::Poll(p) => p.delete(fd),
            }
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            match self {
                Inner::Epoll(p) => p.wait(events, timeout),
                Inner::Poll(p) => p.wait(events, timeout),
            }
        }

        pub fn notify(&self) -> io::Result<()> {
            match self {
                Inner::Epoll(p) => poke(p.event_fd.as_raw_fd(), &1u64.to_ne_bytes()),
                Inner::Poll(p) => poke(p.pipe_write.as_raw_fd(), &[1u8]),
            }
        }
    }

    /// Key the notifier travels under inside the kernel event payloads;
    /// never surfaced to callers.
    const NOTIFY_TOKEN: u64 = u64::MAX;

    pub struct Epoll {
        epfd: OwnedFd,
        event_fd: OwnedFd,
    }

    impl Epoll {
        fn new() -> io::Result<Epoll> {
            let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
            // Owned immediately so an eventfd failure still closes it.
            let epfd = unsafe { OwnedFd::from_raw_fd(epfd) };
            let efd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
            let event_fd = unsafe { OwnedFd::from_raw_fd(efd) };
            let mut ev = sys::EpollEvent {
                events: sys::EPOLLIN,
                data: NOTIFY_TOKEN,
            };
            cvt(unsafe {
                sys::epoll_ctl(
                    epfd.as_raw_fd(),
                    sys::EPOLL_CTL_ADD,
                    event_fd.as_raw_fd(),
                    &mut ev,
                )
            })?;
            Ok(Epoll { epfd, event_fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut events = 0u32;
            if interest.readable {
                events |= sys::EPOLLIN;
            }
            if interest.writable {
                events |= sys::EPOLLOUT;
            }
            let mut ev = sys::EpollEvent {
                events,
                data: interest.key as u64,
            };
            cvt(unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
            Ok(())
        }

        fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut buf = [sys::EpollEvent { events: 0, data: 0 }; CAP];
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd.as_raw_fd(),
                    buf.as_mut_ptr(),
                    CAP as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                // A signal interrupting the wait is a spurious (empty)
                // wakeup, not a failure.
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for ev in buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) kernel struct before
                // use; references into it would be unaligned on x86-64.
                let data = ev.data;
                let bits = ev.events;
                if data == NOTIFY_TOKEN {
                    drain(self.event_fd.as_raw_fd());
                    continue;
                }
                // Fold error/hang-up into both directions so the
                // caller's next I/O attempt observes the condition.
                let broken = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                events.push(Event {
                    key: data as usize,
                    readable: bits & sys::EPOLLIN != 0 || broken,
                    writable: bits & sys::EPOLLOUT != 0 || broken,
                });
            }
            Ok(events.len())
        }
    }

    #[derive(Clone, Copy)]
    struct Registration {
        key: usize,
        readable: bool,
        writable: bool,
    }

    pub struct Poll {
        registry: Mutex<HashMap<RawFd, Registration>>,
        pipe_read: OwnedFd,
        pipe_write: OwnedFd,
    }

    impl Poll {
        fn new() -> io::Result<Poll> {
            let mut fds = [0i32; 2];
            cvt(unsafe { sys::pipe(fds.as_mut_ptr()) })?;
            let pipe_read = unsafe { OwnedFd::from_raw_fd(fds[0]) };
            let pipe_write = unsafe { OwnedFd::from_raw_fd(fds[1]) };
            for fd in [&pipe_read, &pipe_write] {
                let fd = fd.as_raw_fd();
                let flags = cvt(unsafe { sys::fcntl(fd, sys::F_GETFL, 0) })?;
                cvt(unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) })?;
                cvt(unsafe { sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC) })?;
            }
            Ok(Poll {
                registry: Mutex::new(HashMap::new()),
                pipe_read,
                pipe_write,
            })
        }

        fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut reg = self.registry.lock().expect("poll registry");
            if reg.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            reg.insert(
                fd,
                Registration {
                    key: interest.key,
                    readable: interest.readable,
                    writable: interest.writable,
                },
            );
            Ok(())
        }

        fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut reg = self.registry.lock().expect("poll registry");
            match reg.get_mut(&fd) {
                Some(r) => {
                    *r = Registration {
                        key: interest.key,
                        readable: interest.readable,
                        writable: interest.writable,
                    };
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut reg = self.registry.lock().expect("poll registry");
            match reg.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
            // Snapshot the registrations into the pollfd array; slot 0
            // is always the notifier pipe.
            let mut fds = vec![sys::PollFd {
                fd: self.pipe_read.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            }];
            let mut keys = vec![Registration {
                key: 0,
                readable: false,
                writable: false,
            }];
            {
                let reg = self.registry.lock().expect("poll registry");
                for (&fd, r) in reg.iter() {
                    let mut ev = 0i16;
                    if r.readable {
                        ev |= sys::POLLIN;
                    }
                    if r.writable {
                        ev |= sys::POLLOUT;
                    }
                    fds.push(sys::PollFd {
                        fd,
                        events: ev,
                        revents: 0,
                    });
                    keys.push(*r);
                }
            }
            let n = unsafe {
                sys::poll(
                    fds.as_mut_ptr(),
                    fds.len() as std::os::raw::c_ulong,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            if fds[0].revents != 0 {
                drain(self.pipe_read.as_raw_fd());
            }
            for (pfd, reg) in fds.iter().zip(keys.iter()).skip(1) {
                if pfd.revents == 0 {
                    continue;
                }
                let broken = pfd.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                events.push(Event {
                    key: reg.key,
                    readable: pfd.revents & sys::POLLIN != 0 || broken,
                    writable: pfd.revents & sys::POLLOUT != 0 || broken,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(not(any(target_os = "linux", target_os = "android")))]
mod imp {
    //! Stub for platforms without a vendored backend: every operation
    //! reports `Unsupported`. The workspace only targets Linux
    //! containers; this keeps the crate compiling elsewhere.
    use super::{BackendKind, Event};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub const BEST: BackendKind = BackendKind::Poll;

    pub struct Inner {
        kind: BackendKind,
    }

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "polling shim: no backend on this platform",
        ))
    }

    impl Inner {
        pub fn new(kind: BackendKind) -> io::Result<Inner> {
            let _ = kind;
            unsupported()
        }

        pub fn backend(&self) -> BackendKind {
            self.kind
        }

        pub fn add(&self, _fd: RawFd, _interest: Event) -> io::Result<()> {
            unsupported()
        }

        pub fn modify(&self, _fd: RawFd, _interest: Event) -> io::Result<()> {
            unsupported()
        }

        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            unsupported()
        }

        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            unsupported()
        }

        pub fn notify(&self) -> io::Result<()> {
            unsupported()
        }
    }
}

#[cfg(all(test, any(target_os = "linux", target_os = "android")))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    fn both_backends() -> Vec<Poller> {
        vec![
            Poller::with_backend(BackendKind::Epoll).expect("epoll backend"),
            Poller::with_backend(BackendKind::Poll).expect("poll backend"),
        ]
    }

    #[test]
    fn default_backend_is_epoll_on_linux() {
        assert_eq!(Poller::new().unwrap().backend(), BackendKind::Epoll);
    }

    #[test]
    fn timeout_expires_with_no_events() {
        for poller in both_backends() {
            let mut events = Vec::new();
            let t = Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert_eq!(n, 0, "{:?}: no fds registered", poller.backend());
            assert!(t.elapsed() >= Duration::from_millis(25));
        }
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        for poller in both_backends() {
            let poller = Arc::new(poller);
            let p2 = Arc::clone(&poller);
            let waker = thread::spawn(move || {
                thread::sleep(Duration::from_millis(30));
                p2.notify().unwrap();
            });
            let mut events = Vec::new();
            let t = Instant::now();
            // Without the notify this would block for 10 seconds.
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(
                t.elapsed() < Duration::from_secs(5),
                "{:?}: notify must interrupt the wait",
                poller.backend()
            );
            waker.join().unwrap();
            // Coalesced notifies: many pokes, one (or few) wakeups, and
            // a drained notifier does not spin subsequent waits.
            for _ in 0..100 {
                poller.notify().unwrap();
            }
            poller
                .wait(&mut events, Some(Duration::from_millis(5)))
                .unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{:?}: notifier must be drained", poller.backend());
        }
    }

    #[test]
    fn readable_and_writable_events_on_a_socket() {
        for poller in both_backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (sock, _) = listener.accept().unwrap();
            sock.set_nonblocking(true).unwrap();

            // A fresh socket with write interest: writable, not readable.
            poller.add(sock.as_raw_fd(), Event::all(7)).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert_eq!(events.len(), 1, "{:?}", poller.backend());
            assert_eq!(events[0].key, 7);
            assert!(events[0].writable);
            assert!(!events[0].readable);

            // Level-triggered readability once the peer writes.
            peer.write_all(b"ping").unwrap();
            for _ in 0..2 {
                poller
                    .wait(&mut events, Some(Duration::from_secs(2)))
                    .unwrap();
                assert!(events.iter().any(|e| e.key == 7 && e.readable));
            }

            // Interest can be narrowed: read-only stops writable spam.
            poller.modify(sock.as_raw_fd(), Event::readable(7)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(events.iter().all(|e| !e.writable));

            // Peer close reports readable (EOF) on the next wait.
            let mut buf = [0u8; 16];
            let _ = (&sock).read(&mut buf);
            drop(peer);
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(events.iter().any(|e| e.key == 7 && e.readable));

            poller.delete(sock.as_raw_fd()).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{:?}: deleted fd reports nothing", poller.backend());
        }
    }

    #[test]
    fn none_interest_registers_silently() {
        for poller in both_backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let _peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (sock, _) = listener.accept().unwrap();
            poller.add(sock.as_raw_fd(), Event::none(3)).unwrap();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert_eq!(n, 0, "{:?}", poller.backend());
            poller.modify(sock.as_raw_fd(), Event::writable(3)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(events.iter().any(|e| e.key == 3 && e.writable));
        }
    }

    #[test]
    fn double_add_and_unknown_fd_are_errors() {
        for poller in both_backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let _peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (sock, _) = listener.accept().unwrap();
            poller.add(sock.as_raw_fd(), Event::readable(1)).unwrap();
            assert!(poller.add(sock.as_raw_fd(), Event::readable(1)).is_err());
            poller.delete(sock.as_raw_fd()).unwrap();
            assert!(poller.delete(sock.as_raw_fd()).is_err());
            assert!(poller.modify(sock.as_raw_fd(), Event::readable(1)).is_err());
        }
    }
}
