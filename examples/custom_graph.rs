//! Solve your own instance: load a DIMACS `.col` file (or generate a
//! random geometric graph if no path is given), pick a power-of-two
//! palette, and let the MSROPM color it.
//!
//! ```sh
//! cargo run --release --example custom_graph [file.col] [num_colors]
//! ```

use msropm::core::{Msropm, MsropmConfig};
use msropm::graph::generators::random_geometric;
use msropm::graph::io::read_dimacs;
use msropm::graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn load_graph(arg: Option<String>, rng: &mut StdRng) -> Graph {
    match arg {
        Some(path) => {
            let file = std::fs::File::open(&path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            read_dimacs(std::io::BufReader::new(file)).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            println!("no input file; generating a 120-node random geometric graph");
            random_geometric(120, 0.16, rng)
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next();
    let num_colors: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    if !num_colors.is_power_of_two() || num_colors < 2 {
        eprintln!("num_colors must be a power of two >= 2 (the 2^k staging)");
        std::process::exit(2);
    }

    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let g = load_graph(path, &mut rng);
    println!(
        "instance: {} nodes, {} edges, max degree {}",
        g.num_nodes(),
        g.num_edges(),
        g.max_degree()
    );

    // Constructive reference for context.
    let dsatur = msropm::graph::coloring::dsatur(&g);
    println!(
        "DSATUR uses {} colors (so {num_colors} colors are {})",
        dsatur.num_colors_used(),
        if dsatur.num_colors_used() <= num_colors {
            "likely sufficient"
        } else {
            "likely insufficient — expect accuracy < 1.0"
        }
    );

    let config = MsropmConfig::paper_default().with_num_colors(num_colors);
    println!(
        "running MSROPM: {} stages, {} ns per iteration, best of 20\n",
        config.num_stages(),
        config.total_time_ns()
    );
    let mut machine = Msropm::new(&g, config);
    let mut best_acc = 0.0f64;
    let mut best = None;
    for iter in 0..20 {
        let sol = machine.solve(&mut rng);
        let acc = sol.coloring.accuracy(&g);
        if acc > best_acc || best.is_none() {
            best_acc = acc;
            best = Some(sol);
            println!("iteration {iter:2}: accuracy {acc:.4}  <- new best");
        }
    }
    let best = best.expect("iterations ran");
    println!(
        "\nbest accuracy {best_acc:.4} | proper {} | colors used {}",
        best.coloring.is_proper(&g),
        best.coloring.num_colors_used()
    );
}
