//! Head-to-head on one problem: MSROPM vs the single-stage 3-SHIL ROPM,
//! simulated annealing, DSATUR, and the exact SAT baseline — the
//! example-sized version of Table 2.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use msropm::core::baselines::{Ropm3, SimulatedAnnealingColoring, TabuMaxCut};
use msropm::core::{Msropm, MsropmConfig};
use msropm::graph::generators::kings_graph;
use msropm::sat::encode::solve_k_coloring;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let g = kings_graph(12, 12);
    let iters = 15;
    println!(
        "problem: 12x12 King's graph 4-coloring ({} nodes, {} edges), best of {iters}\n",
        g.num_nodes(),
        g.num_edges()
    );
    let mut rng = StdRng::seed_from_u64(0xBA5E);

    // MSROPM (the paper's machine).
    let mut machine = Msropm::new(&g, MsropmConfig::paper_default());
    let t0 = std::time::Instant::now();
    let msropm_best = (0..iters)
        .map(|_| machine.solve(&mut rng).coloring.accuracy(&g))
        .fold(0.0f64, f64::max);
    let msropm_wall = t0.elapsed();

    // Single-stage 3-SHIL ROPM (ref [14] class) — note: 3 colors cannot
    // properly color a King's graph (chromatic number 4), exactly the
    // limitation the multi-stage design removes.
    let ropm3 = Ropm3::new(MsropmConfig::paper_default());
    let t0 = std::time::Instant::now();
    let ropm3_best = (0..iters)
        .map(|_| ropm3.solve(&g, &mut rng).accuracy(&g))
        .fold(0.0f64, f64::max);
    let ropm3_wall = t0.elapsed();

    // Simulated annealing (software).
    let sa = SimulatedAnnealingColoring::new(4, 300);
    let t0 = std::time::Instant::now();
    let sa_best = (0..iters)
        .map(|_| sa.solve(&g, &mut rng).accuracy(&g))
        .fold(0.0f64, f64::max);
    let sa_wall = t0.elapsed();

    // DSATUR (constructive) and SAT (exact).
    let dsatur = msropm::graph::coloring::dsatur(&g);
    let dsatur_acc = dsatur.accuracy(&g);
    let t0 = std::time::Instant::now();
    let exact = solve_k_coloring(&g, 4).expect("4-colorable");
    let sat_wall = t0.elapsed();

    // Tabu on the stage-1 objective for context.
    let tabu = TabuMaxCut::new(20 * g.num_nodes(), 10);
    let tabu_cut = tabu.solve(&g, &mut rng).cut_value(&g);

    println!("{:<34} {:>10} {:>14}", "solver", "accuracy", "wall time");
    println!("{}", "-".repeat(62));
    for (name, acc, wall) in [
        ("MSROPM (2-stage, 4 colors)", msropm_best, Some(msropm_wall)),
        (
            "3-SHIL ROPM (1 stage, 3 colors)",
            ropm3_best,
            Some(ropm3_wall),
        ),
        ("simulated annealing (4 colors)", sa_best, Some(sa_wall)),
        ("DSATUR (constructive)", dsatur_acc, None),
        ("CDCL SAT (exact)", exact.accuracy(&g), Some(sat_wall)),
    ] {
        match wall {
            Some(w) => println!("{name:<34} {acc:>10.4} {:>11.1} ms", w.as_secs_f64() * 1e3),
            None => println!("{name:<34} {acc:>10.4} {:>14}", "-"),
        }
    }
    println!(
        "\ntabu max-cut (stage-1 objective): {}/{} edges cut",
        tabu_cut,
        g.num_edges()
    );
    println!(
        "\nreading: the 3-color ROPM is capped below 1.0 on this 4-chromatic graph\n\
         (every 2x2 King block is a K4) — the structural argument for multi-staging."
    );
}
