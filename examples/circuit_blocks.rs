//! Tour of the circuit-level blocks of paper Fig. 4: the 11-stage ring
//! oscillator, the B2B coupling, phase-shifted SHIL injection, and the
//! DFF/reference phase sampler — all at the behavioural transistor level.
//!
//! ```sh
//! cargo run --release --example circuit_blocks
//! ```

use msropm::circuit::readout::{measure_phase_at, measure_relative_phase};
use msropm::circuit::{CircuitArray, RingOscillator, Technology};
use msropm::graph::generators::path_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- Fig. 4(a): the ring oscillator block ----
    println!("== ring oscillator (11 stages, 65nm-like, 1 V) ==");
    let ring = RingOscillator::paper_default();
    let f = ring
        .measure_frequency_ghz(20.0, 8)
        .expect("free-running ring oscillates");
    println!("measured free-running frequency: {f:.3} GHz (paper target: 1.3 GHz)");
    let tech = Technology::calibrated(11, 1.3);
    println!(
        "calibrated node capacitance: {:.1} fF; PMOS:NMOS strength {}:1",
        tech.c_node * 1e15,
        (tech.gp / tech.gn) as u32
    );

    // ---- Fig. 4(b): B2B coupling drives two rings antiphase ----
    println!("\n== B2B coupling (two coupled rings) ==");
    let g = path_graph(2);
    let array = CircuitArray::builder(&g).coupling_strength(0.2).build();
    let mut rng = StdRng::seed_from_u64(3);
    let mut state = array.random_state(&mut rng);
    array.run(&mut state, 0.0, 40.0, 1e-3);
    let d = measure_relative_phase(&array, &state, 0, 1, 40.0, 8.0, 1e-3)
        .expect("both rings oscillate");
    println!(
        "relative phase after 40 ns of negative coupling: {:.1}° (ideal antiphase: 180°)",
        d.to_degrees().min(360.0 - d.to_degrees())
    );

    // ---- Fig. 4(a) again: SHIL injection binarizes the phase ----
    println!("\n== SHIL injection (PMOS at 2f) ==");
    let g1 = path_graph(1);
    let mut shil_array = CircuitArray::builder(&g1).shil_injection(6e-4).build();
    shil_array.set_shil_enabled(true);
    let mut lock_phases = Vec::new();
    for seed in 0..4 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = shil_array.random_state(&mut rng);
        shil_array.run(&mut s, 0.0, 120.0, 1e-3);
        let p = measure_phase_at(&shil_array, &s, 0, 120.0, 8.0, 1e-3).expect("oscillates");
        lock_phases.push(p);
        println!("run {seed}: locked phase {:.1}°", p.to_degrees());
    }
    println!("(locked phases fall on a 2-point grid 180° apart — the SHIL binarization)");

    // ---- Fig. 4(c): DFF + reference-bank readout ----
    println!("\n== DFF phase sampler (4 references for 4 colors) ==");
    let bank = msropm::circuit::ReferenceBank::new(array.f0_ghz(), 4, 0.0);
    let sampler = msropm::circuit::DffPhaseSampler::new(bank, 8.0, 1e-3);
    let colors = sampler.read_all(&array, &state, 40.0);
    println!("sampled color codes of the coupled pair: {colors:?}");
    println!("(antiphase rings land in buckets two quadrants apart)");

    // ---- power ----
    println!("\n== power models ==");
    let calibrated = msropm::circuit::PowerModel::calibrated_to_paper();
    let tech13 = Technology::calibrated(11, 1.3);
    let physics = msropm::circuit::PowerModel::from_technology(&tech13, 11, 1.3, 0.15);
    for (n, e, label) in [(49usize, 156usize, "49-node"), (2116, 8190, "2116-node")] {
        let p = physics.estimate(n, e);
        println!(
            "{label}: calibrated total {:.1} mW | physics {:.1} mW (osc {:.1} + coupling {:.1})",
            calibrated.estimate(n, e).total_mw(),
            p.total_mw(),
            p.oscillators_mw,
            p.couplings_mw,
        );
    }
}
