//! The paper's headline experiment at example scale: 40-iteration
//! 4-coloring of a King's-graph problem, with the exact SAT baseline used
//! to certify the accuracy metric.
//!
//! ```sh
//! cargo run --release --example kings_four_coloring [side]
//! ```
//!
//! `side` defaults to 10 (100 nodes); the paper's sizes are 7/20/32/46.

use msropm::core::{CutReference, ExperimentRunner, MsropmConfig};
use msropm::graph::cut::kings_stripe_cut;
use msropm::graph::generators::kings_graph_square;
use msropm::sat::encode::solve_k_coloring;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let g = kings_graph_square(side);
    println!(
        "benchmark: {side}x{side} King's graph ({} nodes, {} edges, search space 4^{})",
        g.num_nodes(),
        g.num_edges(),
        g.num_nodes()
    );

    // Exact solution via the CDCL SAT solver — the paper's baseline.
    println!("computing exact 4-coloring with the CDCL SAT solver...");
    let exact = solve_k_coloring(&g, 4).expect("King's graphs are 4-colorable");
    assert!(exact.is_proper(&g));
    println!("SAT: proper 4-coloring found (accuracy denominator = 1.0)\n");

    // 40 iterations of the MSROPM, as in the paper.
    let best_cut = kings_stripe_cut(side, side).cut_value(&g);
    let report = ExperimentRunner::new(MsropmConfig::paper_default())
        .iterations(40)
        .base_seed(7)
        .cut_reference(CutReference::Value(best_cut))
        .run(&g);

    let s = report.accuracy_summary();
    println!("MSROPM, 40 iterations @ 60 ns each:");
    println!("  best accuracy : {:.4}", report.best_accuracy());
    println!("  mean accuracy : {:.4}", s.mean);
    println!("  worst accuracy: {:.4}", s.min);
    println!(
        "  exact solutions: {}/40",
        report.outcomes.iter().filter(|o| o.accuracy == 1.0).count()
    );
    if let Some(r) = report.stage1_final_correlation() {
        println!("  corr(stage-1 cut accuracy, final accuracy) = {r:+.3}");
    }

    // Solution diversity, as in Fig. 5(c).
    let ham = report.hamming_distances();
    let hs = msropm::graph::metrics::Summary::of(&ham).expect("pairs exist");
    println!(
        "  pairwise Hamming distance: mean {:.3}, range [{:.3}, {:.3}]",
        hs.mean, hs.min, hs.max
    );
}
