//! Quickstart: 4-color the paper's 49-node King's-graph benchmark.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use msropm::core::{Msropm, MsropmConfig};
use msropm::graph::generators::kings_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. The problem: a 7x7 King's graph (49 nodes, 156 edges, chromatic
    //    number 4) — the smallest benchmark of the paper.
    let g = kings_graph(7, 7);
    println!(
        "problem: {} ({} nodes, {} edges)",
        g,
        g.num_nodes(),
        g.num_edges()
    );

    // 2. The machine: paper-default configuration — 4 colors in 2 stages,
    //    60 ns total schedule (5 ns randomize + 20 ns anneal + 5 ns SHIL
    //    lock, twice).
    let config = MsropmConfig::paper_default();
    println!(
        "machine: {} colors, {} stages, {} ns/run",
        config.num_colors,
        config.num_stages(),
        config.total_time_ns()
    );
    let mut machine = Msropm::new(&g, config);

    // 3. Run a handful of iterations and keep the best — exactly how the
    //    paper operates its probabilistic solver (sec. 4).
    let mut rng = StdRng::seed_from_u64(0xC0C0);
    let mut best_accuracy = 0.0;
    let mut best = None;
    for iter in 0..10 {
        let solution = machine.solve(&mut rng);
        let accuracy = solution.coloring.accuracy(&g);
        println!(
            "iteration {iter}: accuracy {accuracy:.4}  (stage-1 cut {}/{})",
            solution.stages[0].cut_value, solution.stages[0].active_edges
        );
        if accuracy > best_accuracy {
            best_accuracy = accuracy;
            best = Some(solution);
        }
    }

    let best = best.expect("at least one iteration");
    println!("\nbest accuracy: {best_accuracy:.4}");
    println!("proper coloring: {}", best.coloring.is_proper(&g));
    println!(
        "colors used: {} (palette 0..{})",
        best.coloring.num_colors_used(),
        config.num_colors
    );
}
