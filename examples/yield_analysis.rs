//! Yield analysis: how the fabric degrades when some rings are defective.
//!
//! A manufactured oscillator array loses rings to process defects; a dead
//! ring freezes at an arbitrary phase and reads out a stuck color. This
//! example kills an increasing fraction of the fabric and separates the
//! raw accuracy (stuck colors count against it) from the quality the
//! *functional* part of the array still delivers.
//!
//! ```sh
//! cargo run --release --example yield_analysis
//! ```

use msropm::core::{Msropm, MsropmConfig};
use msropm::graph::generators::kings_graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let g = kings_graph(12, 12);
    let n = g.num_nodes();
    println!(
        "fabric: 12x12 King's-graph array ({} rings, {} couplings)\n",
        n,
        g.num_edges()
    );
    println!(
        "{:>14} {:>11} {:>10} {:>22}",
        "dead fraction", "dead rings", "accuracy", "live-subgraph accuracy"
    );

    let mut rng = StdRng::seed_from_u64(0x41E1D);
    for fraction in [0.0, 0.02, 0.05, 0.10, 0.20, 0.30] {
        let dead_count = (fraction * n as f64).round() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let dead = &order[..dead_count];
        let mut is_dead = vec![false; n];
        for &d in dead {
            is_dead[d] = true;
        }

        let mut machine = Msropm::new(&g, MsropmConfig::paper_default());
        for &d in dead {
            machine.set_oscillator_enabled(d, false);
        }
        // Best of 8 iterations, as a user would run it.
        let mut best_acc = 0.0f64;
        let mut best_live = 0.0f64;
        for _ in 0..8 {
            let sol = machine.solve(&mut rng);
            let acc = sol.coloring.accuracy(&g);
            if acc > best_acc {
                best_acc = acc;
                let (mut live_edges, mut live_ok) = (0usize, 0usize);
                for (_, u, v) in g.edges() {
                    if !is_dead[u.index()] && !is_dead[v.index()] {
                        live_edges += 1;
                        if sol.coloring.color(u) != sol.coloring.color(v) {
                            live_ok += 1;
                        }
                    }
                }
                best_live = if live_edges == 0 {
                    1.0
                } else {
                    live_ok as f64 / live_edges as f64
                };
            }
        }
        println!(
            "{:>14.2} {:>11} {:>10.4} {:>22.4}",
            fraction, dead_count, best_acc, best_live
        );
    }

    println!(
        "\nreading: raw accuracy falls roughly with the dead rings' share of edges\n\
         (their stuck colors are unavoidable losses), while the functional part of\n\
         the fabric keeps near-nominal quality — the coupled annealing works around\n\
         frozen phases instead of being destabilized by them."
    );
}
