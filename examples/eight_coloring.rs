//! The paper's §3.2 extension: "coloring problems with more colors, by
//! adding more solution stages, and using more SHILs" — here 8 colors in
//! 3 stages with four phase-shifted SHILs in the final stage.
//!
//! ```sh
//! cargo run --release --example eight_coloring
//! ```

use msropm::core::{Msropm, MsropmConfig, MsropmSolution};
use msropm::graph::generators::planted_k_colorable;
use msropm::osc::shil::{stage_shil_phase, Shil};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A random graph with a planted (hidden) proper 8-coloring.
    let mut rng = StdRng::seed_from_u64(0x8C);
    let (g, _classes) = planted_k_colorable(96, 8, 0.55, &mut rng);
    println!(
        "problem: planted 8-colorable graph ({} nodes, {} edges)",
        g.num_nodes(),
        g.num_edges()
    );

    let config = MsropmConfig::paper_default().with_num_colors(8);
    println!(
        "machine: {} colors -> {} stages, {} ns per run",
        config.num_colors,
        config.num_stages(),
        config.total_time_ns()
    );

    // Show the SHIL plan: stage s uses 2^(s-1) phase-shifted SHILs.
    println!("\nSHIL plan (phase-shifted injections per stage):");
    for stage in 1..=config.num_stages() {
        let groups = 1usize << (stage - 1);
        let psis: Vec<String> = (0..groups)
            .map(|gid| format!("{:.0}°", stage_shil_phase(gid, groups).to_degrees()))
            .collect();
        println!(
            "  stage {stage}: {groups} SHIL(s) at injected phase(s) {}",
            psis.join(", ")
        );
    }
    println!("\nfinal color -> phase targets:");
    for color in 0..8 {
        println!(
            "  color {color} <-> {:>5.1}°",
            MsropmSolution::target_phase(color, 8).to_degrees()
        );
    }
    // Sanity: the union of final-stage SHIL stable phases covers all 8.
    let all: Vec<f64> = (0..4)
        .flat_map(|gid| Shil::order2(stage_shil_phase(gid, 4), 1.0).stable_phases())
        .collect();
    assert_eq!(all.len(), 8);

    // Best of 15 iterations.
    let mut machine = Msropm::new(&g, config);
    let mut best_acc = 0.0f64;
    for iter in 0..15 {
        let sol = machine.solve(&mut rng);
        let acc = sol.coloring.accuracy(&g);
        if acc > best_acc {
            best_acc = acc;
            println!("iteration {iter:2}: accuracy {acc:.4}  <- new best");
        } else {
            println!("iteration {iter:2}: accuracy {acc:.4}");
        }
    }
    println!("\nbest 8-coloring accuracy over 15 iterations: {best_acc:.4}");
}
