//! Stage-by-stage anatomy of the divide-and-color procedure (paper Fig. 2
//! and §3.2), with the control-signal timeline and live energy readings.
//!
//! ```sh
//! cargo run --release --example divide_and_color
//! ```

use msropm::core::{Msropm, MsropmConfig, Schedule};
use msropm::graph::generators::kings_graph;
use msropm::graph::NodeId;
use msropm::osc::PhaseNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let g = kings_graph(6, 6);
    let config = MsropmConfig::paper_default();

    println!("== control schedule (the SHIL-clocked state machine) ==");
    let schedule = Schedule::from_config(&config);
    for w in schedule.windows() {
        let c = w.controls();
        println!(
            "  t = [{:4.1}, {:4.1}] ns  stage {}  {:<9}  couplings {}  SHIL {}",
            w.t_start,
            w.t_end(),
            w.stage,
            format!("{:?}", w.kind),
            if c.couplings_on { "ON " } else { "off" },
            if c.shil_on { "ON" } else { "off" },
        );
    }

    // Track the vector-Potts energy live through the schedule.
    let energy_net = PhaseNetwork::builder(&g).build();
    let mut machine = Msropm::new(&g, config);
    let mut rng = StdRng::seed_from_u64(12);
    println!("\n== live run (vector-Potts Hamiltonian every 5 ns) ==");
    let mut next_report = 0.0f64;
    let solution = machine.solve_observed(&mut rng, |t, w, phases| {
        if t >= next_report {
            println!(
                "  t = {t:5.1} ns  [{:?} stage {}]  H = {:+8.3}",
                w.kind,
                w.stage,
                energy_net.vector_potts_hamiltonian(phases)
            );
            next_report += 5.0;
        }
    });

    println!("\n== stage readouts ==");
    for s in &solution.stages {
        println!(
            "  stage {}: cut {} of {} active edges; worst SHIL lock error {:.3} rad",
            s.stage, s.cut_value, s.active_edges, s.max_lock_error
        );
    }

    println!("\n== final 4-coloring on the 6x6 board ==");
    for r in 0..6 {
        let row: String = (0..6)
            .map(|c| {
                let color = solution.coloring.color(NodeId::new(r * 6 + c));
                char::from(b'0' + color.index() as u8)
            })
            .collect();
        println!("  {row}");
    }
    println!(
        "\naccuracy {:.4} | proper {}",
        solution.coloring.accuracy(&g),
        solution.coloring.is_proper(&g)
    );
    println!(
        "note: stage-1 cut edges are colored from disjoint palettes {{0,1}} vs {{2,3}},\n\
         so every edge cut in stage 1 is automatically satisfied — the mechanism\n\
         that lets two independent stage-2 max-cuts finish the job."
    );
}
