//! Per-replica control lanes: sweep an operating grid and run a restart
//! portfolio in one batch.
//!
//! The batch engine runs every replica through one lockstep schedule,
//! but each replica ("lane") can carry its own coupling strength, SHIL
//! strength/ramp, noise amplitude and re-init mode. This example sweeps
//! a (K, σ) grid over a King's graph two ways:
//!
//! 1. a plain heterogeneous batch (`Msropm::solve_batch_lanes`) — every
//!    grid point runs independently, bit-identical to a standalone
//!    machine at that point;
//! 2. a `PortfolioRunner` with population restarts — at each stage
//!    boundary the worst lanes are re-seeded from the best survivors'
//!    partition state.
//!
//! ```sh
//! cargo run --release --example parameter_sweep [side]
//! ```

use msropm::core::{Msropm, MsropmConfig, PortfolioRunner, SolveOptions, SweepParam, SweepSpec};
use msropm::graph::generators::kings_graph_square;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let g = kings_graph_square(side);
    let base = MsropmConfig::paper_default();
    println!(
        "{side}x{side} King's graph ({} nodes, {} edges), base point K = {}, sigma = {}\n",
        g.num_nodes(),
        g.num_edges(),
        base.coupling_strength,
        base.noise
    );

    // A 4 x 4 grid bracketing the paper's empirical operating point.
    let sweep = SweepSpec::new()
        .logspace(SweepParam::CouplingStrength, 0.5, 2.0, 4)
        .linspace(SweepParam::Noise, 0.10, 0.30, 4);
    let lanes = sweep.lanes();
    let seeds: Vec<u64> = (0..lanes.len() as u64).collect();

    // --- 1. Plain heterogeneous sweep: one batch, 16 operating points.
    let machine = Msropm::new(&g, base);
    let solutions = machine
        .solve_lanes(&lanes, &seeds, SolveOptions::new().threads(4))
        .expect("no cancel token => never None");
    println!("independent sweep (accuracy per grid point):");
    println!("         sigma=0.100 sigma=0.167 sigma=0.233 sigma=0.300");
    for row in 0..4 {
        let cells: Vec<String> = (0..4)
            .map(|col| {
                let sol = &solutions[row * 4 + col];
                format!("{:11.3}", sol.coloring.accuracy(&g))
            })
            .collect();
        let k = lanes[row * 4].coupling_strength.unwrap();
        println!("K={k:5.3} {}", cells.join(" "));
    }

    // --- 2. The same grid as a restart portfolio.
    let report = PortfolioRunner::from_sweep(base, &sweep)
        .base_seed(0)
        .restart_fraction(0.25)
        .run(&g);
    let best = report.best();
    println!(
        "\nportfolio with restarts: {} restarts fired; best lane {} \
         (K = {:.3}, sigma = {:.3}) accuracy {:.3}",
        report.restarts.len(),
        best.lane,
        best.config.coupling_strength,
        best.config.noise,
        best.accuracy
    );
}
