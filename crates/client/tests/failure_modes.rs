//! Client behavior when the server dies on it: abrupt disconnects
//! mid-stream must surface as **typed transport errors**, never hangs,
//! in both the blocking and the multiplexed client modes — and the
//! reconnect policy must actually reconnect.
//!
//! The "server" here is a hand-rolled [`TcpListener`] script: it
//! speaks just enough of the protocol to get the client into the
//! interesting state (waiting on a report), then misbehaves —
//! truncating a frame header, a frame body, or the connection itself.

mod common;
use common::SubmitShorthand;

use msropm_client::{is_retryable, Client, ClientError, RetryPolicy};
use msropm_core::{BatchJob, MsropmConfig};
use msropm_graph::generators;
use msropm_server::proto::{
    encode_response, read_frame, write_frame, ErrorCode, Response, WireLane, WireReport,
};
use std::io::{self, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Everything in this file must fail *fast*; anything slower than this
/// is the hang these tests exist to rule out.
const NO_HANG: Duration = Duration::from_secs(30);

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

/// A report frame for `job_id`, encoded — the fake server truncates
/// this at various offsets.
fn report_bytes(job_id: u64) -> Vec<u8> {
    encode_response(&Response::Report(WireReport {
        job_id,
        graph_hash: 0xfeed,
        seed: 1,
        queued_us: 5,
        service_us: 100,
        ranked: vec![WireLane {
            lane: 0,
            seed: 7,
            conflicts: 3,
            accuracy: 0.9,
            coloring: vec![1u16; 16],
        }],
    }))
}

/// Boots a scripted one-connection server: accepts, then runs `script`
/// on the accepted socket and hangs up. Returns the address and the
/// server thread's handle.
fn scripted_server(
    script: impl FnOnce(TcpStream) + Send + 'static,
) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        script(stream);
    });
    (addr, handle)
}

/// Replies `Submitted{job_id}` to each of `n` submit frames, then
/// writes the first `truncate_at` bytes of a framed report for job 1
/// and drops the connection.
fn die_mid_report(stream: TcpStream, n: u64, truncate_at: usize) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    for job_id in 1..=n {
        let frame = read_frame(&mut reader).expect("submit frame");
        assert!(!frame.is_empty());
        write_frame(
            &mut writer,
            &encode_response(&Response::Submitted { job_id }),
        )
        .expect("submitted reply");
    }
    // A full framed report is [len:4][payload]; cut it mid-stream.
    let payload = report_bytes(1);
    let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&payload);
    writer
        .write_all(&framed[..truncate_at.min(framed.len())])
        .expect("partial write");
    writer.flush().expect("flush");
    // Dropping both halves closes the socket abruptly.
}

/// The blocking mode: one submit, then `wait_report` on a connection
/// that dies mid-frame. Covers truncation inside the header and inside
/// the payload.
#[test]
fn server_death_mid_report_is_a_typed_error_blocking_mode() {
    let graph = generators::kings_graph(4, 4);
    let job = BatchJob::uniform(fast_config(), 2, 1);
    for truncate_at in [0usize, 2, 4, 9] {
        let (addr, server) = scripted_server(move |s| die_mid_report(s, 1, truncate_at));
        let mut client = Client::connect(addr, "t").expect("connect");
        let id = client.submit_ok(&graph, &job).expect("submit");
        assert_eq!(id, 1);
        let t0 = Instant::now();
        let err = client
            .wait_report(id)
            .expect_err("dead server must surface an error");
        assert!(
            t0.elapsed() < NO_HANG,
            "truncate@{truncate_at}: wait_report hung"
        );
        match &err {
            ClientError::Io(e) => assert_eq!(
                e.kind(),
                io::ErrorKind::UnexpectedEof,
                "truncate@{truncate_at}"
            ),
            other => panic!("truncate@{truncate_at}: expected Io error, got {other:?}"),
        }
        assert!(is_retryable(&err), "truncate@{truncate_at}");
        server.join().expect("server thread");
    }
}

/// The multiplexed mode: several submits written back to back, replies
/// collected, then the connection dies while reports are outstanding.
/// Every outstanding wait must error out, none may hang.
#[test]
fn server_death_mid_report_is_a_typed_error_multiplexed_mode() {
    let graph = generators::kings_graph(4, 4);
    let job = BatchJob::uniform(fast_config(), 2, 1);
    let (addr, server) = scripted_server(|s| die_mid_report(s, 3, 9));
    let mut client = Client::connect(addr, "t").expect("connect");
    for _ in 0..3 {
        client.submit_nowait_ok(&graph, &job).expect("mux submit");
    }
    let ids: Vec<u64> = (0..3)
        .map(|_| client.recv_submitted().expect("mux reply"))
        .collect();
    assert_eq!(ids, [1, 2, 3]);
    for id in ids {
        let t0 = Instant::now();
        let err = client
            .wait_report(id)
            .expect_err("dead server must surface an error");
        assert!(t0.elapsed() < NO_HANG, "job {id}: wait_report hung");
        assert!(
            matches!(&err, ClientError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof),
            "job {id}: got {err:?}"
        );
    }
    server.join().expect("server thread");
}

/// `wait_report_timeout` on a connection the server silently stopped
/// writing to (no close, no frames) returns `Ok(None)` at the deadline
/// instead of blocking forever.
#[test]
fn silent_server_trips_the_timeout_not_a_hang() {
    let graph = generators::kings_graph(4, 4);
    let job = BatchJob::uniform(fast_config(), 2, 1);
    let (addr, server) = scripted_server(|stream| {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream.try_clone().expect("clone");
        let _ = read_frame(&mut reader).expect("submit frame");
        write_frame(
            &mut writer,
            &encode_response(&Response::Submitted { job_id: 1 }),
        )
        .expect("submitted reply");
        // Hold the socket open, write nothing, until the client hangs
        // up (read returns 0/err) — a wedged server, not a dead one.
        let mut sink = [0u8; 64];
        use std::io::Read as _;
        while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
    });
    let mut client = Client::connect(addr, "t").expect("connect");
    let id = client.submit_ok(&graph, &job).expect("submit");
    let t0 = Instant::now();
    let got = client
        .wait_report_timeout(id, Duration::from_millis(200))
        .expect("timeout is not an error");
    assert!(got.is_none(), "no report was ever written");
    let waited = t0.elapsed();
    assert!(
        waited >= Duration::from_millis(150) && waited < NO_HANG,
        "timeout fired at {waited:?}"
    );
    drop(client);
    server.join().expect("server thread");
}

/// `connect_with_retry` keeps retrying `ConnectionRefused` until a
/// server appears, and gives up with the underlying error once the
/// budget is exhausted.
#[test]
fn connect_with_retry_rides_out_a_restart() {
    let policy = RetryPolicy {
        max_retries: 40,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(50),
    };
    // Reserve an address nothing listens on yet, then bring the
    // "restarted server" up after a delay shorter than the budget.
    let placeholder = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = placeholder.local_addr().expect("addr");
    drop(placeholder);
    let spawner = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        let listener = TcpListener::bind(addr).expect("rebind");
        // Serve exactly the stats round-trip the connect probe makes.
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let _ = read_frame(&mut reader).expect("stats request");
        write_frame(
            &mut writer,
            &encode_response(&Response::Error {
                code: ErrorCode::Busy,
                message: "probe answered".into(),
            }),
        )
        .expect("reply");
    });
    // The probe's typed `Busy` reply is itself retryable, so success
    // here means: refused connects were retried until the listener
    // appeared, then the probe round-tripped. A Busy probe reply after
    // that still counts as "server is back".
    let got = Client::connect_with_retry(addr, "t", policy);
    match got {
        Ok(_) => {}
        // The single-shot script above answers exactly one probe; if a
        // retry attempt consumed it the next probe sees a dead socket.
        // Either way the refused-connect phase was ridden out.
        Err(e) => assert!(is_retryable(&e), "unexpected terminal error: {e}"),
    }
    spawner.join().expect("spawner");

    // Exhaustion: nothing ever listens, the final error is the typed
    // refused-connect, and the attempt budget bounds the wall time.
    let placeholder = TcpListener::bind("127.0.0.1:0").expect("bind");
    let dead_addr = placeholder.local_addr().expect("addr");
    drop(placeholder);
    let tight = RetryPolicy {
        max_retries: 2,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(10),
    };
    let t0 = Instant::now();
    let err = match Client::connect_with_retry(dead_addr, "t", tight) {
        Err(e) => e,
        Ok(_) => panic!("nothing is listening; connect cannot succeed"),
    };
    assert!(t0.elapsed() < NO_HANG);
    assert!(
        matches!(&err, ClientError::Io(e) if e.kind() == io::ErrorKind::ConnectionRefused),
        "got {err:?}"
    );
}

/// The retryable/terminal split the backoff loop relies on.
#[test]
fn retryability_classification() {
    let io_err = |kind| ClientError::Io(io::Error::new(kind, "x"));
    for kind in [
        io::ErrorKind::ConnectionRefused,
        io::ErrorKind::ConnectionReset,
        io::ErrorKind::BrokenPipe,
        io::ErrorKind::UnexpectedEof,
        io::ErrorKind::TimedOut,
    ] {
        assert!(is_retryable(&io_err(kind)), "{kind:?}");
    }
    assert!(!is_retryable(&io_err(io::ErrorKind::PermissionDenied)));
    assert!(is_retryable(&ClientError::Server {
        code: ErrorCode::Busy,
        message: String::new(),
    }));
    for code in [
        ErrorCode::QuotaInFlight,
        ErrorCode::DeadlineExceeded,
        ErrorCode::Internal,
    ] {
        assert!(
            !is_retryable(&ClientError::Server {
                code,
                message: String::new(),
            }),
            "{code:?} must not be blind-retried"
        );
    }
}
