//! Chaos suite: fault-injected serving against both front ends.
//!
//! Every test here arms one or more runtime fault points
//! ([`msropm_server::faultinject`]) and asserts the serving contract
//! that matters under failure:
//!
//! - **every submit terminates in a typed outcome** — a report, a
//!   typed `JobFailed`/`Error` frame, or a `cancelled` status; never a
//!   hang, never a lost ticket (all waits are bounded);
//! - **quotas are always released**: after a churn of panics, dead
//!   workers, expired deadlines and cancels, the tenant can fill its
//!   entire in-flight quota again;
//! - **the pool self-heals**: killed workers are respawned by the
//!   supervisor (`worker_restarts` > 0) and throughput recovers — a
//!   fresh batch completes normally after the burst;
//! - **unaffected jobs stay byte-identical**: report frames for jobs
//!   that survive the chaos match across
//!   {threads, reactor} × {1, 4 workers} × {1, 4 shards}, bit for bit
//!   (modulo the volatile id/timing fields) — failure handling must
//!   not perturb the solver at any intra-job shard width;
//! - **shard faults stay job-scoped**: a panic inside one shard of a
//!   sharded solve unwinds the whole job to a typed failure (arena
//!   rebuilt, no worker restart) and the server keeps serving;
//! - **socket faults degrade cleanly**: short writes never corrupt
//!   frames, severed writes surface as typed I/O errors.
//!
//! Fault points are process-global, so every test serializes on
//! [`CHAOS`] and holds a [`faultinject::guard`] to disarm on every
//! exit path (panicking assertions included).

mod common;
use common::SubmitShorthand;

use msropm_client::{Client, ClientError, SubmitOptions};
use msropm_core::{BatchJob, MsropmConfig, SweepParam, SweepSpec};
use msropm_graph::{generators, Graph};
use msropm_problems::ProblemSpec;
use msropm_server::faultinject;
use msropm_server::proto::{
    self, encode_response, ErrorCode, FrontendKind, Request, Response, WireReport,
};
use msropm_server::reactor::{ReactorConfig, ReactorServer};
use msropm_server::wire::{WireConfig, WireServer};
use msropm_server::{Frontend, JobState, ServerConfig, ShardPolicy};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Serializes the suite: fault points are process-global state.
static CHAOS: Mutex<()> = Mutex::new(());

/// No wait in this suite is unbounded; anything slower than this is a
/// hang, which is exactly what the suite exists to catch.
const NO_HANG: Duration = Duration::from_secs(60);

fn chaos_lock() -> MutexGuard<'static, ()> {
    // A panicked sibling test must not wedge the rest of the suite.
    CHAOS.lock().unwrap_or_else(PoisonError::into_inner)
}

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

fn wire_config(workers: usize, shards: usize) -> WireConfig {
    WireConfig {
        server: ServerConfig {
            workers,
            queue_capacity: 32,
            cache_capacity: 4,
            shards: ShardPolicy::Fixed(shards),
            ..ServerConfig::default()
        },
        max_inflight_jobs: 32,
        max_queued_lanes: 4096,
        max_connections: 8,
    }
}

fn bind_frontend(frontend: FrontendKind, workers: usize, shards: usize) -> Frontend {
    match frontend {
        FrontendKind::Threads => WireServer::bind("127.0.0.1:0", wire_config(workers, shards))
            .expect("bind threads")
            .into(),
        FrontendKind::Reactor => ReactorServer::bind(
            "127.0.0.1:0",
            ReactorConfig {
                wire: wire_config(workers, shards),
                ..ReactorConfig::default()
            },
        )
        .expect("bind reactor")
        .into(),
        // The chaos matrix drives the binary protocol through the
        // library client; the HTTP gateway has its own fault coverage
        // in the server crate.
        FrontendKind::Http => unreachable!("chaos matrix only drives binary front ends"),
    }
}

/// The full front-end × worker-count × shard-width matrix the
/// acceptance criteria name (the sharded rows keep the suite's runtime
/// bounded by reusing one front end per worker count).
const MATRIX: [(FrontendKind, usize, usize); 6] = [
    (FrontendKind::Threads, 1, 1),
    (FrontendKind::Threads, 4, 1),
    (FrontendKind::Reactor, 1, 1),
    (FrontendKind::Reactor, 4, 1),
    (FrontendKind::Threads, 1, 4),
    (FrontendKind::Reactor, 4, 4),
];

/// A small mixed workload: repeat + cold topologies, every third job a
/// heterogeneous sweep. Seeds are fixed so the same index always means
/// the same problem — the basis of the cross-run identity check.
fn mixed_jobs(n: usize) -> Vec<(Arc<Graph>, BatchJob)> {
    let pool = [
        Arc::new(generators::kings_graph(5, 5)),
        Arc::new(generators::cycle_graph(32)),
        Arc::new(generators::grid_graph(5, 5)),
    ];
    let sweep = SweepSpec::new()
        .grid(SweepParam::CouplingStrength, vec![0.8, 1.2])
        .grid(SweepParam::Noise, vec![0.1, 0.25]);
    (0..n)
        .map(|i| {
            let graph = Arc::clone(&pool[i % pool.len()]);
            let job = if i % 3 == 2 {
                BatchJob::from_sweep(fast_config(), &sweep, i as u64)
            } else {
                BatchJob::uniform(fast_config(), 6, i as u64)
            };
            (graph, job)
        })
        .collect()
}

/// A job heavy enough to hold a worker for a while (the occupier /
/// mid-run-deadline vehicle).
fn long_job(seed: u64) -> (Arc<Graph>, BatchJob) {
    (
        Arc::new(generators::kings_graph(8, 8)),
        BatchJob::uniform(fast_config(), 16, seed),
    )
}

/// Encodes a report frame minus the volatile fields (job id, timings),
/// for byte-level comparison across runs.
fn report_fingerprint(report: &WireReport) -> Vec<u8> {
    let mut stripped = report.clone();
    stripped.job_id = 0;
    stripped.queued_us = 0;
    stripped.service_us = 0;
    encode_response(&Response::Report(stripped))
}

/// How one submit of the chaos workload terminated. Every job lands in
/// exactly one of these — that *is* the no-lost-tickets claim.
#[derive(Debug)]
enum Outcome {
    Report(Vec<u8>),
    Failed(ErrorCode),
    Cancelled,
}

/// Waits (bounded) for job `id` to reach a typed outcome.
fn settle(client: &mut Client, id: u64, cancelled: bool, ctx: &str) -> Outcome {
    if cancelled {
        // Cancelled jobs never stream a frame; their terminal signal is
        // the status register. A cancel can race pickup/completion, so
        // any terminal state is a valid typed outcome.
        let t0 = Instant::now();
        loop {
            match client.status(id).expect("status") {
                JobState::Done => {
                    // Lost the race: the report is on the wire. Drain it
                    // so later frame accounting stays clean.
                    let report = client
                        .wait_report_timeout(id, NO_HANG)
                        .expect("report after cancel race")
                        .unwrap_or_else(|| panic!("{ctx}: done job {id} never streamed"));
                    return Outcome::Report(report_fingerprint(&report));
                }
                JobState::Cancelled => return Outcome::Cancelled,
                JobState::Failed => {
                    return match client.wait_report_timeout(id, Duration::from_secs(2)) {
                        Err(ClientError::Server { code, .. }) => Outcome::Failed(code),
                        // The failure frame may have been suppressed
                        // (cancel won at the boundary) — the status is
                        // still a typed terminal outcome.
                        Ok(None) => Outcome::Failed(ErrorCode::Internal),
                        other => panic!("{ctx}: failed job {id} yielded {other:?}"),
                    };
                }
                JobState::Queued | JobState::Running => {
                    assert!(t0.elapsed() < NO_HANG, "{ctx}: job {id} never settled");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
    match client.wait_report_timeout(id, NO_HANG) {
        Ok(Some(report)) => Outcome::Report(report_fingerprint(&report)),
        Ok(None) => panic!("{ctx}: job {id} hung (no frame within {NO_HANG:?})"),
        Err(ClientError::Server { code, .. }) => Outcome::Failed(code),
        Err(e) => panic!("{ctx}: job {id} surfaced transport error {e}"),
    }
}

/// Drives one chaos run: mixed submits (multiplexed), two cancels, a
/// panic-in-solve fault armed mid-stream, delayed completions
/// throughout. Returns the typed outcome of every submit, by job
/// index.
fn chaos_run(frontend: FrontendKind, workers: usize, shards: usize) -> BTreeMap<usize, Outcome> {
    let ctx = format!("{frontend:?}/{workers}w/{shards}s");
    let server = bind_frontend(frontend, workers, shards);
    let mut client = Client::connect(server.local_addr(), "chaos").expect("connect");

    // Slow every delivery a little and panic one solve mid-batch: the
    // chaos is identical per run, the *victim* job is whichever solve
    // the scheduler hands the countdown to.
    faultinject::arm_delay_completion(2);
    faultinject::arm_panic_in_solve(4);

    let jobs = mixed_jobs(12);
    for (graph, job) in &jobs {
        client.submit_nowait_ok(graph, job).expect("mux submit");
    }
    let ids: Vec<u64> = (0..jobs.len())
        .map(|_| client.recv_submitted().expect("mux reply"))
        .collect();
    let cancel_idx = [2usize, 7];
    for &c in &cancel_idx {
        client.cancel(ids[c]).expect("cancel");
    }

    let outcomes: BTreeMap<usize, Outcome> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (i, settle(&mut client, id, cancel_idx.contains(&i), &ctx)))
        .collect();

    // Quota release: every ticket above reached a terminal state, so
    // the tenant must be able to fill its entire in-flight quota again.
    faultinject::disarm_all();
    let quota = wire_config(workers, shards).max_inflight_jobs;
    let graph = Arc::new(generators::kings_graph(4, 4));
    for s in 0..quota {
        client
            .submit_nowait_ok(&graph, &BatchJob::uniform(fast_config(), 2, s as u64))
            .expect("quota submit");
    }
    let refill: Vec<u64> = (0..quota)
        .map(|_| {
            client
                .recv_submitted()
                .unwrap_or_else(|e| panic!("{ctx}: quota not fully released after chaos: {e}"))
        })
        .collect();
    for id in refill {
        settle(&mut client, id, false, &ctx);
    }

    // Drain completes: shutdown joins the workers and the supervisor.
    server.shutdown();
    outcomes
}

#[test]
fn chaos_every_submit_terminates_and_survivors_stay_identical() {
    let _serial = chaos_lock();
    let _faults = faultinject::guard();

    let runs: Vec<(String, BTreeMap<usize, Outcome>)> = MATRIX
        .into_iter()
        .map(|(frontend, workers, shards)| {
            (
                format!("{frontend:?}/{workers}w/{shards}s"),
                chaos_run(frontend, workers, shards),
            )
        })
        .collect();

    for (name, outcomes) in &runs {
        assert_eq!(outcomes.len(), 12, "{name}: a submit was lost");
        let failed = outcomes
            .values()
            .filter(|o| matches!(o, Outcome::Failed(code) if *code == ErrorCode::Internal))
            .count();
        assert!(
            failed >= 1,
            "{name}: the armed panic never surfaced as a typed Internal failure"
        );
    }

    // Byte-identity for the jobs that survived *everywhere*: the panic
    // victim and the cancel races differ per run, but any job that
    // reported in every run must have produced identical bytes —
    // across front ends, worker counts, and intra-job shard widths.
    let common: Vec<usize> = (0..12)
        .filter(|i| {
            runs.iter()
                .all(|(_, o)| matches!(o.get(i), Some(Outcome::Report(_))))
        })
        .collect();
    assert!(
        common.len() >= 6,
        "too few universally-surviving jobs to make the identity check meaningful: {common:?}"
    );
    let (ref_name, ref_outcomes) = &runs[0];
    for (name, outcomes) in &runs[1..] {
        for &i in &common {
            let (Some(Outcome::Report(a)), Some(Outcome::Report(b))) =
                (ref_outcomes.get(&i), outcomes.get(&i))
            else {
                unreachable!("filtered to universally-reported jobs");
            };
            assert_eq!(
                a, b,
                "job {i}: report bytes differ between {ref_name} and {name}"
            );
        }
    }
}

#[test]
fn panicking_solve_is_a_typed_failure_not_a_dead_server() {
    let _serial = chaos_lock();
    let _faults = faultinject::guard();
    for (frontend, workers) in [(FrontendKind::Threads, 1), (FrontendKind::Reactor, 1)] {
        let server = bind_frontend(frontend, workers, 1);
        let mut client = Client::connect(server.local_addr(), "chaos").expect("connect");
        let (graph, job) = &mixed_jobs(1)[0];

        faultinject::arm_panic_in_solve(1);
        let id = client.submit_ok(graph, job).expect("submit");
        match client.wait_report_timeout(id, NO_HANG) {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::Internal, "{frontend:?}");
                assert!(
                    message.contains("panic"),
                    "{frontend:?}: failure message should carry the panic text, got {message:?}"
                );
            }
            other => panic!("{frontend:?}: expected typed failure, got {other:?}"),
        }
        assert_eq!(client.status(id).expect("status"), JobState::Failed);

        // The worker caught the panic in place: the very next job
        // solves normally and the failure is counted.
        let id2 = client.submit_ok(graph, job).expect("submit after panic");
        client.wait_report(id2).expect("report after panic");
        let stats = client.stats().expect("stats");
        assert!(stats.jobs_failed >= 1, "{frontend:?}: {stats:?}");
        assert_eq!(
            stats.worker_restarts, 0,
            "{frontend:?}: caught panic must not cost a restart"
        );
        server.shutdown();
    }
}

/// Disarms the *core* pool's shard-panic fault on drop — it is a
/// separate fault point from the server crate's `faultinject`, so the
/// server-side guard does not cover it and a failing assertion must
/// not leak it into later tests.
struct ShardFaultGuard;

impl Drop for ShardFaultGuard {
    fn drop(&mut self) {
        msropm_core::pool::faultinject::disarm();
    }
}

#[test]
fn shard_panic_is_a_typed_failure_not_a_dead_server() {
    let _serial = chaos_lock();
    let _faults = faultinject::guard();
    let _shard_fault = ShardFaultGuard;
    for (frontend, shards) in [(FrontendKind::Threads, 4), (FrontendKind::Reactor, 2)] {
        let server = bind_frontend(frontend, 1, shards);
        let mut client = Client::connect(server.local_addr(), "chaos").expect("connect");
        // A job wide enough that every shard of the fixed width gets
        // lanes — the armed shard is guaranteed to run.
        let graph = Arc::new(generators::kings_graph(4, 4));
        let job = BatchJob::uniform(fast_config(), 8, 77);

        // One shard of the sharded solve panics; the unwind crosses the
        // shard join, the worker's catch_unwind types it, and the
        // worker (arena rebuilt) lives on.
        msropm_core::pool::faultinject::arm_panic_in_shard(1);
        let id = client.submit_ok(&graph, &job).expect("submit");
        match client.wait_report_timeout(id, NO_HANG) {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, ErrorCode::Internal, "{frontend:?}/{shards}s");
                assert!(
                    message.contains("injected shard panic"),
                    "{frontend:?}/{shards}s: failure should carry the shard panic text, \
                     got {message:?}"
                );
            }
            other => panic!("{frontend:?}/{shards}s: expected typed failure, got {other:?}"),
        }
        assert_eq!(client.status(id).expect("status"), JobState::Failed);

        // Same job, fault disarmed by its one-shot firing: the rebuilt
        // arena solves it normally, and a shard panic costs a failure
        // count but never a worker restart.
        let id2 = client
            .submit_ok(&graph, &job)
            .expect("submit after shard panic");
        client.wait_report(id2).expect("report after shard panic");
        let stats = client.stats().expect("stats");
        assert!(stats.jobs_failed >= 1, "{frontend:?}/{shards}s: {stats:?}");
        assert_eq!(
            stats.worker_restarts, 0,
            "{frontend:?}/{shards}s: a caught shard panic must not cost a restart"
        );
        assert!(
            stats.jobs_sharded >= 2 && stats.shard_width_max >= shards as u64,
            "{frontend:?}/{shards}s: shard counters missed the sharded solves: {stats:?}"
        );
        server.shutdown();
    }
}

#[test]
fn killed_workers_are_respawned_and_throughput_recovers() {
    let _serial = chaos_lock();
    let _faults = faultinject::guard();
    for (frontend, workers) in [(FrontendKind::Threads, 1), (FrontendKind::Reactor, 4)] {
        let server = bind_frontend(frontend, workers, 1);
        let mut client = Client::connect(server.local_addr(), "chaos").expect("connect");
        let (graph, job) = &mixed_jobs(1)[0];

        // A burst of three worker deaths; each must surface as a typed
        // failure on its job and cost exactly one respawn.
        for round in 0..3u64 {
            faultinject::arm_kill_worker(1);
            let id = client.submit_ok(graph, job).expect("submit");
            match client.wait_report_timeout(id, NO_HANG) {
                Err(ClientError::Server { code, message }) => {
                    assert_eq!(code, ErrorCode::Internal, "{frontend:?} round {round}");
                    assert!(
                        message.contains("worker died"),
                        "{frontend:?} round {round}: got {message:?}"
                    );
                }
                other => panic!("{frontend:?} round {round}: got {other:?}"),
            }
            assert_eq!(client.status(id).expect("status"), JobState::Failed);
        }

        // Self-healed: restarts were observed and a full fresh batch
        // completes — with 1 worker this only passes if the pool really
        // was respawned.
        let t0 = Instant::now();
        loop {
            let stats = client.stats().expect("stats");
            if stats.worker_restarts >= 3 {
                assert!(stats.jobs_failed >= 3, "{frontend:?}: {stats:?}");
                break;
            }
            assert!(
                t0.elapsed() < NO_HANG,
                "{frontend:?}: supervisor never logged 3 restarts: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        for (graph, job) in &mixed_jobs(6) {
            let id = client.submit_ok(graph, job).expect("submit after burst");
            client.wait_report(id).expect("report after burst");
        }
        server.shutdown();
    }
}

#[test]
fn deadlines_expire_in_queue_and_mid_run_with_typed_errors() {
    let _serial = chaos_lock();
    let _faults = faultinject::guard();
    // The shard axis rides along: deadline semantics fire at stage
    // boundaries, which a sharded solve joins through identically.
    for (frontend, workers, shards) in
        [(FrontendKind::Threads, 1, 1), (FrontendKind::Reactor, 1, 4)]
    {
        let server = bind_frontend(frontend, workers, shards);
        let mut client = Client::connect(server.local_addr(), "chaos").expect("connect");

        // Queue-wait shedding: the single worker is busy, so a 1 ms
        // deadline is long dead by pickup — the job must be shed
        // without ever running.
        let (og, oj) = long_job(900);
        let occupier = client.submit_ok(&og, &oj).expect("occupier");
        let (graph, job) = &mixed_jobs(1)[0];
        let doomed = client
            .submit_deadline_ok(graph, job, 1)
            .expect("deadline submit");
        match client.wait_report_timeout(doomed, NO_HANG) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::DeadlineExceeded, "{frontend:?}")
            }
            other => panic!("{frontend:?}: queued deadline yielded {other:?}"),
        }
        assert_eq!(client.status(doomed).expect("status"), JobState::Failed);
        client.wait_report(occupier).expect("occupier report");

        // Mid-run expiry: a heavy job with a deadline shorter than its
        // runtime starts on an idle worker and is abandoned at a stage
        // boundary.
        let (hg, hj) = long_job(901);
        let midrun = client
            .submit_deadline_ok(&hg, &hj, 20)
            .expect("midrun submit");
        match client.wait_report_timeout(midrun, NO_HANG) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::DeadlineExceeded, "{frontend:?} midrun")
            }
            other => panic!("{frontend:?}: midrun deadline yielded {other:?}"),
        }

        // deadline_ms = 0 means no deadline — and expiries released
        // their quota (the fresh submits are admitted and complete).
        let clean = client
            .submit_deadline_ok(graph, job, 0)
            .expect("no deadline");
        client.wait_report(clean).expect("report");
        let stats = client.stats().expect("stats");
        assert!(stats.jobs_failed >= 2, "{frontend:?}: {stats:?}");
        server.shutdown();
    }
}

#[test]
fn short_writes_dribble_frames_through_intact() {
    let _serial = chaos_lock();
    let _faults = faultinject::guard();

    // Reference fingerprints with the wire healthy...
    let reference: Vec<Vec<u8>> = {
        let server = bind_frontend(FrontendKind::Threads, 1, 1);
        let mut client = Client::connect(server.local_addr(), "chaos").expect("connect");
        let prints = mixed_jobs(4)
            .iter()
            .map(|(g, j)| {
                let id = client.submit_ok(g, j).expect("submit");
                report_fingerprint(&client.wait_report(id).expect("report"))
            })
            .collect();
        server.shutdown();
        prints
    };

    // ...must survive every frame crossing the socket 7 bytes at a
    // time, on both front ends' write paths.
    for frontend in [FrontendKind::Threads, FrontendKind::Reactor] {
        let server = bind_frontend(frontend, 1, 1);
        let mut client = Client::connect(server.local_addr(), "chaos").expect("connect");
        faultinject::arm_short_writes();
        for (i, (g, j)) in mixed_jobs(4).iter().enumerate() {
            let id = client.submit_ok(g, j).expect("submit");
            let report = client.wait_report(id).expect("report");
            assert_eq!(
                report_fingerprint(&report),
                reference[i],
                "{frontend:?}: job {i} corrupted by short writes"
            );
        }
        faultinject::disarm_all();
        server.shutdown();
    }
}

/// Request-scoped rejections are not connection faults: a problem the
/// compiler refuses ([`ErrorCode::UnsupportedProblem`]) and a verb the
/// decoder has never heard of ([`ErrorCode::UnsupportedVerb`]) must
/// each answer one typed error frame and leave the connection serving
/// the very next request — on both front ends.
#[test]
fn unsupported_problem_and_unknown_verb_leave_the_connection_alive() {
    let _serial = chaos_lock();
    let _faults = faultinject::guard();
    for frontend in [FrontendKind::Threads, FrontendKind::Reactor] {
        let server = bind_frontend(frontend, 1, 1);
        let mut client = Client::connect(server.local_addr(), "chaos").expect("connect");
        let config = fast_config();

        // A 3-color palette is not a power of two: the session's
        // compile step must reject it request-scoped.
        let bad = ProblemSpec::Coloring {
            graph: generators::cycle_graph(5),
            colors: 3,
        };
        match client.submit_problem(&bad, &config, 2, 1, &SubmitOptions::new()) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::UnsupportedProblem, "{frontend:?}")
            }
            other => panic!("{frontend:?}: unsupported spec yielded {other:?}"),
        }

        // Same socket, next requests: a valid problem and a plain job
        // both serve normally — no desync, no teardown.
        let good = ProblemSpec::Mis {
            graph: generators::cycle_graph(9),
        };
        let pid = client
            .submit_problem(&good, &config, 2, 2, &SubmitOptions::new())
            .unwrap_or_else(|e| panic!("{frontend:?}: problem after rejection: {e}"))
            .expect("blocking submit yields an id");
        client
            .wait_problem_report(pid)
            .unwrap_or_else(|e| panic!("{frontend:?}: problem report after rejection: {e}"));
        let (graph, job) = &mixed_jobs(1)[0];
        let id = client.submit_ok(graph, job).expect("plain submit");
        client.wait_report(id).expect("plain report");

        // An unknown verb on a raw socket: typed UnsupportedVerb, then
        // a Stats request on the same socket still answers.
        let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("raw connect");
        proto::write_frame(&mut raw, &[0xAB, 0xCD, 0xEF]).expect("raw write");
        let mut reader = std::io::BufReader::new(raw.try_clone().expect("raw clone"));
        let reply = proto::read_frame(&mut reader).expect("raw read");
        match proto::decode_response(&reply) {
            Ok(Response::Error {
                code: ErrorCode::UnsupportedVerb,
                ..
            }) => {}
            other => panic!("{frontend:?}: unknown verb yielded {other:?}"),
        }
        proto::write_frame(&mut raw, &proto::encode_request(&Request::Stats))
            .expect("stats after bad verb");
        let reply = proto::read_frame(&mut reader).expect("stats read after bad verb");
        match proto::decode_response(&reply) {
            Ok(Response::StatsReply(_)) => {}
            other => panic!("{frontend:?}: stats after bad verb yielded {other:?}"),
        }
        server.shutdown();
    }
}

#[test]
fn severed_write_surfaces_as_transport_error_not_a_hang() {
    let _serial = chaos_lock();
    let _faults = faultinject::guard();
    for frontend in [FrontendKind::Threads, FrontendKind::Reactor] {
        let server = bind_frontend(frontend, 1, 1);
        let mut client = Client::connect(server.local_addr(), "chaos").expect("connect");
        let (graph, job) = &mixed_jobs(1)[0];

        // The next server-side write (this submit's reply) severs the
        // connection. The client must get a typed, retryable transport
        // error — not block forever on a half-open socket.
        faultinject::arm_sever_write(1);
        let t0 = Instant::now();
        let err = client
            .submit_ok(graph, job)
            .err()
            .or_else(|| {
                // The submit reply may have raced the arming; the
                // report write then takes the sever.
                client.wait_report(1).err()
            })
            .expect("severed connection must error");
        assert!(
            t0.elapsed() < NO_HANG,
            "{frontend:?}: sever hung the client"
        );
        assert!(
            matches!(err, ClientError::Io(_)),
            "{frontend:?}: expected transport error, got {err:?}"
        );
        assert!(
            msropm_client::is_retryable(&err),
            "{frontend:?}: a severed connection should be retryable: {err:?}"
        );
        server.shutdown();
    }
}
