//! Cross-front-end equivalence: the gate that makes swapping the
//! transport safe.
//!
//! The reactor front end reuses the threaded front end's entire session
//! layer, so the observable wire contract must be *identical*. This
//! file pins the strongest form of that claim on a mixed
//! submit/cancel workload driven through the real library client over
//! real loopback sockets:
//!
//! 1. **byte-identical report frames** across
//!    {threaded, reactor} × {1, 4 workers} — framing included, modulo
//!    the volatile job-id/timing fields;
//! 2. **cancellation parity**: the cancelled subset never streams a
//!    report and settles `cancelled` on every front end;
//! 3. the multiplexed client mode (many in-flight submits on one
//!    socket) behaves identically on both front ends — it is how the
//!    workload is driven;
//! 4. **transport-codec parity**: a problem report served over the
//!    HTTP/JSON gateway reconstructs byte-identically to the binary
//!    wire's frame for the same job — the JSON codec is lossless.

mod common;
use common::SubmitShorthand;

use msropm_client::http::{problem_report_from_json, HttpClient};
use msropm_client::{Client, SubmitOptions};
use msropm_core::{BatchJob, MsropmConfig, SweepParam, SweepSpec};
use msropm_graph::{generators, io as graph_io, Graph};
use msropm_problems::json::Json;
use msropm_problems::{Cnf, Lit, ProblemSpec};
use msropm_server::proto::{
    encode_response, FrontendKind, Response, WireProblemReport, WireReport,
};
use msropm_server::{Frontend, JobState, ServerConfig, ShardPolicy};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

/// Binds the requested front end on an ephemeral loopback port through
/// the one server-boot API, so the workload driver is
/// front-end-agnostic.
fn bind_frontend(frontend: FrontendKind, workers: usize, shards: ShardPolicy) -> Frontend {
    ServerConfig::builder()
        .frontend(frontend)
        .workers(workers)
        .queue_capacity(32)
        .cache_capacity(4) // smaller than the graph pool: eviction churn included
        .shards(shards)
        .max_inflight_jobs(32)
        .max_queued_lanes(1024)
        .max_connections(8)
        .bind("127.0.0.1:0")
        .expect("bind frontend")
}

/// A small mixed workload: repeat + cold topologies, every third job a
/// heterogeneous sweep.
fn mixed_jobs(n: usize) -> Vec<(Arc<Graph>, BatchJob)> {
    let pool = [
        Arc::new(generators::kings_graph(5, 5)),
        Arc::new(generators::cycle_graph(32)),
        Arc::new(generators::grid_graph(5, 5)),
    ];
    let sweep = SweepSpec::new()
        .grid(SweepParam::CouplingStrength, vec![0.8, 1.2])
        .grid(SweepParam::Noise, vec![0.1, 0.25]);
    (0..n)
        .map(|i| {
            let graph = Arc::clone(&pool[i % pool.len()]);
            let job = if i % 3 == 2 {
                BatchJob::from_sweep(fast_config(), &sweep, i as u64)
            } else {
                BatchJob::uniform(fast_config(), 6, i as u64)
            };
            (graph, job)
        })
        .collect()
}

/// Encodes a report frame minus the volatile fields (job id, timings),
/// for byte-level comparison across runs.
fn report_fingerprint(report: &WireReport) -> Vec<u8> {
    let mut stripped = report.clone();
    stripped.job_id = 0;
    stripped.queued_us = 0;
    stripped.service_us = 0;
    encode_response(&Response::Report(stripped))
}

/// `(job index, fingerprint bytes)` for every surviving job of one run.
type RunFingerprints = Vec<(usize, Vec<u8>)>;

/// Drives the mixed workload through one server: occupy every worker
/// with a long job, multiplex-submit the batch, cancel `cancel_idx`
/// while they are still queued, then collect fingerprints of the
/// surviving reports and verify the cancelled subset never reports.
fn run_workload(frontend: FrontendKind, workers: usize, cancel_idx: &[usize]) -> RunFingerprints {
    let server = bind_frontend(frontend, workers, ShardPolicy::Auto);
    assert_eq!(server.kind(), frontend);
    let mut client = Client::connect(server.local_addr(), "parity").expect("connect");
    assert_eq!(client.stats().expect("stats").frontend, frontend);

    // One long job per worker so every later cancel provably lands
    // before pickup (cooperative cancellation then means: no report).
    let board = Arc::new(generators::kings_graph(8, 8));
    let occupiers: Vec<u64> = (0..workers)
        .map(|w| {
            client
                .submit_ok(
                    &board,
                    &BatchJob::uniform(fast_config(), 16, 7_000 + w as u64),
                )
                .expect("occupier admitted")
        })
        .collect();

    // The batch rides one socket multiplexed: all submits written
    // before any reply is read.
    let jobs = mixed_jobs(9);
    for (graph, job) in &jobs {
        client.submit_nowait_ok(graph, job).expect("mux submit");
    }
    let ids: Vec<u64> = (0..jobs.len())
        .map(|_| client.recv_submitted().expect("mux reply"))
        .collect();
    for &c in cancel_idx {
        client.cancel(ids[c]).expect("cancel");
    }

    // Collect every surviving report (fingerprinted), in job order.
    let mut fingerprints = Vec::new();
    for (i, &id) in ids.iter().enumerate() {
        if cancel_idx.contains(&i) {
            continue;
        }
        let report = client.wait_report(id).expect("report streamed");
        fingerprints.push((i, report_fingerprint(&report)));
    }
    for &id in &occupiers {
        client.wait_report(id).expect("occupier report");
    }

    // Cancelled jobs settle in `cancelled` and never stream a report.
    for &c in cancel_idx {
        let mut state = JobState::Queued;
        for _ in 0..200 {
            state = client.status(ids[c]).expect("status");
            if state == JobState::Cancelled {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            state,
            JobState::Cancelled,
            "{frontend:?}/{workers}w: cancelled job {c} never settled"
        );
        assert!(
            client
                .wait_report_timeout(ids[c], Duration::from_millis(300))
                .expect("drain")
                .is_none(),
            "{frontend:?}/{workers}w: cancelled job {c} streamed a report"
        );
    }
    server.shutdown();
    fingerprints
}

/// The problem specs driven through every cell of the parity matrix:
/// five distinct classes, all small enough to keep the 8-run matrix
/// fast.
fn problem_specs() -> Vec<ProblemSpec> {
    let mut cnf = Cnf::new(4);
    cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]);
    cnf.add_clause(vec![Lit::from_dimacs(-1), Lit::from_dimacs(3)]);
    cnf.add_clause(vec![Lit::from_dimacs(-2), Lit::from_dimacs(-3)]);
    cnf.add_clause(vec![Lit::from_dimacs(-3), Lit::from_dimacs(4)]);
    vec![
        ProblemSpec::Mis {
            graph: generators::cycle_graph(9),
        },
        ProblemSpec::VertexCover {
            graph: generators::kings_graph(3, 3),
        },
        ProblemSpec::MaxKCut {
            graph: generators::kings_graph(4, 4),
            k: 4,
        },
        ProblemSpec::NumberPartition {
            weights: vec![3, 1, 4, 1, 5, 9, 2, 6],
        },
        ProblemSpec::CnfSat { cnf },
    ]
}

/// Encodes a problem-report frame minus the volatile fields, for
/// byte-level comparison across runs.
fn problem_fingerprint(report: &WireProblemReport) -> Vec<u8> {
    let mut stripped = report.clone();
    stripped.job_id = 0;
    stripped.queued_us = 0;
    stripped.service_us = 0;
    encode_response(&Response::ProblemReport(stripped))
}

/// Submits every problem spec through one server cell of the matrix
/// and returns the stripped report frames in submission order.
fn run_problem_workload(
    frontend: FrontendKind,
    workers: usize,
    shards: ShardPolicy,
) -> Vec<Vec<u8>> {
    let server = bind_frontend(frontend, workers, shards);
    let mut client = Client::connect(server.local_addr(), "problem-parity").expect("connect");
    let config = fast_config();
    let ids: Vec<u64> = problem_specs()
        .iter()
        .map(|spec| {
            client
                .submit_problem(spec, &config, 4, 21, &SubmitOptions::new())
                .expect("submit problem")
                .expect("blocking submit yields an id")
        })
        .collect();
    let frames = ids
        .iter()
        .map(|&id| problem_fingerprint(&client.wait_problem_report(id).expect("problem report")))
        .collect();
    server.shutdown();
    frames
}

/// Renders a spec in the class's native text format — the inverse of
/// the gateway's `from_text` ingestion, preserving edge/clause order so
/// the server-side reconstruction is the identical instance. Returns
/// the text and the `k` parameter (0 where the class takes none).
fn problem_input(spec: &ProblemSpec) -> (String, u16) {
    fn dimacs(graph: &Graph) -> String {
        let mut buf = Vec::new();
        graph_io::write_dimacs(graph, &mut buf).expect("write to vec");
        String::from_utf8(buf).expect("dimacs is ascii")
    }
    match spec {
        ProblemSpec::Mis { graph } | ProblemSpec::VertexCover { graph } => (dimacs(graph), 0),
        ProblemSpec::MaxKCut { graph, k } => (dimacs(graph), *k),
        ProblemSpec::NumberPartition { weights } => (
            weights
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" "),
            0,
        ),
        ProblemSpec::CnfSat { cnf } => {
            let mut text = format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses());
            for clause in cnf.clauses() {
                for lit in clause {
                    text.push_str(&format!("{} ", lit.to_dimacs()));
                }
                text.push_str("0\n");
            }
            (text, 0)
        }
        other => unreachable!("problem_specs() does not produce {other:?}"),
    }
}

/// Looks a field up in a JSON object (panicking helpers keep the test
/// terse).
fn json_field(value: &Json, key: &str) -> Json {
    let Json::Obj(fields) = value else {
        panic!("expected object, got {value:?}");
    };
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| panic!("missing field {key:?} in {value:?}"))
}

/// Polls `GET /v1/jobs/{id}` until the job is done and returns its
/// rendered report.
fn poll_http_report(client: &mut HttpClient, job_id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = client
            .request_json(
                "GET",
                &format!("/v1/jobs/{job_id}?tenant=problem-parity"),
                None,
            )
            .expect("poll status");
        assert_eq!(status, 200, "{body:?}");
        let state = json_field(&body, "state");
        if state.as_str() == Some("done") {
            return json_field(&body, "report");
        }
        assert!(Instant::now() < deadline, "job {job_id} stuck in {state:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The HTTP cell of the parity matrix: every spec rendered to its text
/// format, submitted as JSON over the gateway, the JSON report mapped
/// back onto the wire struct, and fingerprinted with the *same*
/// binary encoder as the other front ends.
fn run_problem_workload_http(workers: usize, shards: ShardPolicy) -> Vec<Vec<u8>> {
    let server = bind_frontend(FrontendKind::Http, workers, shards);
    let mut client = HttpClient::connect(server.local_addr()).expect("connect http");
    let ids: Vec<u64> = problem_specs()
        .iter()
        .map(|spec| {
            let (input, k) = problem_input(spec);
            let mut fields = vec![
                ("tenant".into(), Json::Str("problem-parity".into())),
                ("class".into(), Json::Str(spec.class().name().into())),
                ("input".into(), Json::Str(input)),
                ("replicas".into(), Json::Num(4.0)),
                ("seed".into(), Json::Num(21.0)),
                (
                    "config".into(),
                    Json::Obj(vec![("dt".into(), Json::Num(0.02))]),
                ),
            ];
            if k != 0 {
                fields.push(("k".into(), Json::Num(f64::from(k))));
            }
            let body = Json::Obj(fields).render();
            let (status, reply) = client
                .request_json("POST", "/v1/problems", Some(&body))
                .expect("submit problem");
            assert_eq!(status, 202, "{reply:?}");
            json_field(&reply, "job_id")
                .as_u64()
                .expect("job_id is a u64")
        })
        .collect();
    let frames = ids
        .iter()
        .map(|&id| {
            let report = poll_http_report(&mut client, id);
            let wire = problem_report_from_json(&report).expect("JSON report maps onto the wire");
            problem_fingerprint(&wire)
        })
        .collect();
    server.shutdown();
    frames
}

/// The ISSUE acceptance matrix: typed problem reports are
/// byte-identical across {threads, reactor, http} × {1, 4 workers} ×
/// {1, 4 shards} for every problem class — including across the
/// binary-vs-JSON codec boundary.
#[test]
fn problem_reports_are_bit_identical_across_frontends_workers_and_shards() {
    let mut runs = Vec::new();
    for frontend in [
        FrontendKind::Threads,
        FrontendKind::Reactor,
        FrontendKind::Http,
    ] {
        for workers in [1usize, 4] {
            for shards in [ShardPolicy::Fixed(1), ShardPolicy::Fixed(4)] {
                let frames = match frontend {
                    FrontendKind::Http => run_problem_workload_http(workers, shards),
                    _ => run_problem_workload(frontend, workers, shards),
                };
                runs.push((format!("{frontend:?}/{workers}w/{shards:?}"), frames));
            }
        }
    }
    let (reference_name, reference) = &runs[0];
    assert_eq!(reference.len(), problem_specs().len());
    for (name, frames) in &runs[1..] {
        assert_eq!(frames.len(), reference.len());
        for (i, (bytes, ref_bytes)) in frames.iter().zip(reference).enumerate() {
            assert_eq!(
                bytes, ref_bytes,
                "problem {i}: report bytes differ between {reference_name} and {name}"
            );
        }
    }
}

#[test]
fn wire_reports_are_bit_identical_across_frontends_and_worker_counts() {
    let cancel_idx = [2usize, 5];
    let runs: Vec<(String, RunFingerprints)> = [
        (FrontendKind::Threads, 1),
        (FrontendKind::Threads, 4),
        (FrontendKind::Reactor, 1),
        (FrontendKind::Reactor, 4),
    ]
    .into_iter()
    .map(|(frontend, workers)| {
        (
            format!("{frontend:?}/{workers}w"),
            run_workload(frontend, workers, &cancel_idx),
        )
    })
    .collect();
    let (reference_name, reference) = &runs[0];
    assert_eq!(reference.len(), 7, "9 jobs minus 2 cancelled");
    for (name, fingerprints) in &runs[1..] {
        assert_eq!(fingerprints.len(), reference.len());
        for ((job, bytes), (ref_job, ref_bytes)) in fingerprints.iter().zip(reference) {
            assert_eq!(job, ref_job);
            assert_eq!(
                bytes, ref_bytes,
                "job {job}: wire report bytes differ between {reference_name} and {name}"
            );
        }
    }
}
