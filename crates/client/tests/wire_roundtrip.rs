//! Full-stack wire tests: real loopback TCP sockets, the library
//! client, and a live [`WireServer`] — pinning the two properties the
//! socket path must preserve on top of the in-process server:
//!
//! 1. **determinism across the wire**: the report frames of one job are
//!    byte-identical whether the backing pool runs 1 worker or 4 (the
//!    PR 3 property, now including framing);
//! 2. **cancellation semantics**: a cancelled job never streams a
//!    report, and its quota slot frees for the tenant.

mod common;
use common::SubmitShorthand;

use msropm_client::{Client, ClientError, RetryPolicy, SubmitOptions};
use msropm_core::{BatchJob, MsropmConfig, SweepParam, SweepSpec};
use msropm_graph::{generators, graph_hash};
use msropm_server::proto::{encode_response, ErrorCode, Response, WireReport};
use msropm_server::wire::{WireConfig, WireServer};
use msropm_server::ServerConfig;
use std::sync::Arc;
use std::time::Duration;

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

fn server_with(workers: usize) -> WireServer {
    WireServer::bind(
        "127.0.0.1:0",
        WireConfig {
            server: ServerConfig {
                workers,
                queue_capacity: 16,
                cache_capacity: 4, // smaller than the graph pool: eviction churn included
                ..ServerConfig::default()
            },
            ..WireConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// A small mixed workload: repeat + cold topologies, every third job a
/// heterogeneous sweep.
fn mixed_jobs(n: usize) -> Vec<(Arc<msropm_graph::Graph>, BatchJob)> {
    let pool = [
        Arc::new(generators::kings_graph(5, 5)),
        Arc::new(generators::cycle_graph(32)),
        Arc::new(generators::grid_graph(5, 5)),
    ];
    let sweep = SweepSpec::new()
        .grid(SweepParam::CouplingStrength, vec![0.8, 1.2])
        .grid(SweepParam::Noise, vec![0.1, 0.25]);
    (0..n)
        .map(|i| {
            let graph = Arc::clone(&pool[i % pool.len()]);
            let job = if i % 3 == 2 {
                BatchJob::from_sweep(fast_config(), &sweep, i as u64)
            } else {
                BatchJob::uniform(fast_config(), 6, i as u64)
            };
            (graph, job)
        })
        .collect()
}

/// Encodes a report frame minus the volatile timing fields, for
/// byte-level comparison across runs.
fn report_fingerprint(report: &WireReport) -> Vec<u8> {
    let mut stripped = report.clone();
    stripped.job_id = 0;
    stripped.queued_us = 0;
    stripped.service_us = 0;
    encode_response(&Response::Report(stripped))
}

#[test]
fn wire_reports_are_bit_identical_across_worker_counts() {
    let runs: Vec<Vec<Vec<u8>>> = [1usize, 4]
        .iter()
        .map(|&workers| {
            let server = server_with(workers);
            let mut client = Client::connect(server.local_addr(), "determinism").expect("connect");
            let jobs = mixed_jobs(9);
            let ids: Vec<u64> = jobs
                .iter()
                .map(|(g, job)| client.submit_ok(g, job).expect("submit"))
                .collect();
            let fingerprints = ids
                .iter()
                .map(|&id| report_fingerprint(&client.wait_report(id).expect("report")))
                .collect();
            server.shutdown();
            fingerprints
        })
        .collect();
    assert_eq!(runs[0].len(), runs[1].len());
    for (i, (a, b)) in runs[0].iter().zip(&runs[1]).enumerate() {
        assert_eq!(
            a, b,
            "job {i}: wire report bytes differ across 1 vs 4 workers"
        );
    }
}

#[test]
fn reports_carry_verifiable_hashes_and_rankings() {
    let server = server_with(2);
    let mut client = Client::connect(server.local_addr(), "verify").expect("connect");
    let g = generators::kings_graph(5, 5);
    let job = BatchJob::uniform(fast_config(), 8, 3);
    let id = client.submit_ok(&g, &job).expect("submit");
    let report = client.wait_report(id).expect("report");
    assert_eq!(report.graph_hash, graph_hash(&g));
    assert_eq!(report.seed, 3);
    assert_eq!(report.ranked.len(), 8);
    for pair in report.ranked.windows(2) {
        assert!(
            pair[0].conflicts <= pair[1].conflicts,
            "ranking is best-first"
        );
    }
    for lane in &report.ranked {
        assert_eq!(
            msropm_server::proto::verify_lane(&g, lane),
            Some(lane.conflicts),
            "client-side conflict recount must match"
        );
    }
    server.shutdown();
}

#[test]
fn blocking_verbs_never_consume_outstanding_mux_replies() {
    let server = server_with(1);
    let mut client = Client::connect(server.local_addr(), "mux").expect("connect");
    let g = generators::kings_graph(5, 5);
    // Two multiplexed submits left outstanding on purpose.
    client
        .submit_nowait_ok(&g, &BatchJob::uniform(fast_config(), 2, 1))
        .expect("mux submit A");
    client
        .submit_nowait_ok(&g, &BatchJob::uniform(fast_config(), 2, 2))
        .expect("mux submit B");
    // An interleaved blocking verb must read *past* the outstanding
    // submit replies (collecting them), not mistake one for its own.
    let stats = client.stats().expect("stats while submits outstanding");
    assert!(stats.backlog <= 3);
    assert_eq!(client.pending_submits(), 2);
    // A blocking submit returns its OWN job id, not the oldest
    // outstanding one; the server assigns ids in admission order.
    let c = client
        .submit_ok(&g, &BatchJob::uniform(fast_config(), 2, 3))
        .expect("blocking submit");
    let a = client.recv_submitted().expect("collected reply A");
    let b = client.recv_submitted().expect("collected reply B");
    assert!(
        a < b && b < c,
        "ids must reflect admission order: {a} {b} {c}"
    );
    assert_eq!(client.pending_submits(), 0);
    // Every job redeems by its true id.
    for id in [a, b, c] {
        assert_eq!(client.wait_report(id).expect("report").job_id, id);
    }
    server.shutdown();
}

#[test]
fn quota_rejection_is_tenant_scoped_through_the_client() {
    let server = WireServer::bind(
        "127.0.0.1:0",
        WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 4,
                ..ServerConfig::default()
            },
            max_inflight_jobs: 1,
            max_queued_lanes: 64,
            max_connections: 8,
        },
    )
    .expect("bind");
    let g = generators::kings_graph(6, 6);
    let mut greedy = Client::connect(server.local_addr(), "greedy").expect("connect");
    let mut modest = Client::connect(server.local_addr(), "modest").expect("connect");
    let first = greedy
        .submit_ok(&g, &BatchJob::uniform(fast_config(), 16, 1))
        .expect("first greedy submit admitted");
    match greedy.submit_ok(&g, &BatchJob::uniform(fast_config(), 2, 2)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::QuotaInFlight),
        other => panic!("expected quota rejection, got {other:?}"),
    }
    let other_id = modest
        .submit_ok(&g, &BatchJob::uniform(fast_config(), 2, 3))
        .expect("other tenant proceeds");
    // Quota frees after completion.
    greedy.wait_report(first).expect("first report");
    greedy
        .submit_ok(&g, &BatchJob::uniform(fast_config(), 2, 4))
        .expect("slot freed after completion");
    modest.wait_report(other_id).expect("modest report");
    server.shutdown();
}

#[test]
fn cancelled_job_never_streams_a_report_and_frees_quota() {
    let server = WireServer::bind(
        "127.0.0.1:0",
        WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 4,
                ..ServerConfig::default()
            },
            max_inflight_jobs: 2,
            max_queued_lanes: 64,
            max_connections: 8,
        },
    )
    .expect("bind");
    let g = generators::kings_graph(6, 6);
    let mut client = Client::connect(server.local_addr(), "c").expect("connect");
    // A occupies the worker; B queues and is cancelled; a third submit
    // would exceed max_inflight_jobs = 2 until B's slot frees.
    let a = client
        .submit_ok(&g, &BatchJob::uniform(fast_config(), 16, 1))
        .expect("submit A");
    let b = client
        .submit_ok(&g, &BatchJob::uniform(fast_config(), 4, 2))
        .expect("submit B");
    match client.submit_ok(&g, &BatchJob::uniform(fast_config(), 2, 3)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::QuotaInFlight),
        other => panic!("expected quota rejection, got {other:?}"),
    }
    client.cancel(b).expect("cancel B");
    client.wait_report(a).expect("A completes");
    // B settles cancelled; its quota slot frees; it never reports.
    let mut settled = false;
    for _ in 0..200 {
        if client.status(b).expect("status") == msropm_server::JobState::Cancelled {
            settled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(settled, "cancelled job never settled");
    assert!(client
        .wait_report_timeout(b, Duration::from_millis(500))
        .expect("drain")
        .is_none());
    let c = client
        .submit_ok(&g, &BatchJob::uniform(fast_config(), 2, 4))
        .expect("slot freed after cancellation");
    client.wait_report(c).expect("C completes");
    let stats = client.stats().expect("stats");
    assert!(stats.jobs_cancelled >= 1);
    server.shutdown();
}

/// Every [`SubmitOptions`] combination the removed submit quartet used
/// to spell — plain, deadline, nowait, nowait + deadline — stays
/// behaviorally intact through the one `submit_with` entry point, and
/// [`ConnectOptions`] covers both former connect paths.
#[test]
fn submit_and_connect_options_cover_the_legacy_surface() {
    use msropm_client::ConnectOptions;
    let server = server_with(1);
    let mut client = Client::connect_with(
        server.local_addr(),
        "compat",
        &ConnectOptions::new()
            .connect_timeout(Duration::from_secs(5))
            .retry(RetryPolicy::default()),
    )
    .expect("connect with options");
    let g = generators::kings_graph(4, 4);

    let a = client
        .submit_with(
            &g,
            &BatchJob::uniform(fast_config(), 2, 1),
            &SubmitOptions::new(),
        )
        .expect("submit")
        .expect("blocking submit yields a job id");
    client.wait_report(a).expect("report A");

    let b = client
        .submit_with(
            &g,
            &BatchJob::uniform(fast_config(), 2, 2),
            &SubmitOptions::new().deadline_ms(60_000),
        )
        .expect("submit with deadline")
        .expect("blocking submit yields a job id");
    client.wait_report(b).expect("report B");

    client
        .submit_with(
            &g,
            &BatchJob::uniform(fast_config(), 2, 3),
            &SubmitOptions::new().nowait(),
        )
        .expect("nowait submit");
    client
        .submit_with(
            &g,
            &BatchJob::uniform(fast_config(), 2, 4),
            &SubmitOptions::new().nowait().deadline_ms(60_000),
        )
        .expect("nowait submit with deadline");
    assert_eq!(client.pending_submits(), 2);
    let c = client.recv_submitted().expect("reply C");
    let d = client.recv_submitted().expect("reply D");
    client.wait_report(c).expect("report C");
    client.wait_report(d).expect("report D");
    server.shutdown();
}
