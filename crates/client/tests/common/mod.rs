//! Shared test shorthand over the unified [`Client::submit_with`]
//! entry point, so scenario tests stay terse.

// Each test binary compiles its own copy; not all of them use every
// helper.
#![allow(dead_code)]

use msropm_client::{Client, ClientError, SubmitOptions};
use msropm_core::BatchJob;
use msropm_graph::Graph;

pub trait SubmitShorthand {
    /// Blocking submit with default options; unwraps the job id.
    fn submit_ok(&mut self, graph: &Graph, job: &BatchJob) -> Result<u64, ClientError>;
    /// Blocking submit with a server-side deadline; unwraps the job id.
    fn submit_deadline_ok(
        &mut self,
        graph: &Graph,
        job: &BatchJob,
        deadline_ms: u64,
    ) -> Result<u64, ClientError>;
    /// Multiplexed submit; replies arrive via `recv_submitted`.
    fn submit_nowait_ok(&mut self, graph: &Graph, job: &BatchJob) -> Result<(), ClientError>;
}

impl SubmitShorthand for Client {
    fn submit_ok(&mut self, graph: &Graph, job: &BatchJob) -> Result<u64, ClientError> {
        self.submit_with(graph, job, &SubmitOptions::new())
            .map(|id| id.expect("blocking submit yields a job id"))
    }

    fn submit_deadline_ok(
        &mut self,
        graph: &Graph,
        job: &BatchJob,
        deadline_ms: u64,
    ) -> Result<u64, ClientError> {
        self.submit_with(graph, job, &SubmitOptions::new().deadline_ms(deadline_ms))
            .map(|id| id.expect("blocking submit yields a job id"))
    }

    fn submit_nowait_ok(&mut self, graph: &Graph, job: &BatchJob) -> Result<(), ClientError> {
        self.submit_with(graph, job, &SubmitOptions::new().nowait())
            .map(|_| ())
    }
}
