//! Minimal blocking client for the server's HTTP/1.1 + JSON gateway
//! (`msropm_server::http`) — enough surface for tests, benches and
//! smoke scripts to drive the gateway without an HTTP dependency:
//! one keep-alive connection, one request/response pair at a time.
//!
//! The module also knows how to map the gateway's JSON report
//! rendering back onto the typed [`ProblemReport`], which is what lets
//! the cross-transport identity tests compare an HTTP-delivered report
//! bit-for-bit against the binary wire's.

use msropm_problems::json::{self, Json};
use msropm_problems::{DecodedLane, DecodedSolution, ProblemClass, ProblemReport};
use msropm_server::proto::WireProblemReport;
use std::fmt;
use std::io::{self, BufRead as _, BufReader, Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

/// HTTP-client failures.
#[derive(Debug)]
pub enum HttpClientError {
    /// Transport failure (connect, read, write, premature close).
    Io(io::Error),
    /// The server sent a response this minimal client cannot parse, or
    /// a JSON body that does not match the gateway's schema.
    Malformed(String),
}

impl fmt::Display for HttpClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpClientError::Io(e) => write!(f, "i/o error: {e}"),
            HttpClientError::Malformed(what) => write!(f, "malformed response: {what}"),
        }
    }
}

impl std::error::Error for HttpClientError {}

impl From<io::Error> for HttpClientError {
    fn from(e: io::Error) -> Self {
        HttpClientError::Io(e)
    }
}

fn malformed(what: impl Into<String>) -> HttpClientError {
    HttpClientError::Malformed(what.into())
}

/// One keep-alive connection to the HTTP gateway.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to the gateway at `addr`.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<HttpClient, HttpClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient { stream, reader })
    }

    /// One HTTP/1.1 round-trip: sends `method path` (with an optional
    /// JSON `body`) and blocks for the response, returning its status
    /// code and body text. The connection stays usable afterwards
    /// (keep-alive), including after 4xx/5xx responses.
    ///
    /// # Errors
    ///
    /// Transport failures, or a response shape this client cannot
    /// parse (no `content-length`, chunked encoding, …).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), HttpClientError> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: msropm\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "content-type: application/json\r\ncontent-length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.stream.write_all(body.as_bytes())?;
        }
        self.stream.flush()?;
        self.read_response()
    }

    /// As [`HttpClient::request`], with the body parsed as JSON.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`], plus a body that is not valid JSON.
    pub fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Json), HttpClientError> {
        let (status, text) = self.request(method, path, body)?;
        let parsed = json::parse(&text)
            .map_err(|e| malformed(format!("response body is not JSON: {e:?}")))?;
        Ok((status, parsed))
    }

    fn read_response(&mut self) -> Result<(u16, String), HttpClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(HttpClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            )));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed(format!("bad status line {line:?}")))?;
        let mut content_length: Option<usize> = None;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(HttpClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                )));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| malformed(format!("bad content-length {value:?}")))?,
                    );
                }
            }
        }
        let len = content_length.ok_or_else(|| malformed("response without content-length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body)
            .map_err(|_| malformed("response body is not UTF-8"))
            .map(|b| (status, b))
    }
}

impl fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HttpClient").finish_non_exhaustive()
    }
}

fn obj_field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, HttpClientError> {
    let Json::Obj(fields) = value else {
        return Err(malformed(format!("expected an object holding {key:?}")));
    };
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| malformed(format!("missing field {key:?}")))
}

fn field_u64(value: &Json, key: &str) -> Result<u64, HttpClientError> {
    obj_field(value, key)?
        .as_u64()
        .ok_or_else(|| malformed(format!("field {key:?} is not a u64")))
}

fn field_f64(value: &Json, key: &str) -> Result<f64, HttpClientError> {
    match obj_field(value, key)? {
        Json::Num(n) => Ok(*n),
        _ => Err(malformed(format!("field {key:?} is not a number"))),
    }
}

fn num_items<T>(
    value: &Json,
    key: &str,
    map: impl Fn(f64) -> Option<T>,
) -> Result<Vec<T>, HttpClientError> {
    let Json::Arr(items) = obj_field(value, key)? else {
        return Err(malformed(format!("field {key:?} is not an array")));
    };
    items
        .iter()
        .map(|item| match item {
            Json::Num(n) => map(*n).ok_or_else(|| malformed(format!("{key:?} value out of range"))),
            _ => Err(malformed(format!("{key:?} holds a non-number"))),
        })
        .collect()
}

fn bool_items(value: &Json, key: &str) -> Result<Vec<bool>, HttpClientError> {
    let Json::Arr(items) = obj_field(value, key)? else {
        return Err(malformed(format!("field {key:?} is not an array")));
    };
    items
        .iter()
        .map(|item| {
            item.as_bool()
                .ok_or_else(|| malformed(format!("{key:?} holds a non-boolean")))
        })
        .collect()
}

fn solution_from_json(value: &Json) -> Result<DecodedSolution, HttpClientError> {
    let kind = obj_field(value, "kind")?
        .as_str()
        .ok_or_else(|| malformed("solution kind is not a string"))?;
    Ok(match kind {
        "coloring" => DecodedSolution::Coloring(num_items(value, "values", |n| {
            (n >= 0.0 && n <= f64::from(u16::MAX) && n.fract() == 0.0).then_some(n as u16)
        })?),
        "cut_sides" => DecodedSolution::CutSides(bool_items(value, "values")?),
        "subset" => DecodedSolution::Subset(num_items(value, "values", |n| {
            (n >= 0.0 && n <= f64::from(u32::MAX) && n.fract() == 0.0).then_some(n as u32)
        })?),
        "partition" => DecodedSolution::Partition(bool_items(value, "values")?),
        "assignment" => DecodedSolution::Assignment(bool_items(value, "values")?),
        "spins" => DecodedSolution::Spins(bool_items(value, "values")?),
        other => return Err(malformed(format!("unknown solution kind {other:?}"))),
    })
}

fn lane_from_json(value: &Json) -> Result<DecodedLane, HttpClientError> {
    Ok(DecodedLane {
        lane: u32::try_from(field_u64(value, "lane")?)
            .map_err(|_| malformed("lane index out of range"))?,
        seed: field_u64(value, "seed")?,
        objective: field_f64(value, "objective")?,
        feasible: obj_field(value, "feasible")?
            .as_bool()
            .ok_or_else(|| malformed("feasible is not a boolean"))?,
        solution: solution_from_json(obj_field(value, "solution")?)?,
    })
}

/// Maps the gateway's `problem_report` JSON rendering (the `report`
/// field of a done `GET /v1/jobs/{id}` body) back onto the typed
/// [`WireProblemReport`]. Full-width `u64` fields travel as decimal
/// strings and `f64` objectives as shortest-round-trip numbers, so the
/// mapping is lossless — a report served over HTTP reconstructs
/// bit-identically to the same job's binary-wire frame.
///
/// # Errors
///
/// [`HttpClientError::Malformed`] when the JSON does not match the
/// gateway's schema.
pub fn problem_report_from_json(value: &Json) -> Result<WireProblemReport, HttpClientError> {
    match obj_field(value, "type")?.as_str() {
        Some("problem_report") => {}
        other => return Err(malformed(format!("not a problem_report: type {other:?}"))),
    }
    let class_name = obj_field(value, "class")?
        .as_str()
        .ok_or_else(|| malformed("class is not a string"))?;
    let class = ProblemClass::from_name(class_name)
        .ok_or_else(|| malformed(format!("unknown problem class {class_name:?}")))?;
    let Json::Arr(ranked) = obj_field(value, "ranked")? else {
        return Err(malformed("ranked is not an array"));
    };
    Ok(WireProblemReport {
        job_id: field_u64(value, "job_id")?,
        queued_us: field_u64(value, "queued_us")?,
        service_us: field_u64(value, "service_us")?,
        report: ProblemReport {
            class,
            problem_fingerprint: field_u64(value, "problem_fingerprint")?,
            graph_hash: field_u64(value, "graph_hash")?,
            seed: field_u64(value, "seed")?,
            ranked: ranked
                .iter()
                .map(lane_from_json)
                .collect::<Result<_, _>>()?,
        },
    })
}
