//! # msropm-client — blocking TCP client for the MSROPM job protocol
//!
//! Speaks the framed protocol of [`msropm_server::proto`] against a
//! [`msropm_server::wire::WireServer`]: submit batch jobs, poll status,
//! request cooperative cancellation, fetch server stats, and receive
//! the **streamed** report frames of completed jobs.
//!
//! The client is synchronous and single-connection. Each verb method
//! sends one request and blocks for its reply; report frames (which the
//! server pushes whenever a job completes, possibly interleaved with
//! verb replies) are stashed internally and redeemed with
//! [`Client::wait_report`]. Submitting many jobs and collecting their
//! reports later therefore pipelines naturally over one socket:
//!
//! ```no_run
//! use msropm_client::{Client, SubmitOptions};
//! use msropm_core::{BatchJob, MsropmConfig};
//! use msropm_graph::generators;
//!
//! let mut client = Client::connect("127.0.0.1:7227", "acme")?;
//! let graph = generators::kings_graph(7, 7);
//! let job = BatchJob::uniform(MsropmConfig::paper_default(), 8, 42);
//! let job_id = client
//!     .submit_with(&graph, &job, &SubmitOptions::new())?
//!     .expect("blocking submit yields a job id");
//! let report = client.wait_report(job_id)?;
//! println!("best lane: {} conflicts", report.best().unwrap().conflicts);
//! # Ok::<(), msropm_client::ClientError>(())
//! ```
//!
//! Beyond raw graph jobs, [`Client::submit_problem`] ships a typed
//! [`ProblemSpec`] — coloring, max-cut, max-k-cut, MIS, vertex cover,
//! number partitioning, CNF-SAT, QUBO or Ising — which the server
//! compiles onto the machine and answers with a decoded, domain-ranked
//! [`WireProblemReport`]:
//!
//! ```no_run
//! use msropm_client::{Client, SubmitOptions};
//! use msropm_core::MsropmConfig;
//! use msropm_graph::generators;
//! use msropm_problems::ProblemSpec;
//!
//! let mut client = Client::connect("127.0.0.1:7227", "acme")?;
//! let spec = ProblemSpec::Mis {
//!     graph: generators::kings_graph(5, 5),
//! };
//! let job_id = client
//!     .submit_problem(&spec, &MsropmConfig::paper_default(), 4, 42, &SubmitOptions::new())?
//!     .expect("blocking submit yields a job id");
//! let report = client.wait_problem_report(job_id)?;
//! let best = report.best().expect("replicas > 0");
//! println!("independent set of size {}", best.objective);
//! # Ok::<(), msropm_client::ClientError>(())
//! ```
//!
//! Reports are **bit-exact**: `f64` fields travel as IEEE bit patterns,
//! and the report's `graph_hash` lets a client verify it is looking at
//! the topology it submitted (`msropm_graph::graph_hash`). Colorings
//! can be re-verified locally with [`msropm_server::proto::verify_lane`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;

use msropm_core::{BatchJob, MsropmConfig};
use msropm_graph::Graph;
use msropm_problems::ProblemSpec;
use msropm_server::proto::{
    self, ErrorCode, ProtoError, Request, Response, WireProblemReport, WireReport, WireStats,
};
use msropm_server::JobState;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The server sent bytes that do not decode.
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Server {
        /// The protocol error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered a verb with a frame of the wrong type.
    UnexpectedFrame(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            ClientError::UnexpectedFrame(what) => {
                write!(f, "unexpected frame while waiting for {what}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io_err) => ClientError::Io(io_err),
            other => ClientError::Proto(other),
        }
    }
}

/// `true` when retrying the same operation against the same (or a
/// restarted) server can plausibly succeed: transport-level connection
/// failures and the typed [`ErrorCode::Busy`] rejection. Quota errors,
/// deadline expiries, and protocol desyncs are **not** retryable as-is
/// — the same request would fail the same way.
pub fn is_retryable(err: &ClientError) -> bool {
    match err {
        ClientError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::TimedOut
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::NotConnected
                | io::ErrorKind::AddrNotAvailable
        ),
        ClientError::Server { code, .. } => *code == ErrorCode::Busy,
        _ => false,
    }
}

/// Reconnect policy for [`Client::connect_with_retry`]: exponential
/// backoff (`base_delay * 2^attempt`, capped at `max_delay`) with
/// uniform jitter in the upper half of each delay, so a fleet of
/// clients retrying against a restarting server does not stampede it
/// in lockstep.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 means a single try).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// 5 retries, 50 ms base, 2 s ceiling — under a second and a half
    /// of total backoff, enough to ride out a supervisor respawn or a
    /// momentary connection-cap spike.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry `attempt` (0-based).
    fn delay_for(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        let capped = exp.min(self.max_delay).max(Duration::from_millis(1));
        // Uniform in [capped/2, capped]: full-jitter halves thundering
        // herds while keeping the exponential envelope intact.
        let nanos = capped.as_nanos() as u64;
        let jittered = nanos / 2 + splitmix64(rng) % (nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }
}

/// SplitMix64 step — a tiny, dependency-free PRNG for retry jitter
/// (crypto-strength randomness is pointless here).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a connect should behave, for [`Client::connect_with`]: an
/// optional per-address connect timeout, Nagle control, a liveness
/// probe, and a [`RetryPolicy`] for retryable failures. One builder
/// unifies the former `connect` / `connect_with_retry` split the same
/// way [`SubmitOptions`] unified the submit quartet (the old names
/// remain as thin wrappers).
///
/// ```no_run
/// use msropm_client::{Client, ConnectOptions, RetryPolicy};
/// use std::time::Duration;
///
/// let options = ConnectOptions::new()
///     .connect_timeout(Duration::from_secs(2))
///     .retry(RetryPolicy::default());
/// let client = Client::connect_with("127.0.0.1:7227", "acme", &options)?;
/// # Ok::<(), msropm_client::ClientError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    connect_timeout: Option<Duration>,
    nodelay: bool,
    probe: bool,
    retry: Option<RetryPolicy>,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            connect_timeout: None,
            nodelay: true,
            probe: false,
            retry: None,
        }
    }
}

impl ConnectOptions {
    /// Default options: OS-default connect timeout, `TCP_NODELAY` on,
    /// no probe, no retry — exactly what [`Client::connect`] does.
    pub fn new() -> ConnectOptions {
        ConnectOptions::default()
    }

    /// Bound each address's TCP connect attempt to `dur` instead of
    /// the OS default (which can run to minutes against a silently
    /// dropping host). When the address resolves to several socket
    /// addresses, each gets its own budget.
    pub fn connect_timeout(mut self, dur: Duration) -> ConnectOptions {
        self.connect_timeout = Some(dur);
        self
    }

    /// Whether to set `TCP_NODELAY` (default `true`: the protocol is
    /// request/reply, so Nagle only adds latency).
    pub fn nodelay(mut self, on: bool) -> ConnectOptions {
        self.nodelay = on;
        self
    }

    /// Probe each connection with a `stats` round-trip before handing
    /// it out, so a server that accepts the socket and then closes it
    /// (connection cap, or still booting) fails the connect — where a
    /// retry policy can act on it — rather than the first real verb.
    pub fn probe(mut self, on: bool) -> ConnectOptions {
        self.probe = on;
        self
    }

    /// Retry retryable failures ([`is_retryable`] — connection
    /// failures and the typed `Busy` rejection) up to
    /// `policy.max_retries` times under jittered exponential backoff.
    /// Also turns the [`ConnectOptions::probe`] on: an unprobed
    /// connect cannot distinguish an accept-then-close server from a
    /// healthy one, which is most of what the retry is for.
    pub fn retry(mut self, policy: RetryPolicy) -> ConnectOptions {
        self.retry = Some(policy);
        self.probe = true;
        self
    }
}

/// How a submit should behave, for [`Client::submit_with`] and
/// [`Client::submit_problem`]: an optional server-side deadline,
/// multiplexed (`nowait`) submission, and a retry policy for the
/// server's load-shedding `Busy` rejection. One builder replaces the
/// former `submit` / `submit_deadline` / `submit_nowait` /
/// `submit_nowait_deadline` quartet.
///
/// ```no_run
/// use msropm_client::{Client, RetryPolicy, SubmitOptions};
/// # use msropm_core::{BatchJob, MsropmConfig};
/// # use msropm_graph::generators;
/// # let mut client = Client::connect("127.0.0.1:7227", "acme")?;
/// # let graph = generators::kings_graph(5, 5);
/// # let job = BatchJob::uniform(MsropmConfig::paper_default(), 4, 7);
/// let options = SubmitOptions::new()
///     .deadline_ms(5_000)
///     .retry(RetryPolicy::default());
/// let job_id = client.submit_with(&graph, &job, &options)?.expect("blocking");
/// # Ok::<(), msropm_client::ClientError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    deadline_ms: u64,
    nowait: bool,
    retry: Option<RetryPolicy>,
}

impl SubmitOptions {
    /// Default options: blocking submit, no deadline, no retry.
    pub fn new() -> SubmitOptions {
        SubmitOptions::default()
    }

    /// Server-side deadline: the job must produce its report within
    /// `ms` milliseconds of admission (queue wait included) or the
    /// server abandons it at the next stage boundary and streams a
    /// typed `DeadlineExceeded` failure. `0` means no deadline.
    pub fn deadline_ms(mut self, ms: u64) -> SubmitOptions {
        self.deadline_ms = ms;
        self
    }

    /// Multiplexed submit: write the frame and return without waiting
    /// for the reply, so many submits ride one socket back to back.
    /// Collect replies in submission order with
    /// [`Client::recv_submitted`].
    pub fn nowait(mut self) -> SubmitOptions {
        self.nowait = true;
        self
    }

    /// Retry the submit under `policy`'s jittered exponential backoff
    /// when the server answers with the retryable
    /// [`ErrorCode::Busy`] rejection (queue full). Transport errors are
    /// **not** retried — this client is single-connection, so a dead
    /// socket cannot be resubmitted on; reconnect via
    /// [`Client::connect_with_retry`] instead. Ignored for `nowait`
    /// submits (their replies are not observed here).
    pub fn retry(mut self, policy: RetryPolicy) -> SubmitOptions {
        self.retry = Some(policy);
        self
    }
}

/// One tenant's blocking connection to a wire server; see the crate
/// docs.
pub struct Client {
    tenant: String,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    stash: VecDeque<WireReport>,
    /// Decoded problem reports (for jobs submitted via
    /// [`Client::submit_problem`]) received while waiting on other
    /// replies; redeemed by [`Client::wait_problem_report`].
    problem_stash: VecDeque<WireProblemReport>,
    /// Typed per-job failure frames (`JobFailed`) received while
    /// waiting on other replies, keyed by job id; redeemed as
    /// [`ClientError::Server`] by the report-waiting verbs.
    failed: HashMap<u64, (ErrorCode, String)>,
    /// Submits written by [`Client::submit_nowait`] whose replies have
    /// not yet been read off the socket.
    pending_submits: usize,
    /// Replies to [`Client::submit_nowait`] frames that another verb
    /// had to read past (the server answers requests strictly in order
    /// per connection, so a blocking verb first drains every
    /// outstanding submit reply here); redeemed FIFO by
    /// [`Client::recv_submitted`].
    collected_submits: VecDeque<Result<u64, (ErrorCode, String)>>,
}

impl Client {
    /// Connects to `addr` and identifies as `tenant` on every request
    /// (the server's quota-accounting identity). Equivalent to
    /// [`Client::connect_with`] under default [`ConnectOptions`].
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn connect<A: ToSocketAddrs>(addr: A, tenant: &str) -> Result<Client, ClientError> {
        Client::connect_once(addr, tenant, &ConnectOptions::new())
    }

    /// The one connect entry point: connects to `addr` as `tenant`
    /// under [`ConnectOptions`] — connect timeout, Nagle control, a
    /// `stats` liveness probe, and retry with jittered exponential
    /// backoff on retryable failures.
    ///
    /// # Errors
    ///
    /// The final attempt's error once any retries are exhausted, or
    /// the first non-retryable error immediately.
    pub fn connect_with<A: ToSocketAddrs + Clone>(
        addr: A,
        tenant: &str,
        options: &ConnectOptions,
    ) -> Result<Client, ClientError> {
        let max_retries = options.retry.map_or(0, |policy| policy.max_retries);
        let mut rng = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED)
            | 1;
        let mut attempt = 0u32;
        loop {
            match Client::connect_once(addr.clone(), tenant, options) {
                Ok(client) => return Ok(client),
                Err(e) if attempt < max_retries && is_retryable(&e) => {
                    let policy = options.retry.expect("max_retries > 0 implies a policy");
                    std::thread::sleep(policy.delay_for(attempt, &mut rng));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`Client::connect_with`] under a retry policy with the probe on
    /// — the pre-[`ConnectOptions`] name, kept as a thin wrapper.
    ///
    /// # Errors
    ///
    /// As [`Client::connect_with`].
    pub fn connect_with_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        tenant: &str,
        policy: RetryPolicy,
    ) -> Result<Client, ClientError> {
        Client::connect_with(addr, tenant, &ConnectOptions::new().retry(policy))
    }

    /// One connection attempt under `options` (everything but the
    /// retry loop).
    fn connect_once<A: ToSocketAddrs>(
        addr: A,
        tenant: &str,
        options: &ConnectOptions,
    ) -> Result<Client, ClientError> {
        let stream = match options.connect_timeout {
            None => TcpStream::connect(addr)?,
            Some(dur) => {
                // `connect_timeout` takes a single resolved address;
                // mirror `TcpStream::connect`'s behavior of trying each
                // in turn and reporting the last failure.
                let mut last = None;
                let mut stream = None;
                for sock_addr in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sock_addr, dur) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                match stream {
                    Some(s) => s,
                    None => {
                        return Err(ClientError::Io(last.unwrap_or_else(|| {
                            io::Error::new(
                                io::ErrorKind::InvalidInput,
                                "address resolved to no socket addresses",
                            )
                        })))
                    }
                }
            }
        };
        if options.nodelay {
            let _ = stream.set_nodelay(true);
        }
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            tenant: tenant.to_string(),
            stream,
            reader,
            stash: VecDeque::new(),
            problem_stash: VecDeque::new(),
            failed: HashMap::new(),
            pending_submits: 0,
            collected_submits: VecDeque::new(),
        };
        if options.probe {
            client.stats()?;
        }
        Ok(client)
    }

    /// The tenant id this connection submits under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Reports received but not yet redeemed by [`Client::wait_report`].
    pub fn stashed_reports(&self) -> usize {
        self.stash.len()
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let payload = proto::encode_request(req);
        proto::write_frame(&mut self.stream, &payload)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = proto::read_frame(&mut self.reader)?;
        Ok(proto::decode_response(&payload)?)
    }

    /// Reads frames until a verb reply arrives, stashing the job
    /// terminal frames (reports and typed per-job failures) that the
    /// server streams asynchronously in between.
    fn recv_reply(&mut self) -> Result<Response, ClientError> {
        loop {
            match self.recv()? {
                Response::Report(r) => self.stash.push_back(r),
                Response::ProblemReport(r) => self.problem_stash.push_back(r),
                Response::JobFailed {
                    job_id,
                    code,
                    message,
                } => {
                    self.failed.insert(job_id, (code, message));
                }
                other => return Ok(other),
            }
        }
    }

    /// Redeems a stashed `JobFailed` frame for `job_id` as the typed
    /// client error.
    fn take_failed(&mut self, job_id: u64) -> Option<ClientError> {
        self.failed
            .remove(&job_id)
            .map(|(code, message)| ClientError::Server { code, message })
    }

    /// Reads the replies of every outstanding [`Client::submit_nowait`]
    /// into the collected queue. Called by each blocking verb before it
    /// reads its own reply: the server answers requests in order per
    /// connection, so the pending submit replies are on the wire
    /// *ahead* of the verb's — reading past them blindly would hand a
    /// pending submit's `Submitted` (or error) frame to the wrong call.
    fn drain_pending_submits(&mut self) -> Result<(), ClientError> {
        while self.pending_submits > 0 {
            let reply = self.recv_reply()?;
            self.pending_submits -= 1;
            match reply {
                Response::Submitted { job_id } => self.collected_submits.push_back(Ok(job_id)),
                Response::Error { code, message } => {
                    self.collected_submits.push_back(Err((code, message)))
                }
                _ => return Err(ClientError::UnexpectedFrame("submitted")),
            }
        }
        Ok(())
    }

    /// The one submit entry point: submits `job` against `graph` under
    /// [`SubmitOptions`]. Blocking submits return `Ok(Some(job_id))`
    /// (redeem the report with [`Client::wait_report`]); `nowait`
    /// submits return `Ok(None)` immediately and their replies are
    /// collected — in submission order — with
    /// [`Client::recv_submitted`]. Blocking verbs may be freely
    /// interleaved with outstanding `nowait` submits: they read past
    /// the pending replies into an internal queue, never
    /// mis-correlating them with their own.
    ///
    /// # Errors
    ///
    /// Blocking: [`ClientError::Server`] carries quota/shutdown
    /// rejections (`QuotaInFlight`, `QuotaLanes`, `ShuttingDown`, …);
    /// a `Busy` rejection is retried first when the options carry a
    /// [`RetryPolicy`]. `nowait`: transport failures only — typed
    /// rejections surface from [`Client::recv_submitted`].
    pub fn submit_with(
        &mut self,
        graph: &Graph,
        job: &BatchJob,
        options: &SubmitOptions,
    ) -> Result<Option<u64>, ClientError> {
        let req = Request::Submit {
            tenant: self.tenant.clone(),
            graph: graph.clone(),
            job: job.clone(),
            deadline_ms: options.deadline_ms,
        };
        self.submit_request(req, options)
    }

    /// Submits a typed [`ProblemSpec`] under the same
    /// [`SubmitOptions`] as [`Client::submit_with`]. The server
    /// compiles the spec onto the machine (`replicas` independent
    /// restart lanes, seeds derived from `seed`), solves it, and
    /// streams back a decoded, domain-ranked
    /// [`WireProblemReport`] — redeem it with
    /// [`Client::wait_problem_report`]. `config` is the base operating
    /// point; the compiler overrides `num_colors` per problem class.
    ///
    /// # Errors
    ///
    /// As [`Client::submit_with`], plus
    /// [`ErrorCode::UnsupportedProblem`] (as [`ClientError::Server`])
    /// for a spec the server's compiler rejects — request-scoped: the
    /// connection stays usable.
    pub fn submit_problem(
        &mut self,
        spec: &ProblemSpec,
        config: &MsropmConfig,
        replicas: u32,
        seed: u64,
        options: &SubmitOptions,
    ) -> Result<Option<u64>, ClientError> {
        let req = Request::SubmitProblem {
            tenant: self.tenant.clone(),
            spec: spec.clone(),
            config: *config,
            replicas,
            seed,
            deadline_ms: options.deadline_ms,
        };
        self.submit_request(req, options)
    }

    /// Shared tail of [`Client::submit_with`] /
    /// [`Client::submit_problem`]: write the frame, then (blocking
    /// path) collect the reply, retrying `Busy` rejections under the
    /// options' policy.
    fn submit_request(
        &mut self,
        req: Request,
        options: &SubmitOptions,
    ) -> Result<Option<u64>, ClientError> {
        if options.nowait {
            self.send(&req)?;
            self.pending_submits += 1;
            return Ok(None);
        }
        let mut rng = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED)
            | 1;
        let mut attempt = 0u32;
        loop {
            self.send(&req)?;
            self.drain_pending_submits()?;
            let outcome = match self.recv_reply()? {
                Response::Submitted { job_id } => return Ok(Some(job_id)),
                Response::Error { code, message } => ClientError::Server { code, message },
                _ => return Err(ClientError::UnexpectedFrame("submitted")),
            };
            match options.retry {
                Some(policy)
                    if attempt < policy.max_retries
                        && matches!(
                            outcome,
                            ClientError::Server {
                                code: ErrorCode::Busy,
                                ..
                            }
                        ) =>
                {
                    std::thread::sleep(policy.delay_for(attempt, &mut rng));
                    attempt += 1;
                }
                _ => return Err(outcome),
            }
        }
    }

    /// Submits written and not yet redeemed via
    /// [`Client::recv_submitted`] (whether or not their reply frame has
    /// been read off the socket yet).
    pub fn pending_submits(&self) -> usize {
        self.pending_submits + self.collected_submits.len()
    }

    /// Collects the oldest outstanding [`Client::submit_nowait`] reply:
    /// the server-assigned job id, or the typed rejection for that
    /// submit. Reports arriving meanwhile are stashed, never lost.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for quota/drain rejections of this
    /// submit; [`ClientError::UnexpectedFrame`] when no submit is
    /// outstanding.
    pub fn recv_submitted(&mut self) -> Result<u64, ClientError> {
        // A reply another verb already read past comes first (FIFO).
        if let Some(collected) = self.collected_submits.pop_front() {
            return collected.map_err(|(code, message)| ClientError::Server { code, message });
        }
        if self.pending_submits == 0 {
            return Err(ClientError::UnexpectedFrame("no submit outstanding"));
        }
        let reply = self.recv_reply()?;
        self.pending_submits -= 1;
        match reply {
            Response::Submitted { job_id } => Ok(job_id),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedFrame("submitted")),
        }
    }

    /// Nonblocking report check: the stash first, then whatever is
    /// already on the socket (waiting at most a millisecond). `None`
    /// means "not yet" — keep polling or fall back to
    /// [`Client::wait_report`].
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a typed server error frame.
    pub fn poll_report(&mut self, job_id: u64) -> Result<Option<WireReport>, ClientError> {
        self.wait_report_timeout(job_id, Duration::from_millis(1))
    }

    /// Queries one job's lifecycle state.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with `UnknownJob`/`Forbidden` for bad ids.
    pub fn status(&mut self, job_id: u64) -> Result<JobState, ClientError> {
        self.send(&Request::Status {
            tenant: self.tenant.clone(),
            job_id,
        })?;
        self.drain_pending_submits()?;
        match self.recv_reply()? {
            Response::StatusReply { state, .. } => Ok(state),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedFrame("status reply")),
        }
    }

    /// Requests cooperative cancellation; returns the job's state at
    /// reply time (the cancel lands at the worker's next check, so this
    /// may still read `Queued`/`Running`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with `UnknownJob`/`Forbidden` for bad ids.
    pub fn cancel(&mut self, job_id: u64) -> Result<JobState, ClientError> {
        self.send(&Request::Cancel {
            tenant: self.tenant.clone(),
            job_id,
        })?;
        self.drain_pending_submits()?;
        match self.recv_reply()? {
            Response::CancelReply { state, .. } => Ok(state),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedFrame("cancel reply")),
        }
    }

    /// Fetches server-wide counters.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        self.send(&Request::Stats)?;
        self.drain_pending_submits()?;
        match self.recv_reply()? {
            Response::StatsReply(stats) => Ok(stats),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedFrame("stats reply")),
        }
    }

    /// Blocks until `job_id`'s report arrives (checking the stash
    /// first). Reports for *other* jobs that arrive meanwhile stay
    /// stashed for their own `wait_report` calls.
    ///
    /// A job that failed server-side — a panicking solve, a dead
    /// worker, or an expired deadline — terminates this wait with the
    /// typed [`ClientError::Server`] carrying [`ErrorCode::Internal`]
    /// or [`ErrorCode::DeadlineExceeded`]. Never returns for a
    /// *cancelled* job — the server streams nothing for those; poll
    /// [`Client::status`] or use [`Client::wait_report_timeout`] when
    /// cancellation is in play.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a typed server error frame.
    pub fn wait_report(&mut self, job_id: u64) -> Result<WireReport, ClientError> {
        // Outstanding submit replies sit ahead of any report on the
        // wire; read them into the collected queue first.
        self.drain_pending_submits()?;
        loop {
            if let Some(pos) = self.stash.iter().position(|r| r.job_id == job_id) {
                return Ok(self.stash.remove(pos).expect("position is valid"));
            }
            if let Some(err) = self.take_failed(job_id) {
                return Err(err);
            }
            match self.recv()? {
                Response::Report(r) => self.stash.push_back(r),
                Response::ProblemReport(r) => self.problem_stash.push_back(r),
                Response::JobFailed {
                    job_id: failed_id,
                    code,
                    message,
                } => {
                    // A failure frame for a *different* job stays
                    // stashed for that job's own wait.
                    self.failed.insert(failed_id, (code, message));
                }
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                _ => return Err(ClientError::UnexpectedFrame("report")),
            }
        }
    }

    /// Blocks until the decoded problem report of `job_id` — a job
    /// submitted via [`Client::submit_problem`] — arrives (checking the
    /// stash first). Raw reports and problem reports for *other* jobs
    /// that arrive meanwhile stay stashed for their own waits; failure
    /// semantics match [`Client::wait_report`].
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a typed server error frame.
    pub fn wait_problem_report(&mut self, job_id: u64) -> Result<WireProblemReport, ClientError> {
        self.drain_pending_submits()?;
        loop {
            if let Some(pos) = self.problem_stash.iter().position(|r| r.job_id == job_id) {
                return Ok(self.problem_stash.remove(pos).expect("position is valid"));
            }
            if let Some(err) = self.take_failed(job_id) {
                return Err(err);
            }
            match self.recv()? {
                Response::Report(r) => self.stash.push_back(r),
                Response::ProblemReport(r) => self.problem_stash.push_back(r),
                Response::JobFailed {
                    job_id: failed_id,
                    code,
                    message,
                } => {
                    self.failed.insert(failed_id, (code, message));
                }
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                _ => return Err(ClientError::UnexpectedFrame("problem report")),
            }
        }
    }

    /// Like [`Client::wait_report`] with a deadline: `Ok(None)` when
    /// `dur` elapses without the report — the call the smoke/CI path
    /// uses to assert a **cancelled job never produces a report**.
    ///
    /// The deadline only fires on a frame boundary. If it lands while a
    /// frame is mid-flight (some of its bytes already read), the client
    /// blocks until that frame completes rather than abandoning it —
    /// returning early there would desync the stream for every later
    /// request on this connection.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a typed server error frame.
    pub fn wait_report_timeout(
        &mut self,
        job_id: u64,
        dur: Duration,
    ) -> Result<Option<WireReport>, ClientError> {
        // Submit replies arrive promptly (admission is synchronous
        // server-side); collecting them first keeps the frame stream
        // unambiguous for the deadline loop below.
        self.drain_pending_submits()?;
        let deadline = Instant::now() + dur;
        loop {
            if let Some(pos) = self.stash.iter().position(|r| r.job_id == job_id) {
                return Ok(self.stash.remove(pos));
            }
            if let Some(err) = self.take_failed(job_id) {
                return Err(err);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            let Some(payload) = self.read_frame_deadline(left)? else {
                return Ok(None);
            };
            match proto::decode_response(&payload)? {
                Response::Report(r) => self.stash.push_back(r),
                Response::ProblemReport(r) => self.problem_stash.push_back(r),
                Response::JobFailed {
                    job_id: failed_id,
                    code,
                    message,
                } => {
                    self.failed.insert(failed_id, (code, message));
                }
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                _ => return Err(ClientError::UnexpectedFrame("report")),
            }
        }
    }

    /// Reads one frame, giving up (→ `Ok(None)`) only if nothing at all
    /// has arrived within `left`. Once the first header byte is in, the
    /// frame is committed: the read timeout is lifted and the remainder
    /// is read blocking, so a deadline can never leave the stream
    /// desynced mid-frame.
    fn read_frame_deadline(&mut self, left: Duration) -> Result<Option<Vec<u8>>, ClientError> {
        use std::io::Read as _;
        // The reader wraps a `try_clone` of `self.stream`; clones share
        // the underlying socket, so the timeout applies to both.
        self.stream.set_read_timeout(Some(left))?;
        let mut header = [0u8; 4];
        let mut got = 0usize;
        let header_result = loop {
            match self.reader.read(&mut header[got..]) {
                Ok(0) => {
                    break Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed",
                    )))
                }
                Ok(n) => {
                    got += n;
                    if got == header.len() {
                        break Ok(());
                    }
                    // Partial header: the frame is committed; finish it
                    // without a deadline.
                    self.stream.set_read_timeout(None)?;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if got == 0
                        && matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                {
                    self.stream.set_read_timeout(None)?;
                    return Ok(None);
                }
                Err(e) => break Err(ClientError::Io(e)),
            }
        };
        self.stream.set_read_timeout(None)?;
        header_result?;
        let len = u32::from_le_bytes(header);
        if len > proto::MAX_FRAME_LEN {
            return Err(ClientError::Proto(ProtoError::Oversized(len)));
        }
        let mut payload = vec![0u8; len as usize];
        self.reader.read_exact(&mut payload)?;
        Ok(Some(payload))
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("tenant", &self.tenant)
            .field("stashed_reports", &self.stash.len())
            .finish_non_exhaustive()
    }
}
