//! Remote-solve CLI over the MSROPM wire protocol.
//!
//! ```text
//! solve_remote --addr HOST:PORT [--tenant NAME] [--retries N] [--retry-base-ms MS]
//!              submit --graph SPEC [--replicas N] [--seed S] [--sweep]
//!              [--deadline-ms MS] [--no-wait]
//! solve_remote --addr HOST:PORT [--tenant NAME]
//!              problem --class NAME --input SPEC|FILE [--k K] [--replicas N]
//!              [--seed S] [--deadline-ms MS] [--no-wait]
//! solve_remote --addr HOST:PORT [--tenant NAME] status JOB_ID
//! solve_remote --addr HOST:PORT [--tenant NAME] cancel JOB_ID
//! solve_remote --addr HOST:PORT [--tenant NAME] stats
//! solve_remote smoke [--addr HOST:PORT]
//! ```
//!
//! Graph `SPEC`s: `kings:RxC`, `grid:RxC`, `cycle:N`, or a path to a
//! DIMACS `.col` file.
//!
//! `problem` submits a typed [`msropm_problems::ProblemSpec`] through
//! the `SubmitProblem` wire verb and prints the decoded, domain-ranked
//! report. Classes `coloring`, `max-cut`, `max-k-cut`, `mis` and
//! `vertex-cover` take a graph `SPEC` (generator or DIMACS `.col`
//! file); `number-partition` takes a whitespace-separated weights
//! file; `cnf-sat` a DIMACS CNF file; `qubo`/`ising` their JSON forms.
//!
//! `smoke` runs the CI scenario: submit a long job and a short one,
//! poll `status`, `cancel` the queued job, verify the long job's report
//! arrives (with a matching client-side graph hash and conflict
//! recount) and that **the cancelled job never produces a report**;
//! then submit one instance of every problem class through
//! `SubmitProblem`, and prove an unsupported spec and an unknown verb
//! each answer a typed error **without desyncing the connection**.
//! Without `--addr` it boots an in-process
//! [`msropm_server::wire::WireServer`] on an ephemeral loopback port
//! first — the protocol still travels through a real TCP socket.

use msropm_client::{Client, ClientError, RetryPolicy, SubmitOptions};
use msropm_core::{BatchJob, KernelBackend, MsropmConfig, SweepParam, SweepSpec};
use msropm_graph::{generators, graph_hash, io as graph_io, Graph};
use msropm_problems::{DecodedSolution, ProblemClass, ProblemSpec};
use msropm_server::proto::{self, verify_lane, ErrorCode, Request, Response, WireProblemReport};
use msropm_server::stats::Registry;
use msropm_server::wire::{WireConfig, WireServer};
use msropm_server::{JobState, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: solve_remote --addr HOST:PORT [--tenant NAME] [--retries N] [--retry-base-ms MS] \
         <submit|problem|status|cancel|stats> ...\n\
         \x20      solve_remote smoke [--addr HOST:PORT] [--idle N]\n\
         submit:  --graph SPEC [--replicas N] [--seed S] [--sweep] [--backend f64|fixed] \
         [--deadline-ms MS] [--no-wait]\n\
         problem: --class NAME --input SPEC|FILE [--k K] [--replicas N] [--seed S] \
         [--backend f64|fixed] [--deadline-ms MS] [--no-wait]\n\
         \x20        classes: coloring | max-cut | max-k-cut | mis | vertex-cover | \
         number-partition | cnf-sat | qubo | ising\n\
         smoke:   --idle N holds N extra idle connections open through the scenario\n\
         --retries N reconnects with exponential backoff on refused/reset connections\n\
         graph SPECs: kings:RxC | grid:RxC | cycle:N | path/to/file.col"
    );
    std::process::exit(2);
}

fn parse_graph_spec(spec: &str) -> Result<Graph, String> {
    fn dims(s: &str) -> Result<(usize, usize), String> {
        let (r, c) = s.split_once('x').ok_or_else(|| format!("bad dims {s:?}"))?;
        Ok((
            r.parse().map_err(|_| format!("bad rows {r:?}"))?,
            c.parse().map_err(|_| format!("bad cols {c:?}"))?,
        ))
    }
    if let Some(d) = spec.strip_prefix("kings:") {
        let (r, c) = dims(d)?;
        Ok(generators::kings_graph(r, c))
    } else if let Some(d) = spec.strip_prefix("grid:") {
        let (r, c) = dims(d)?;
        Ok(generators::grid_graph(r, c))
    } else if let Some(n) = spec.strip_prefix("cycle:") {
        let n = n.parse().map_err(|_| format!("bad cycle size {n:?}"))?;
        Ok(generators::cycle_graph(n))
    } else {
        let file = std::fs::File::open(spec)
            .map_err(|e| format!("cannot open graph file {spec:?}: {e}"))?;
        graph_io::read_dimacs(std::io::BufReader::new(file))
            .map_err(|e| format!("cannot parse {spec:?}: {e}"))
    }
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("solve_remote: {e}");
    std::process::exit(1);
}

/// Builds a typed spec from the CLI's `--class`/`--input`/`--k`
/// arguments. Graph classes accept generator specs or DIMACS `.col`
/// files; the other classes read their standard text format from the
/// input path.
fn build_problem_spec(class: ProblemClass, input: &str, k: u16) -> Result<ProblemSpec, String> {
    let spec = match class {
        ProblemClass::Coloring
        | ProblemClass::MaxCut
        | ProblemClass::MaxKCut
        | ProblemClass::Mis
        | ProblemClass::VertexCover => {
            let graph = parse_graph_spec(input)?;
            let k = if k == 0 { 4 } else { k };
            match class {
                ProblemClass::Coloring => ProblemSpec::Coloring { graph, colors: k },
                ProblemClass::MaxCut => ProblemSpec::MaxCut { graph },
                ProblemClass::MaxKCut => ProblemSpec::MaxKCut { graph, k },
                ProblemClass::Mis => ProblemSpec::Mis { graph },
                ProblemClass::VertexCover => ProblemSpec::VertexCover { graph },
                _ => unreachable!("matched a graph class"),
            }
        }
        _ => {
            let text = std::fs::read_to_string(input)
                .map_err(|e| format!("cannot read {input:?}: {e}"))?;
            ProblemSpec::from_text(class, &text, k).map_err(|e| e.to_string())?
        }
    };
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

/// One-line summary of a decoded solution for terminal output.
fn describe_solution(sol: &DecodedSolution) -> String {
    match sol {
        DecodedSolution::Coloring(c) => format!("coloring of {} vertices", c.len()),
        DecodedSolution::CutSides(s) => {
            format!(
                "cut with {} vertices on side 1",
                s.iter().filter(|&&b| b).count()
            )
        }
        DecodedSolution::Subset(s) => format!("subset of {} vertices", s.len()),
        DecodedSolution::Partition(p) => {
            format!(
                "partition with {} items on side 1",
                p.iter().filter(|&&b| b).count()
            )
        }
        DecodedSolution::Assignment(a) => {
            format!(
                "assignment with {} of {} vars true",
                a.iter().filter(|&&b| b).count(),
                a.len()
            )
        }
        DecodedSolution::Spins(s) => {
            format!(
                "{} of {} spins up",
                s.iter().filter(|&&b| b).count(),
                s.len()
            )
        }
    }
}

fn print_problem_report(report: &WireProblemReport) {
    let r = &report.report;
    println!(
        "job {}: class {}, fingerprint {:#018x}, {} lanes, queued {} us, service {} us",
        report.job_id,
        r.class,
        r.problem_fingerprint,
        r.ranked.len(),
        report.queued_us,
        report.service_us
    );
    for lane in r.ranked.iter().take(4) {
        println!(
            "  lane {:>3} (seed {:#018x}): objective {}, {}, {}",
            lane.lane,
            lane.seed,
            lane.objective,
            if lane.feasible {
                "feasible"
            } else {
                "infeasible"
            },
            describe_solution(&lane.solution)
        );
    }
    if r.ranked.len() > 4 {
        println!("  ... {} more lanes", r.ranked.len() - 4);
    }
}

fn print_report(graph: Option<&Graph>, report: &msropm_server::proto::WireReport) {
    println!(
        "job {}: graph hash {:#018x}, {} lanes, queued {} us, service {} us",
        report.job_id,
        report.graph_hash,
        report.ranked.len(),
        report.queued_us,
        report.service_us
    );
    if let Some(g) = graph {
        assert_eq!(
            report.graph_hash,
            graph_hash(g),
            "server answered a different topology"
        );
    }
    for lane in report.ranked.iter().take(4) {
        println!(
            "  lane {:>3} (seed {:#018x}): {} conflicts, accuracy {:.4}",
            lane.lane, lane.seed, lane.conflicts, lane.accuracy
        );
    }
    if report.ranked.len() > 4 {
        println!("  ... {} more lanes", report.ranked.len() - 4);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut tenant = "cli".to_string();
    let mut retries: Option<u32> = None;
    let mut retry_base_ms: Option<u64> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().unwrap_or_else(|| usage())),
            "--tenant" => tenant = it.next().unwrap_or_else(|| usage()),
            "--retries" => {
                retries = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--retry-base-ms" => {
                retry_base_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            _ => rest.push(a),
        }
    }
    let Some(verb) = rest.first().cloned() else {
        usage()
    };
    if verb == "smoke" {
        let mut idle = 0usize;
        let mut it = rest.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--idle" => {
                    idle = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage())
                }
                _ => usage(),
            }
        }
        smoke(addr.as_deref(), idle);
        return;
    }
    let Some(addr) = addr else { usage() };
    // Either retry flag opts into reconnect-with-backoff; the other
    // takes its default from RetryPolicy.
    let mut client = if retries.is_some() || retry_base_ms.is_some() {
        let defaults = RetryPolicy::default();
        let policy = RetryPolicy {
            max_retries: retries.unwrap_or(defaults.max_retries),
            base_delay: retry_base_ms
                .map(Duration::from_millis)
                .unwrap_or(defaults.base_delay),
            ..defaults
        };
        Client::connect_with_retry(addr.as_str(), &tenant, policy)
            .unwrap_or_else(|e| fail(format!("connect {addr} (after retries): {e}")))
    } else {
        Client::connect(&addr, &tenant).unwrap_or_else(|e| fail(format!("connect {addr}: {e}")))
    };
    match verb.as_str() {
        "submit" => {
            let mut graph_spec: Option<String> = None;
            let mut replicas = 8usize;
            let mut seed = 1u64;
            let mut sweep = false;
            let mut wait = true;
            let mut deadline_ms = 0u64;
            let mut backend: Option<KernelBackend> = None;
            let mut it = rest.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--graph" => graph_spec = it.next().cloned(),
                    "--deadline-ms" => {
                        deadline_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--replicas" => {
                        replicas = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--sweep" => sweep = true,
                    "--no-wait" => wait = false,
                    "--backend" => {
                        backend = Some(
                            it.next()
                                .and_then(|v| KernelBackend::from_name(v))
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    _ => usage(),
                }
            }
            let spec = graph_spec.unwrap_or_else(|| usage());
            let graph = parse_graph_spec(&spec).unwrap_or_else(|e| fail(e));
            let mut config = MsropmConfig::paper_default();
            if let Some(b) = backend {
                config = config.with_backend(b);
            }
            let job = if sweep {
                let grid = SweepSpec::new()
                    .logspace(SweepParam::CouplingStrength, 0.7, 1.4, replicas.max(2) / 2)
                    .grid(SweepParam::Noise, vec![0.12, 0.24]);
                BatchJob::from_sweep(config, &grid, seed)
            } else {
                BatchJob::uniform(config, replicas, seed)
            };
            let job_id = client
                .submit_with(&graph, &job, &SubmitOptions::new().deadline_ms(deadline_ms))
                .unwrap_or_else(|e| fail(format!("submit: {e}")))
                .expect("blocking submit yields a job id");
            if deadline_ms > 0 {
                println!(
                    "submitted job {job_id} ({} lanes, deadline {deadline_ms} ms)",
                    job.lanes.len()
                );
            } else {
                println!("submitted job {job_id} ({} lanes)", job.lanes.len());
            }
            if wait {
                let report = client
                    .wait_report(job_id)
                    .unwrap_or_else(|e| fail(format!("wait: {e}")));
                print_report(Some(&graph), &report);
            }
        }
        "problem" => {
            let mut class: Option<String> = None;
            let mut input: Option<String> = None;
            let mut k = 0u16;
            let mut replicas = 8u32;
            let mut seed = 1u64;
            let mut wait = true;
            let mut deadline_ms = 0u64;
            let mut backend: Option<KernelBackend> = None;
            let mut it = rest.iter().skip(1);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--class" => class = it.next().cloned(),
                    "--input" => input = it.next().cloned(),
                    "--k" => {
                        k = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--replicas" => {
                        replicas = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--deadline-ms" => {
                        deadline_ms = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--no-wait" => wait = false,
                    "--backend" => {
                        backend = Some(
                            it.next()
                                .and_then(|v| KernelBackend::from_name(v))
                                .unwrap_or_else(|| usage()),
                        )
                    }
                    _ => usage(),
                }
            }
            let class = class
                .as_deref()
                .and_then(ProblemClass::from_name)
                .unwrap_or_else(|| usage());
            let input = input.unwrap_or_else(|| usage());
            let spec = build_problem_spec(class, &input, k).unwrap_or_else(|e| fail(e));
            let mut config = MsropmConfig::paper_default();
            if let Some(b) = backend {
                config = config.with_backend(b);
            }
            let options = SubmitOptions::new().deadline_ms(deadline_ms);
            let job_id = client
                .submit_problem(&spec, &config, replicas, seed, &options)
                .unwrap_or_else(|e| fail(format!("submit problem: {e}")))
                .expect("blocking submit yields a job id");
            println!("submitted {class} job {job_id} ({replicas} replicas)");
            if wait {
                let report = client
                    .wait_problem_report(job_id)
                    .unwrap_or_else(|e| fail(format!("wait: {e}")));
                print_problem_report(&report);
            }
        }
        "status" | "cancel" => {
            let job_id: u64 = rest
                .get(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
            let state = if verb == "status" {
                client.status(job_id)
            } else {
                client.cancel(job_id)
            }
            .unwrap_or_else(|e| fail(format!("{verb}: {e}")));
            println!("job {job_id}: {state}");
        }
        "stats" => {
            let s = client
                .stats()
                .unwrap_or_else(|e| fail(format!("stats: {e}")));
            // Render from the shared registry schema: every counter the
            // server exposes prints, including ones added after this
            // binary shipped a hand-written format string.
            let registry = Registry::from_wire(&s);
            println!("frontend: {}", registry.frontend());
            for (def, value) in registry.iter() {
                println!("{}: {}", def.name, value);
            }
        }
        _ => usage(),
    }
}

/// The CI wire-smoke scenario; panics (nonzero exit) on any violation.
/// With `idle > 0`, that many extra connections are opened first and
/// held open — completely idle — through the whole scenario, proving
/// the server multiplexes them without degrading active traffic (the
/// reactor front end serves them threadlessly; `stats` must count
/// every one).
fn smoke(addr: Option<&str>, idle: usize) {
    // Without --addr: boot a 1-worker wire server in-process on an
    // ephemeral loopback port (still a real TCP socket). With --addr:
    // the server was booted externally (ci.sh starts `msropm_serve
    // --workers 1`).
    let local = if addr.is_none() {
        Some(
            WireServer::bind(
                "127.0.0.1:0",
                WireConfig {
                    server: ServerConfig {
                        workers: 1,
                        queue_capacity: 16,
                        cache_capacity: 8,
                        ..ServerConfig::default()
                    },
                    ..WireConfig::default()
                },
            )
            .unwrap_or_else(|e| fail(format!("bind: {e}"))),
        )
    } else {
        None
    };
    let addr = addr
        .map(str::to_string)
        .unwrap_or_else(|| local.as_ref().unwrap().local_addr().to_string());
    println!("wire smoke against {addr}");
    let mut client =
        Client::connect(&addr, "smoke").unwrap_or_else(|e| fail(format!("connect {addr}: {e}")));

    // The idle fleet: open and then never touch. Held until the end of
    // the scenario so every assertion below runs with the fleet attached.
    let idle_fleet: Vec<std::net::TcpStream> = (0..idle)
        .map(|i| {
            std::net::TcpStream::connect(&addr)
                .unwrap_or_else(|e| fail(format!("idle connect {i}: {e}")))
        })
        .collect();
    if idle > 0 {
        // Wait until the server has registered the whole fleet.
        let mut connections = 0;
        for _ in 0..600 {
            let s = client
                .stats()
                .unwrap_or_else(|e| fail(format!("stats: {e}")));
            connections = s.connections;
            if connections >= (idle + 1) as u64 {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(
            connections >= (idle + 1) as u64,
            "server tracks only {connections} of {} connections",
            idle + 1
        );
        println!("idle fleet attached: {connections} connections served");
    }

    // Job A: big enough to occupy the single worker for a while. Job B
    // queues behind it and is cancelled while A runs.
    let board = generators::kings_graph(14, 14);
    let config = MsropmConfig::paper_default();
    let job_a = BatchJob::uniform(config, 12, 1);
    let job_b = BatchJob::uniform(config, 4, 2);
    let blocking = SubmitOptions::new();
    let a = client
        .submit_with(&board, &job_a, &blocking)
        .unwrap_or_else(|e| fail(format!("submit A: {e}")))
        .expect("blocking submit yields a job id");
    let b = client
        .submit_with(&board, &job_b, &blocking)
        .unwrap_or_else(|e| fail(format!("submit B: {e}")))
        .expect("blocking submit yields a job id");
    println!("submitted A={a} (12 lanes), B={b} (4 lanes)");

    let state_b = client
        .status(b)
        .unwrap_or_else(|e| fail(format!("status B: {e}")));
    println!("status B before cancel: {state_b}");
    let after_cancel = client
        .cancel(b)
        .unwrap_or_else(|e| fail(format!("cancel B: {e}")));
    println!("cancel B acknowledged (state then: {after_cancel})");

    // A's report must arrive, bit-verifiable client-side.
    let report_a = client
        .wait_report(a)
        .unwrap_or_else(|e| fail(format!("wait A: {e}")));
    assert_eq!(report_a.graph_hash, graph_hash(&board), "A hash mismatch");
    for lane in &report_a.ranked {
        assert_eq!(
            verify_lane(&board, lane),
            Some(lane.conflicts),
            "lane {} conflict recount mismatch",
            lane.lane
        );
    }
    println!(
        "report A: best lane {} with {} conflicts",
        report_a.best().map(|l| l.lane).unwrap_or_default(),
        report_a.best().map(|l| l.conflicts).unwrap_or_default()
    );

    // B must settle in Cancelled (the worker observes the token right
    // after A) ...
    let mut state = after_cancel;
    for _ in 0..600 {
        if state == JobState::Cancelled {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
        state = client
            .status(b)
            .unwrap_or_else(|e| fail(format!("status B: {e}")));
    }
    assert_eq!(state, JobState::Cancelled, "B never settled in cancelled");
    // ... and must never produce a report.
    match client.wait_report_timeout(b, Duration::from_secs(2)) {
        Ok(None) => {}
        Ok(Some(_)) => fail("cancelled job B produced a report"),
        Err(e) => fail(format!("drain after cancel: {e}")),
    }
    // Multiplexed mode: several submits written back to back on the
    // one socket before any reply is read, then correlated by job id.
    let mux_jobs = 4;
    let small = generators::kings_graph(5, 5);
    let nowait = SubmitOptions::new().nowait();
    for i in 0..mux_jobs {
        client
            .submit_with(&small, &BatchJob::uniform(config, 2, 100 + i), &nowait)
            .unwrap_or_else(|e| fail(format!("mux submit {i}: {e}")));
    }
    let mux_ids: Vec<u64> = (0..mux_jobs)
        .map(|i| {
            client
                .recv_submitted()
                .unwrap_or_else(|e| fail(format!("mux reply {i}: {e}")))
        })
        .collect();
    for id in &mux_ids {
        let report = client
            .wait_report(*id)
            .unwrap_or_else(|e| fail(format!("mux report {id}: {e}")));
        assert_eq!(report.graph_hash, graph_hash(&small), "mux hash mismatch");
    }
    println!("multiplexed {mux_jobs} in-flight submits on one socket");

    // One instance of every problem class through the SubmitProblem
    // verb: the server compiles, solves, and streams back a decoded,
    // domain-ranked report.
    let specs: Vec<ProblemSpec> = {
        use msropm_problems::{Cnf, Ising, Lit, Qubo};
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]);
        cnf.add_clause(vec![Lit::from_dimacs(-1), Lit::from_dimacs(3)]);
        cnf.add_clause(vec![Lit::from_dimacs(-2), Lit::from_dimacs(-3)]);
        vec![
            ProblemSpec::Coloring {
                graph: generators::kings_graph(4, 4),
                colors: 4,
            },
            ProblemSpec::MaxCut {
                graph: generators::cycle_graph(7),
            },
            ProblemSpec::MaxKCut {
                graph: generators::kings_graph(4, 4),
                k: 4,
            },
            ProblemSpec::Mis {
                graph: generators::cycle_graph(9),
            },
            ProblemSpec::VertexCover {
                graph: generators::kings_graph(3, 3),
            },
            ProblemSpec::NumberPartition {
                weights: vec![3, 1, 4, 1, 5, 9, 2, 6],
            },
            ProblemSpec::CnfSat { cnf },
            ProblemSpec::Qubo(Qubo {
                n: 4,
                linear: vec![-1.0, 0.5, -0.5, 0.25],
                quadratic: vec![(0, 1, 1.0), (1, 2, -1.0), (2, 3, 0.5)],
            }),
            ProblemSpec::Ising(Ising {
                n: 4,
                h: vec![0.1, -0.2, 0.3, 0.0],
                j: vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, -1.0)],
            }),
        ]
    };
    for spec in &specs {
        let class = spec.class();
        let id = client
            .submit_problem(spec, &config, 2, 7, &blocking)
            .unwrap_or_else(|e| fail(format!("submit {class}: {e}")))
            .expect("blocking submit yields a job id");
        let report = client
            .wait_problem_report(id)
            .unwrap_or_else(|e| fail(format!("wait {class}: {e}")));
        assert_eq!(report.report.class, class, "class echoed back");
        assert_eq!(
            report.report.ranked.len(),
            2,
            "{class}: one entry per replica"
        );
        let best = report.report.best().expect("two replicas ranked");
        println!(
            "problem {class}: job {id}, best objective {} ({})",
            best.objective,
            if best.feasible {
                "feasible"
            } else {
                "infeasible"
            }
        );
    }

    // An unsupported spec must answer a typed, request-scoped error —
    // and leave the connection fully usable.
    let bad = ProblemSpec::Coloring {
        graph: generators::cycle_graph(5),
        colors: 3, // not a power of two: the compiler rejects it
    };
    match client.submit_problem(&bad, &config, 2, 7, &blocking) {
        Err(ClientError::Server {
            code: ErrorCode::UnsupportedProblem,
            ..
        }) => {}
        other => fail(format!(
            "3-color spec should be UnsupportedProblem, got {other:?}"
        )),
    }
    let after_bad = client
        .submit_with(&small, &BatchJob::uniform(config, 2, 321), &blocking)
        .unwrap_or_else(|e| fail(format!("submit after unsupported spec: {e}")))
        .expect("blocking submit yields a job id");
    client
        .wait_report(after_bad)
        .unwrap_or_else(|e| fail(format!("report after unsupported spec: {e}")));
    println!("unsupported spec answered typed error; connection stayed live");

    // An unknown verb frame must do the same: typed UnsupportedVerb
    // reply, no desync — the very next frame on the socket is served.
    {
        let mut raw = std::net::TcpStream::connect(&addr)
            .unwrap_or_else(|e| fail(format!("raw connect: {e}")));
        proto::write_frame(&mut raw, &[0xAB, 0xCD, 0xEF])
            .unwrap_or_else(|e| fail(format!("raw write: {e}")));
        let mut reader = std::io::BufReader::new(
            raw.try_clone()
                .unwrap_or_else(|e| fail(format!("raw clone: {e}"))),
        );
        let reply =
            proto::read_frame(&mut reader).unwrap_or_else(|e| fail(format!("raw read: {e}")));
        match proto::decode_response(&reply) {
            Ok(Response::Error {
                code: ErrorCode::UnsupportedVerb,
                ..
            }) => {}
            other => fail(format!("unknown verb should be UnsupportedVerb: {other:?}")),
        }
        proto::write_frame(&mut raw, &proto::encode_request(&Request::Stats))
            .unwrap_or_else(|e| fail(format!("stats after bad verb: {e}")));
        let reply = proto::read_frame(&mut reader)
            .unwrap_or_else(|e| fail(format!("stats read after bad verb: {e}")));
        match proto::decode_response(&reply) {
            Ok(Response::StatsReply(_)) => {}
            other => fail(format!("stats after bad verb should answer: {other:?}")),
        }
        println!("unknown verb answered typed error; connection stayed live");
    }

    let stats = client
        .stats()
        .unwrap_or_else(|e| fail(format!("stats: {e}")));
    assert!(stats.jobs_completed >= 1, "A should be counted completed");
    assert!(stats.jobs_cancelled >= 1, "B should be counted cancelled");
    drop(idle_fleet);
    if let Some(server) = local {
        server.shutdown();
    }
    println!(
        "wire smoke OK ({} frontend): submit/status/cancel verified; cancelled job produced \
         no report (completed {}, cancelled {}, idle connections {})",
        stats.frontend, stats.jobs_completed, stats.jobs_cancelled, idle
    );
}
