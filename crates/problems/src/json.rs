//! Minimal hand-rolled JSON parser/serializer for QUBO/Ising ingestion
//! and the HTTP gateway's request/response bodies.
//!
//! The workspace builds offline against `vendor/` API-subset shims, so there
//! is no serde; this module implements the small slice of JSON the
//! [`crate::ProblemSpec::Qubo`]/[`crate::ProblemSpec::Ising`] input format
//! needs. It is written to the same bar as `server::proto`'s frame decoder:
//! **never panics** on arbitrary, truncated or malformed input (proptested in
//! `tests/parser_fuzz.rs`), bounds recursion depth, and caps value counts
//! before allocating.

use std::fmt;

/// Maximum nesting depth accepted (arrays/objects). JSON this deep is not a
/// problem instance; the cap keeps hostile input from overflowing the stack.
pub const MAX_DEPTH: usize = 64;

/// Maximum number of elements accepted in a single array or object.
pub const MAX_ELEMS: usize = 1 << 22;

/// Maximum input length in bytes (16 MiB, half the wire frame cap).
pub const MAX_INPUT_LEN: usize = 16 << 20;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite; JSON has no NaN/inf literals).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes this value back to JSON text (the inverse of
    /// [`parse`]). Numbers render via Rust's shortest-round-trip `f64`
    /// formatting, so `parse(&v.render())` reproduces every numeric bit
    /// — the HTTP gateway leans on this for semantically identical
    /// reports across the binary and JSON transports. `u64`-wide fields
    /// (hashes, seeds) do **not** fit an `f64`; callers carry those as
    /// decimal strings (see [`Json::u64_str`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                // JSON has no NaN/inf literals; a non-finite value can
                // only come from a bug, and `null` keeps the output
                // parseable rather than silently corrupting the stream.
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// A `u64` carried losslessly as a decimal string (JSON numbers
    /// travel through this parser as `f64`, which cannot hold all 64
    /// bits of a hash or seed).
    pub fn u64_str(v: u64) -> Json {
        Json::Str(v.to_string())
    }

    /// Inverse of [`Json::u64_str`]: decodes a `u64` from a decimal
    /// string, also accepting a plain number when it is an exact
    /// integer (small ids and counters).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Str(s) => s.parse().ok(),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: a message and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value, optionally surrounded by
/// whitespace). Never panics; all failure modes are [`JsonError`]s.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    if input.len() > MAX_INPUT_LEN {
        return Err(JsonError {
            message: format!("input longer than {MAX_INPUT_LEN} bytes"),
            offset: 0,
        });
    }
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            if items.len() > MAX_ELEMS {
                return Err(self.err("array too long"));
            }
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            return Err(self.err("expected ',' or ']'"));
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':'"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            if pairs.len() > MAX_ELEMS {
                return Err(self.err("object too large"));
            }
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Obj(pairs));
            }
            return Err(self.err("expected ',' or '}'"));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Unpaired surrogates map to the replacement char;
                            // a problem file has no business containing them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 3; // +1 more below
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid utf-8")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn nested() {
        let v = parse(r#"{"n": 2, "q": [[0, 1, -1.5]]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(2));
        let q = v.get("q").and_then(Json::as_arr).unwrap();
        assert_eq!(q[0].as_arr().unwrap()[2].as_f64(), Some(-1.5));
    }

    #[test]
    fn malformed() {
        for bad in [
            "", "{", "[1,", "nul", "1e", "\"\\x\"", "{1:2}", "[1]]", "1 2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_capped() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        assert_eq!(parse("\"π\"").unwrap(), Json::Str("π".into()));
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn render_roundtrips_structures_and_bits() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\"\\\n\u{1}π".into())),
            (
                "a".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-0.125)]),
            ),
            ("n".into(), Json::Num(1.0e-17_f64)),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
        // Shortest-round-trip float formatting preserves every bit.
        for bits in [0x3FF0_0000_0000_0001_u64, 0x0010_0000_0000_0000] {
            let x = f64::from_bits(bits);
            let back = parse(&Json::Num(x).render()).unwrap();
            assert_eq!(back.as_f64().map(f64::to_bits), Some(bits));
        }
    }

    #[test]
    fn u64_carried_as_string_is_lossless() {
        for v in [0u64, 1 << 53, u64::MAX, 0xdead_beef_dead_beef] {
            let j = Json::u64_str(v);
            assert_eq!(parse(&j.render()).unwrap().as_u64(), Some(v));
        }
        // Small exact integers also decode from plain numbers.
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(0.5).as_u64(), None);
    }
}
