//! Classical greedy baselines per problem class, table2-style.
//!
//! These are the deterministic heuristics the per-class ablation bins
//! compare machine accuracy against (`bench/src/bin/problems_bench.rs`):
//! the standard textbook greedy for each class, not tuned — the point is
//! a stable reference line, not a competitive solver.

use crate::{Ising, Qubo};
use msropm_graph::{Graph, NodeId};

/// Greedy maximum independent set: repeatedly take the minimum-degree
/// vertex of the remaining graph (ties toward the lowest index), then
/// discard its neighbours. Returns sorted member indices.
pub fn greedy_mis(g: &Graph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(NodeId::new(v))).collect();
    let mut set = Vec::new();
    loop {
        let mut pick: Option<(usize, usize)> = None; // (degree, vertex)
        for v in 0..n {
            if alive[v] && pick.is_none_or(|(bd, bv)| (degree[v], v) < (bd, bv)) {
                pick = Some((degree[v], v));
            }
        }
        let Some((_, v)) = pick else { break };
        set.push(v as u32);
        alive[v] = false;
        for (w, _) in g.neighbors(NodeId::new(v)) {
            if alive[w.index()] {
                alive[w.index()] = false;
                for (x, _) in g.neighbors(w) {
                    degree[x.index()] = degree[x.index()].saturating_sub(1);
                }
            }
        }
    }
    set.sort_unstable();
    set
}

/// Greedy vertex cover via maximal matching (the classic 2-approximation):
/// scan edges in id order; whenever both endpoints are uncovered, add both.
/// Returns sorted member indices.
pub fn greedy_vertex_cover(g: &Graph) -> Vec<u32> {
    let mut covered = vec![false; g.num_nodes()];
    let mut cover = Vec::new();
    for (_, u, v) in g.edges() {
        if !covered[u.index()] && !covered[v.index()] {
            covered[u.index()] = true;
            covered[v.index()] = true;
            cover.push(u.index() as u32);
            cover.push(v.index() as u32);
        }
    }
    cover.sort_unstable();
    cover
}

/// Greedy max-k-cut: assign vertices in index order to the class with the
/// fewest already-assigned neighbours (ties toward the lowest class).
/// Returns the class per vertex and the number of cut edges.
pub fn greedy_max_k_cut(g: &Graph, k: usize) -> (Vec<u16>, usize) {
    let n = g.num_nodes();
    let mut class = vec![u16::MAX; n];
    for v in 0..n {
        let mut counts = vec![0usize; k];
        for (w, _) in g.neighbors(NodeId::new(v)) {
            let c = class[w.index()];
            if c != u16::MAX {
                counts[c as usize] += 1;
            }
        }
        let best = (0..k).min_by_key(|&c| (counts[c], c)).unwrap_or(0);
        class[v] = best as u16;
    }
    let cut = g
        .edges()
        .filter(|&(_, u, v)| class[u.index()] != class[v.index()])
        .count();
    (class, cut)
}

/// Greedy number partitioning (LPT): place items in descending weight
/// order (ties toward the lower index) onto the lighter side. Returns the
/// side bits and the final imbalance.
pub fn greedy_partition(weights: &[u64]) -> (Vec<bool>, u64) {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut sides = vec![false; weights.len()];
    let (mut a, mut b) = (0u128, 0u128);
    for i in order {
        if a <= b {
            a += u128::from(weights[i]);
        } else {
            sides[i] = true;
            b += u128::from(weights[i]);
        }
    }
    (sides, a.abs_diff(b) as u64)
}

/// Greedy QUBO descent from the all-zero state: best-improvement 1-flips
/// until a local optimum. Returns the state and its energy.
pub fn greedy_qubo(q: &Qubo) -> (Vec<bool>, f64) {
    let mut x = vec![false; q.n];
    let e = crate::descend_qubo(q, &mut x);
    (x, e)
}

/// Greedy Ising descent from the all-down state: best-improvement 1-flips
/// until a local optimum. Returns the spins and their energy.
pub fn greedy_ising(ising: &Ising) -> (Vec<bool>, f64) {
    let mut s = vec![false; ising.n];
    let e = crate::descend_ising(ising, &mut s);
    (s, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;

    #[test]
    fn greedy_mis_is_independent_and_maximal() {
        let g = generators::kings_graph(4, 4);
        let set = greedy_mis(&g);
        assert!(crate::is_independent(&g, &set));
        // Maximal: every non-member has a member neighbour.
        let mut in_set = vec![false; g.num_nodes()];
        for &v in &set {
            in_set[v as usize] = true;
        }
        for v in g.nodes() {
            if !in_set[v.index()] {
                assert!(
                    g.neighbors(v).any(|(w, _)| in_set[w.index()]),
                    "vertex {} could be added",
                    v.index()
                );
            }
        }
    }

    #[test]
    fn greedy_cover_covers() {
        let g = generators::kings_graph(4, 4);
        let cover = greedy_vertex_cover(&g);
        assert!(crate::is_cover(&g, &cover));
    }

    #[test]
    fn greedy_k_cut_counts_match() {
        let g = generators::cycle_graph(7);
        let (class, cut) = greedy_max_k_cut(&g, 2);
        assert!(class.iter().all(|&c| c < 2));
        assert_eq!(cut, 6, "C7 greedy 2-cut alternates until the wrap edge");
    }

    #[test]
    fn lpt_partitions_perfectly_when_possible() {
        let (_, imb) = greedy_partition(&[4, 3, 3, 2]);
        assert_eq!(imb, 0);
        let (sides, imb) = greedy_partition(&[5, 4, 3]);
        assert_eq!(imb, 2);
        assert_eq!(sides.len(), 3);
    }
}
