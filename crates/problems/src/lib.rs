//! Problem compiler: many NP workloads onto one Potts machine.
//!
//! *Oscillator Formulations of Many NP Problems* catalogs Potts/Ising
//! encodings for a whole family of NP-hard problems; this crate is the
//! encoder layer that lets one deployed MSROPM serve that catalog. A
//! [`ProblemSpec`] describes a problem instance in its own domain terms
//! (a graph to color, a set of numbers to partition, a CNF formula, a
//! QUBO matrix); [`ProblemSpec::compile`] lowers it onto the machine's
//! native substrate — an **encoding graph** annealed by the multi-stage
//! divide-and-color dynamics — and returns a [`CompiledProblem`] whose
//! [`Decoder`] maps every ranked phase readout back to a **typed domain
//! solution** with a domain-level objective.
//!
//! The machine itself anneals an unweighted antiferromagnetic coupling
//! topology, so the compiler follows the standard Ising-machine split:
//! the *structure* of the instance (which variables interact) is compiled
//! into the encoding graph the oscillators solve, while the *weights*
//! (item sizes, coupling magnitudes, clause semantics) live in the
//! decoder, which seeds a deterministic domain-level local descent from
//! the machine readout. Every decode is a pure function of the readout,
//! so reports stay byte-identical across workers, shard widths and
//! front ends.
//!
//! # Example
//!
//! ```
//! use msropm_core::MsropmConfig;
//! use msropm_problems::{DecodedSolution, ProblemSpec};
//!
//! // Partition {4, 5, 6, 7, 8} into two halves of equal sum.
//! let spec = ProblemSpec::NumberPartition {
//!     weights: vec![4, 5, 6, 7, 8],
//! };
//! let compiled = spec.compile(&MsropmConfig::paper_default(), 4).unwrap();
//! assert_eq!(compiled.graph.num_nodes(), 5); // K_5 encoding graph
//!
//! // (The machine solves `compiled.graph` with `compiled.config`; the
//! //  decoder then maps each readout to a partition and its imbalance.)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod json;

use msropm_core::{JobReport, LaneConfig, MsropmConfig};
use msropm_graph::{graph_hash, io as graph_io, Coloring, Graph, GraphBuilder, NodeId};
use std::fmt;

// Re-exported so downstream crates (the wire codec, clients) can build
// and inspect CNF specs without a direct msropm-sat dependency.
pub use msropm_sat::{Cnf, Lit, Var};

/// Maximum number of items in a [`ProblemSpec::NumberPartition`]: the
/// encoding graph is the complete graph `K_n`, so this caps edges at ~523k.
pub const MAX_WEIGHTS: usize = 1024;

/// Maximum single item weight (sums of [`MAX_WEIGHTS`] of these still fit
/// exactly in an `f64` mantissa, keeping wire objectives lossless).
pub const MAX_WEIGHT: u64 = 1 << 40;

/// Maximum variable count for CNF / QUBO / Ising instances.
pub const MAX_VARIABLES: usize = 1 << 16;

/// Maximum CNF clause count.
pub const MAX_CNF_CLAUSES: usize = 1 << 18;

/// Maximum total CNF literal count.
pub const MAX_CNF_LITERALS: usize = 1 << 20;

/// Maximum number of quadratic couplings for QUBO / Ising instances, and
/// the cap on encoding-graph edges derived from CNF co-occurrence.
pub const MAX_COUPLINGS: usize = 1 << 20;

/// Maximum color count for coloring / max-k-cut (8 machine stages).
pub const MAX_COLORS: u16 = 256;

/// The problem classes the compiler speaks, with their stable wire tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ProblemClass {
    /// Graph k-coloring (the machine's native workload).
    Coloring = 1,
    /// Max-cut (stage-1 of divide-and-color).
    MaxCut = 2,
    /// Max-k-cut: partition vertices into k classes maximizing cut edges.
    MaxKCut = 3,
    /// Maximum independent set.
    Mis = 4,
    /// Minimum vertex cover.
    VertexCover = 5,
    /// Two-way number partitioning.
    NumberPartition = 6,
    /// CNF satisfiability (decision as minimize-unsatisfied-clauses).
    CnfSat = 7,
    /// Quadratic unconstrained binary optimization.
    Qubo = 8,
    /// Ising energy minimization (h fields + J couplings).
    Ising = 9,
}

impl ProblemClass {
    /// All classes, in tag order.
    pub const ALL: [ProblemClass; 9] = [
        ProblemClass::Coloring,
        ProblemClass::MaxCut,
        ProblemClass::MaxKCut,
        ProblemClass::Mis,
        ProblemClass::VertexCover,
        ProblemClass::NumberPartition,
        ProblemClass::CnfSat,
        ProblemClass::Qubo,
        ProblemClass::Ising,
    ];

    /// The stable wire tag.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`ProblemClass::tag`].
    pub fn from_tag(tag: u8) -> Option<ProblemClass> {
        ProblemClass::ALL.into_iter().find(|c| c.tag() == tag)
    }

    /// CLI / display name (kebab-case).
    pub fn name(self) -> &'static str {
        match self {
            ProblemClass::Coloring => "coloring",
            ProblemClass::MaxCut => "max-cut",
            ProblemClass::MaxKCut => "max-k-cut",
            ProblemClass::Mis => "mis",
            ProblemClass::VertexCover => "vertex-cover",
            ProblemClass::NumberPartition => "number-partition",
            ProblemClass::CnfSat => "cnf-sat",
            ProblemClass::Qubo => "qubo",
            ProblemClass::Ising => "ising",
        }
    }

    /// Inverse of [`ProblemClass::name`].
    pub fn from_name(name: &str) -> Option<ProblemClass> {
        ProblemClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Whether larger objectives are better for this class.
    pub fn sense(self) -> ObjectiveSense {
        match self {
            ProblemClass::MaxCut | ProblemClass::MaxKCut | ProblemClass::Mis => {
                ObjectiveSense::Maximize
            }
            _ => ObjectiveSense::Minimize,
        }
    }
}

impl fmt::Display for ProblemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Optimization direction of a decoded objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveSense {
    /// Smaller objective is better (conflicts, cover size, imbalance, energy).
    Minimize,
    /// Larger objective is better (cut weight, set size).
    Maximize,
}

/// A QUBO instance: minimize `x^T Q x` over `x ∈ {0,1}^n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Qubo {
    /// Number of binary variables.
    pub n: usize,
    /// Diagonal terms `Q_ii` (length `n`, or empty for all-zero).
    pub linear: Vec<f64>,
    /// Off-diagonal terms `(i, j, Q_ij)` with `i < j`.
    pub quadratic: Vec<(u32, u32, f64)>,
}

/// An Ising instance: minimize `Σ h_i s_i + Σ J_ij s_i s_j`, `s ∈ {-1,+1}^n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ising {
    /// Number of spins.
    pub n: usize,
    /// Local fields `h_i` (length `n`, or empty for all-zero).
    pub h: Vec<f64>,
    /// Couplings `(i, j, J_ij)` with `i < j`.
    pub j: Vec<(u32, u32, f64)>,
}

/// One problem instance, in domain terms. Compile with
/// [`ProblemSpec::compile`]; ingest standard formats with
/// [`ProblemSpec::from_text`].
#[derive(Debug, Clone)]
pub enum ProblemSpec {
    /// Color `graph` with `colors` colors, minimizing conflicting edges.
    Coloring {
        /// The graph to color.
        graph: Graph,
        /// Palette size (must be a power of two: the machine realizes
        /// `2^k` colors with `k` stages).
        colors: u16,
    },
    /// Maximize the number of edges crossing a 2-partition of `graph`.
    MaxCut {
        /// The graph to cut.
        graph: Graph,
    },
    /// Maximize edges whose endpoints land in different classes of a
    /// `k`-partition.
    MaxKCut {
        /// The graph to cut.
        graph: Graph,
        /// Number of classes (power of two).
        k: u16,
    },
    /// Maximum independent set of `graph`.
    Mis {
        /// The graph.
        graph: Graph,
    },
    /// Minimum vertex cover of `graph`.
    VertexCover {
        /// The graph.
        graph: Graph,
    },
    /// Split `weights` into two sets minimizing the sum imbalance.
    NumberPartition {
        /// The item weights.
        weights: Vec<u64>,
    },
    /// Minimize unsatisfied clauses of a CNF formula.
    CnfSat {
        /// The formula.
        cnf: Cnf,
    },
    /// Minimize a QUBO energy.
    Qubo(Qubo),
    /// Minimize an Ising energy.
    Ising(Ising),
}

/// Why a spec could not be ingested or compiled.
#[derive(Debug, Clone)]
pub enum ProblemError {
    /// The input text / bytes did not parse as the expected format.
    Parse(String),
    /// The instance is outside what the machine supports (bad palette
    /// size, too large, empty, ...).
    Unsupported(String),
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::Parse(m) => write!(f, "parse error: {m}"),
            ProblemError::Unsupported(m) => write!(f, "unsupported problem: {m}"),
        }
    }
}

impl std::error::Error for ProblemError {}

fn parse_err(e: impl fmt::Display) -> ProblemError {
    ProblemError::Parse(e.to_string())
}

fn unsupported(m: impl Into<String>) -> ProblemError {
    ProblemError::Unsupported(m.into())
}

/// Parses a whitespace/newline-separated list of item weights (`#` and `c`
/// lines are comments) — the common number-partitioning benchmark format.
pub fn read_weights(text: &str) -> Result<Vec<u64>, ProblemError> {
    let mut weights = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("c ") || line == "c" {
            continue;
        }
        for tok in line.split_whitespace() {
            let w: u64 = tok
                .parse()
                .map_err(|_| ProblemError::Parse(format!("bad weight {tok:?}")))?;
            if w > MAX_WEIGHT {
                return Err(unsupported(format!("weight {w} exceeds {MAX_WEIGHT}")));
            }
            weights.push(w);
            if weights.len() > MAX_WEIGHTS {
                return Err(unsupported(format!("more than {MAX_WEIGHTS} weights")));
            }
        }
    }
    Ok(weights)
}

/// Reads a QUBO from its JSON form:
/// `{"n": N, "linear": [Q_00, ...], "quadratic": [[i, j, Q_ij], ...]}`
/// (`linear` may be omitted; `i < j < n` required).
pub fn read_qubo_json(text: &str) -> Result<Qubo, ProblemError> {
    let (n, linear, quadratic) = read_quadratic_json(text, "linear", "quadratic")?;
    Ok(Qubo {
        n,
        linear,
        quadratic,
    })
}

/// Reads an Ising instance from its JSON form:
/// `{"n": N, "h": [h_0, ...], "j": [[i, j, J_ij], ...]}`
/// (`h` may be omitted; `i < j < n` required).
pub fn read_ising_json(text: &str) -> Result<Ising, ProblemError> {
    let (n, h, j) = read_quadratic_json(text, "h", "j")?;
    Ok(Ising { n, h, j })
}

/// Shared JSON shape of QUBO and Ising inputs.
#[allow(clippy::type_complexity)]
fn read_quadratic_json(
    text: &str,
    linear_key: &str,
    quad_key: &str,
) -> Result<(usize, Vec<f64>, Vec<(u32, u32, f64)>), ProblemError> {
    let doc = json::parse(text).map_err(parse_err)?;
    let n = doc
        .get("n")
        .and_then(json::Json::as_usize)
        .ok_or_else(|| ProblemError::Parse("missing integer field \"n\"".into()))?;
    if n > MAX_VARIABLES {
        return Err(unsupported(format!("n={n} exceeds {MAX_VARIABLES}")));
    }
    let linear = match doc.get(linear_key) {
        None | Some(json::Json::Null) => Vec::new(),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| ProblemError::Parse(format!("\"{linear_key}\" must be an array")))?;
            if arr.len() != n {
                return Err(ProblemError::Parse(format!(
                    "\"{linear_key}\" has {} entries, expected n={n}",
                    arr.len()
                )));
            }
            arr.iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| ProblemError::Parse(format!("non-number in {linear_key:?}")))
                })
                .collect::<Result<Vec<f64>, _>>()?
        }
    };
    let mut quadratic = Vec::new();
    if let Some(v) = doc.get(quad_key) {
        let arr = v
            .as_arr()
            .ok_or_else(|| ProblemError::Parse(format!("\"{quad_key}\" must be an array")))?;
        if arr.len() > MAX_COUPLINGS {
            return Err(unsupported(format!("more than {MAX_COUPLINGS} couplings")));
        }
        for entry in arr {
            let triple = entry
                .as_arr()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| ProblemError::Parse(format!("{quad_key:?} entries are [i,j,w]")))?;
            let i = triple[0]
                .as_usize()
                .ok_or_else(|| ProblemError::Parse("bad coupling index".into()))?;
            let j = triple[1]
                .as_usize()
                .ok_or_else(|| ProblemError::Parse("bad coupling index".into()))?;
            let w = triple[2]
                .as_f64()
                .ok_or_else(|| ProblemError::Parse("bad coupling weight".into()))?;
            if i >= n || j >= n {
                return Err(ProblemError::Parse(format!(
                    "coupling ({i},{j}) out of range for n={n}"
                )));
            }
            if i == j {
                return Err(ProblemError::Parse(format!(
                    "self-coupling ({i},{i}); put diagonal terms in \"{linear_key}\""
                )));
            }
            quadratic.push((i.min(j) as u32, i.max(j) as u32, w));
        }
    }
    Ok((n, linear, quadratic))
}

impl ProblemSpec {
    /// Ingests a problem from its standard text format:
    ///
    /// | class | format |
    /// |---|---|
    /// | coloring / max-cut / max-k-cut / mis / vertex-cover | DIMACS `.col` (`p edge`, `e u v`) |
    /// | number-partition | whitespace-separated weights |
    /// | cnf-sat | DIMACS CNF (`p cnf`, 0-terminated clauses) |
    /// | qubo / ising | JSON (see [`read_qubo_json`] / [`read_ising_json`]) |
    ///
    /// `k` is the palette / class count for coloring and max-k-cut (use 0
    /// for the default of 4); it is ignored by every other class.
    ///
    /// # Errors
    ///
    /// [`ProblemError::Parse`] on malformed input, [`ProblemError::Unsupported`]
    /// when the instance exceeds the documented caps.
    pub fn from_text(class: ProblemClass, text: &str, k: u16) -> Result<ProblemSpec, ProblemError> {
        let graph = |text: &str| graph_io::read_dimacs(text.as_bytes()).map_err(parse_err);
        let k = if k == 0 { 4 } else { k };
        let spec = match class {
            ProblemClass::Coloring => ProblemSpec::Coloring {
                graph: graph(text)?,
                colors: k,
            },
            ProblemClass::MaxCut => ProblemSpec::MaxCut {
                graph: graph(text)?,
            },
            ProblemClass::MaxKCut => ProblemSpec::MaxKCut {
                graph: graph(text)?,
                k,
            },
            ProblemClass::Mis => ProblemSpec::Mis {
                graph: graph(text)?,
            },
            ProblemClass::VertexCover => ProblemSpec::VertexCover {
                graph: graph(text)?,
            },
            ProblemClass::NumberPartition => ProblemSpec::NumberPartition {
                weights: read_weights(text)?,
            },
            ProblemClass::CnfSat => ProblemSpec::CnfSat {
                cnf: msropm_sat::cnf::read_dimacs_cnf(text.as_bytes()).map_err(parse_err)?,
            },
            ProblemClass::Qubo => ProblemSpec::Qubo(read_qubo_json(text)?),
            ProblemClass::Ising => ProblemSpec::Ising(read_ising_json(text)?),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The class of this spec.
    pub fn class(&self) -> ProblemClass {
        match self {
            ProblemSpec::Coloring { .. } => ProblemClass::Coloring,
            ProblemSpec::MaxCut { .. } => ProblemClass::MaxCut,
            ProblemSpec::MaxKCut { .. } => ProblemClass::MaxKCut,
            ProblemSpec::Mis { .. } => ProblemClass::Mis,
            ProblemSpec::VertexCover { .. } => ProblemClass::VertexCover,
            ProblemSpec::NumberPartition { .. } => ProblemClass::NumberPartition,
            ProblemSpec::CnfSat { .. } => ProblemClass::CnfSat,
            ProblemSpec::Qubo(_) => ProblemClass::Qubo,
            ProblemSpec::Ising(_) => ProblemClass::Ising,
        }
    }

    /// Number of domain variables (vertices, items, CNF variables, spins).
    pub fn domain_size(&self) -> usize {
        match self {
            ProblemSpec::Coloring { graph, .. }
            | ProblemSpec::MaxCut { graph }
            | ProblemSpec::MaxKCut { graph, .. }
            | ProblemSpec::Mis { graph }
            | ProblemSpec::VertexCover { graph } => graph.num_nodes(),
            ProblemSpec::NumberPartition { weights } => weights.len(),
            ProblemSpec::CnfSat { cnf } => cnf.num_vars(),
            ProblemSpec::Qubo(q) => q.n,
            ProblemSpec::Ising(i) => i.n,
        }
    }

    /// Checks instance-level invariants (size caps, palette constraints).
    ///
    /// # Errors
    ///
    /// [`ProblemError::Unsupported`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), ProblemError> {
        let check_palette = |k: u16| {
            if !(2..=MAX_COLORS).contains(&k) || !k.is_power_of_two() {
                Err(unsupported(format!(
                    "palette size {k} (the machine realizes 2^stages colors, 2..={MAX_COLORS})"
                )))
            } else {
                Ok(())
            }
        };
        match self {
            ProblemSpec::Coloring { graph, colors } => {
                check_palette(*colors)?;
                check_graph(graph)
            }
            ProblemSpec::MaxKCut { graph, k } => {
                check_palette(*k)?;
                check_graph(graph)
            }
            ProblemSpec::MaxCut { graph }
            | ProblemSpec::Mis { graph }
            | ProblemSpec::VertexCover { graph } => check_graph(graph),
            ProblemSpec::NumberPartition { weights } => {
                if weights.len() < 2 {
                    return Err(unsupported("need at least two weights"));
                }
                if weights.len() > MAX_WEIGHTS {
                    return Err(unsupported(format!("more than {MAX_WEIGHTS} weights")));
                }
                if let Some(w) = weights.iter().find(|&&w| w > MAX_WEIGHT) {
                    return Err(unsupported(format!("weight {w} exceeds {MAX_WEIGHT}")));
                }
                Ok(())
            }
            ProblemSpec::CnfSat { cnf } => {
                if cnf.num_vars() == 0 || cnf.num_clauses() == 0 {
                    return Err(unsupported("empty CNF"));
                }
                if cnf.num_vars() > MAX_VARIABLES {
                    return Err(unsupported(format!("more than {MAX_VARIABLES} variables")));
                }
                if cnf.num_clauses() > MAX_CNF_CLAUSES {
                    return Err(unsupported(format!("more than {MAX_CNF_CLAUSES} clauses")));
                }
                let lits: usize = cnf.clauses().map(<[Lit]>::len).sum();
                if lits > MAX_CNF_LITERALS {
                    return Err(unsupported(format!(
                        "more than {MAX_CNF_LITERALS} literals"
                    )));
                }
                Ok(())
            }
            ProblemSpec::Qubo(Qubo {
                n,
                linear,
                quadratic,
            }) => check_quadratic(*n, linear, quadratic),
            ProblemSpec::Ising(Ising { n, h, j }) => check_quadratic(*n, h, j),
        }
    }

    /// A stable 64-bit fingerprint of the problem *instance* (class +
    /// domain payload). Extends the problem-cache key beyond the encoding
    /// graph's hash so distinct encodings of the same graph never collide,
    /// and lets clients correlate reports with what they submitted.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u8(self.class().tag());
        match self {
            ProblemSpec::Coloring { graph, colors } => {
                h.u64(graph_hash(graph));
                h.u64(u64::from(*colors));
            }
            ProblemSpec::MaxKCut { graph, k } => {
                h.u64(graph_hash(graph));
                h.u64(u64::from(*k));
            }
            ProblemSpec::MaxCut { graph }
            | ProblemSpec::Mis { graph }
            | ProblemSpec::VertexCover { graph } => h.u64(graph_hash(graph)),
            ProblemSpec::NumberPartition { weights } => {
                h.u64(weights.len() as u64);
                for &w in weights {
                    h.u64(w);
                }
            }
            ProblemSpec::CnfSat { cnf } => {
                h.u64(cnf.num_vars() as u64);
                h.u64(cnf.num_clauses() as u64);
                for clause in cnf.clauses() {
                    h.u64(clause.len() as u64);
                    for l in clause {
                        h.u64(l.to_dimacs() as u64);
                    }
                }
            }
            ProblemSpec::Qubo(Qubo {
                n,
                linear,
                quadratic,
            }) => hash_quadratic(&mut h, *n, linear, quadratic),
            ProblemSpec::Ising(Ising { n, h: field, j }) => hash_quadratic(&mut h, *n, field, j),
        }
        h.finish()
    }

    /// Lowers the spec onto the machine: encoding graph + operating point
    /// + `replicas` uniform lanes + the domain decoder.
    ///
    /// # Errors
    ///
    /// [`ProblemError::Unsupported`] when the instance fails
    /// [`ProblemSpec::validate`] or its encoding graph would exceed
    /// [`MAX_COUPLINGS`] edges.
    pub fn compile(
        &self,
        base: &MsropmConfig,
        replicas: usize,
    ) -> Result<CompiledProblem, ProblemError> {
        self.validate()?;
        if replicas == 0 {
            return Err(unsupported("need at least one replica lane"));
        }
        let graph = self.encoding_graph()?;
        let num_colors = match self {
            ProblemSpec::Coloring { colors, .. } => *colors as usize,
            ProblemSpec::MaxKCut { k, .. } => *k as usize,
            // Every binary encoding runs the machine in 2-color
            // (single-stage max-cut) mode.
            _ => 2,
        };
        let config = MsropmConfig {
            num_colors,
            ..*base
        };
        Ok(CompiledProblem {
            fingerprint: self.fingerprint(),
            graph,
            config,
            lanes: vec![LaneConfig::default(); replicas],
            decoder: Decoder { spec: self.clone() },
        })
    }

    /// Builds the unweighted coupling topology the oscillators anneal.
    fn encoding_graph(&self) -> Result<Graph, ProblemError> {
        match self {
            // Graph problems run on the instance graph itself.
            ProblemSpec::Coloring { graph, .. }
            | ProblemSpec::MaxCut { graph }
            | ProblemSpec::MaxKCut { graph, .. }
            | ProblemSpec::Mis { graph }
            | ProblemSpec::VertexCover { graph } => Ok(graph.clone()),
            // Number partitioning is max-cut on K_n (J_ij = w_i w_j is
            // all-to-all antiferromagnetic; the topology is complete).
            ProblemSpec::NumberPartition { weights } => {
                let n = weights.len();
                let mut b = GraphBuilder::new(n);
                for u in 0..n {
                    for v in (u + 1)..n {
                        b.add_edge_dedup(u, v);
                    }
                }
                Ok(b.build())
            }
            // CNF: variable co-occurrence graph. Variables sharing a clause
            // are coupled; the anneal pushes them toward opposite phases,
            // seeding diverse assignments over exactly the interacting sets.
            ProblemSpec::CnfSat { cnf } => {
                let n = cnf.num_vars().max(2);
                let mut b = GraphBuilder::new(n);
                for clause in cnf.clauses() {
                    for (a, la) in clause.iter().enumerate() {
                        for lb in clause.iter().skip(a + 1) {
                            b.add_edge_dedup(la.var().index(), lb.var().index());
                            if b.num_edges() > MAX_COUPLINGS {
                                return Err(unsupported(format!(
                                    "CNF co-occurrence graph exceeds {MAX_COUPLINGS} edges"
                                )));
                            }
                        }
                    }
                }
                Ok(b.build())
            }
            // QUBO / Ising: nodes are variables, edges are the nonzero
            // couplings (magnitudes and fields live in the decoder).
            ProblemSpec::Qubo(Qubo { n, quadratic, .. }) => quadratic_graph(*n, quadratic),
            ProblemSpec::Ising(Ising { n, j, .. }) => quadratic_graph(*n, j),
        }
    }
}

fn check_graph(graph: &Graph) -> Result<(), ProblemError> {
    if graph.num_nodes() < 2 {
        return Err(unsupported("need at least two vertices"));
    }
    Ok(())
}

fn check_quadratic(n: usize, linear: &[f64], quad: &[(u32, u32, f64)]) -> Result<(), ProblemError> {
    if n < 2 {
        return Err(unsupported("need at least two variables"));
    }
    if n > MAX_VARIABLES {
        return Err(unsupported(format!("more than {MAX_VARIABLES} variables")));
    }
    if !linear.is_empty() && linear.len() != n {
        return Err(unsupported(format!(
            "linear terms: {} entries, expected 0 or n={n}",
            linear.len()
        )));
    }
    if quad.len() > MAX_COUPLINGS {
        return Err(unsupported(format!("more than {MAX_COUPLINGS} couplings")));
    }
    if linear.iter().any(|x| !x.is_finite()) || quad.iter().any(|(_, _, w)| !w.is_finite()) {
        return Err(unsupported("non-finite coefficient"));
    }
    if let Some(&(i, j, _)) = quad.iter().find(|&&(i, j, _)| i >= j || j as usize >= n) {
        return Err(unsupported(format!(
            "coupling ({i},{j}) out of range (need i < j < n)"
        )));
    }
    Ok(())
}

fn quadratic_graph(n: usize, quad: &[(u32, u32, f64)]) -> Result<Graph, ProblemError> {
    let mut b = GraphBuilder::new(n.max(2));
    for &(i, j, w) in quad {
        if w != 0.0 {
            b.add_edge_dedup(i as usize, j as usize);
        }
    }
    Ok(b.build())
}

fn hash_quadratic(h: &mut Fnv, n: usize, linear: &[f64], quad: &[(u32, u32, f64)]) {
    h.u64(n as u64);
    h.u64(linear.len() as u64);
    for x in linear {
        h.u64(x.to_bits());
    }
    h.u64(quad.len() as u64);
    for &(i, j, w) in quad {
        h.u64(u64::from(i));
        h.u64(u64::from(j));
        h.u64(w.to_bits());
    }
}

/// FNV-1a, the same construction `graph::io::graph_hash` uses.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A spec lowered onto the machine: what to anneal, how, and how to read
/// the result back into the domain.
#[derive(Debug, Clone)]
pub struct CompiledProblem {
    /// Instance fingerprint ([`ProblemSpec::fingerprint`]); extends the
    /// problem-cache key beyond the encoding graph's hash.
    pub fingerprint: u64,
    /// The unweighted coupling topology the oscillators anneal.
    pub graph: Graph,
    /// Machine operating point (`num_colors` forced per class).
    pub config: MsropmConfig,
    /// Per-replica control lanes (uniform).
    pub lanes: Vec<LaneConfig>,
    /// Maps ranked readouts back to typed domain solutions.
    pub decoder: Decoder,
}

/// A typed domain solution decoded from a phase readout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodedSolution {
    /// Color index per vertex (coloring, max-k-cut).
    Coloring(Vec<u16>),
    /// Cut side per vertex (max-cut).
    CutSides(Vec<bool>),
    /// Sorted member vertices (independent set, vertex cover).
    Subset(Vec<u32>),
    /// Side per item (number partitioning).
    Partition(Vec<bool>),
    /// Truth value per variable (CNF).
    Assignment(Vec<bool>),
    /// Binary/spin state per variable (QUBO: `x_i = 1` ⇔ `true`;
    /// Ising: `s_i = +1` ⇔ `true`).
    Spins(Vec<bool>),
}

/// One lane's decoded outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedLane {
    /// Lane index within the job.
    pub lane: u32,
    /// The derived seed the lane ran with.
    pub seed: u64,
    /// Domain objective (see [`ProblemClass::sense`] for direction).
    pub objective: f64,
    /// Whether the solution satisfies the class's hard constraints
    /// (proper coloring / satisfying assignment / perfect partition;
    /// always `true` for pure optimization classes).
    pub feasible: bool,
    /// The typed solution.
    pub solution: DecodedSolution,
}

/// The decoded, domain-level result of one problem solve: every lane's
/// typed solution, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemReport {
    /// Problem class.
    pub class: ProblemClass,
    /// Instance fingerprint (echo of [`ProblemSpec::fingerprint`]).
    pub problem_fingerprint: u64,
    /// Canonical hash of the *encoding* graph the machine annealed.
    pub graph_hash: u64,
    /// Job seed (echo).
    pub seed: u64,
    /// Lanes ranked best-objective-first (ties: ascending lane index).
    pub ranked: Vec<DecodedLane>,
}

impl ProblemReport {
    /// The best decoded lane.
    pub fn best(&self) -> Option<&DecodedLane> {
        self.ranked.first()
    }
}

/// Maps ranked phase readouts back to typed domain solutions.
///
/// Decoding is a **pure function** of the readout: the same machine
/// report decodes to the same `ProblemReport` on every worker, shard
/// width and front end. Classes whose weights the unweighted machine
/// cannot see (number partitioning, QUBO, Ising, CNF) finish with a
/// deterministic domain-level greedy descent seeded by the readout — the
/// standard Ising-machine post-processing step.
#[derive(Debug, Clone)]
pub struct Decoder {
    spec: ProblemSpec,
}

impl Decoder {
    /// The class this decoder maps back to.
    pub fn class(&self) -> ProblemClass {
        self.spec.class()
    }

    /// The spec this decoder was compiled from.
    pub fn spec(&self) -> &ProblemSpec {
        &self.spec
    }

    /// Decodes a full machine report: every lane decoded, then re-ranked
    /// by domain objective (the machine ranks by encoding-graph conflicts,
    /// which is not always the domain metric).
    pub fn decode_report(&self, report: &JobReport) -> ProblemReport {
        let mut ranked: Vec<DecodedLane> = report
            .ranked
            .iter()
            .map(|lane| {
                let (solution, objective, feasible) = self.decode_coloring(&lane.solution.coloring);
                DecodedLane {
                    lane: lane.lane as u32,
                    seed: lane.seed,
                    objective,
                    feasible,
                    solution,
                }
            })
            .collect();
        let sense = self.class().sense();
        ranked.sort_by(|a, b| {
            let ord = a.objective.total_cmp(&b.objective);
            match sense {
                ObjectiveSense::Minimize => ord,
                ObjectiveSense::Maximize => ord.reverse(),
            }
            .then(a.lane.cmp(&b.lane))
        });
        ProblemReport {
            class: self.class(),
            problem_fingerprint: self.spec.fingerprint(),
            graph_hash: report.graph_hash,
            seed: report.seed,
            ranked,
        }
    }

    /// Decodes one readout into `(solution, objective, feasible)`.
    ///
    /// # Panics
    ///
    /// Panics if `coloring` covers fewer nodes than the encoding graph
    /// (i.e. it is not a readout of this compiled problem).
    pub fn decode_coloring(&self, coloring: &Coloring) -> (DecodedSolution, f64, bool) {
        match &self.spec {
            ProblemSpec::Coloring { graph, .. } => {
                let conflicts = coloring.conflicts(graph);
                let colors = coloring
                    .as_slice()
                    .iter()
                    .map(|c| c.index() as u16)
                    .collect();
                (
                    DecodedSolution::Coloring(colors),
                    conflicts as f64,
                    conflicts == 0,
                )
            }
            ProblemSpec::MaxCut { graph } => {
                let sides = sides_of(coloring, graph.num_nodes());
                let cut = cut_edges(graph, &sides);
                (DecodedSolution::CutSides(sides), cut as f64, true)
            }
            ProblemSpec::MaxKCut { graph, .. } => {
                let cut = graph.num_edges() - coloring.conflicts(graph);
                let colors = coloring
                    .as_slice()
                    .iter()
                    .map(|c| c.index() as u16)
                    .collect();
                (DecodedSolution::Coloring(colors), cut as f64, true)
            }
            ProblemSpec::Mis { graph } => {
                let set = decode_independent_set(graph, coloring);
                let size = set.len();
                (DecodedSolution::Subset(set), size as f64, true)
            }
            ProblemSpec::VertexCover { graph } => {
                let set = decode_independent_set(graph, coloring);
                let mut in_set = vec![false; graph.num_nodes()];
                for &v in &set {
                    in_set[v as usize] = true;
                }
                let cover: Vec<u32> = (0..graph.num_nodes() as u32)
                    .filter(|&v| !in_set[v as usize])
                    .collect();
                let size = cover.len();
                (DecodedSolution::Subset(cover), size as f64, true)
            }
            ProblemSpec::NumberPartition { weights } => {
                let mut sides = sides_of(coloring, weights.len());
                let imbalance = repair_partition(weights, &mut sides);
                (
                    DecodedSolution::Partition(sides),
                    imbalance as f64,
                    imbalance == 0,
                )
            }
            ProblemSpec::CnfSat { cnf } => {
                let mut assignment = sides_of(coloring, cnf.num_vars());
                let unsat = repair_assignment(cnf, &mut assignment);
                (
                    DecodedSolution::Assignment(assignment),
                    unsat as f64,
                    unsat == 0,
                )
            }
            ProblemSpec::Qubo(q) => {
                let mut x = sides_of(coloring, q.n);
                let energy = descend_qubo(q, &mut x);
                (DecodedSolution::Spins(x), energy, true)
            }
            ProblemSpec::Ising(ising) => {
                let mut s = sides_of(coloring, ising.n);
                let energy = descend_ising(ising, &mut s);
                (DecodedSolution::Spins(s), energy, true)
            }
        }
    }

    /// Recomputes the domain objective of a decoded solution from scratch
    /// (the client-side analogue of `proto::verify_lane`): `Some(obj)` if
    /// the solution is well-formed for this problem, `None` otherwise.
    /// For a lane produced by [`Decoder::decode_report`] this always
    /// equals the lane's `objective`.
    pub fn objective_of(&self, solution: &DecodedSolution) -> Option<f64> {
        match (&self.spec, solution) {
            (ProblemSpec::Coloring { graph, colors }, DecodedSolution::Coloring(c)) => {
                if c.len() != graph.num_nodes() || c.iter().any(|&x| x >= *colors) {
                    return None;
                }
                let coloring = Coloring::from_indices(c.iter().map(|&x| x as usize));
                Some(coloring.conflicts(graph) as f64)
            }
            (ProblemSpec::MaxCut { graph }, DecodedSolution::CutSides(sides)) => {
                (sides.len() == graph.num_nodes()).then(|| cut_edges(graph, sides) as f64)
            }
            (ProblemSpec::MaxKCut { graph, k }, DecodedSolution::Coloring(c)) => {
                if c.len() != graph.num_nodes() || c.iter().any(|&x| x >= *k) {
                    return None;
                }
                let coloring = Coloring::from_indices(c.iter().map(|&x| x as usize));
                Some((graph.num_edges() - coloring.conflicts(graph)) as f64)
            }
            (ProblemSpec::Mis { graph }, DecodedSolution::Subset(set)) => {
                is_independent(graph, set).then_some(set.len() as f64)
            }
            (ProblemSpec::VertexCover { graph }, DecodedSolution::Subset(cover)) => {
                is_cover(graph, cover).then_some(cover.len() as f64)
            }
            (ProblemSpec::NumberPartition { weights }, DecodedSolution::Partition(sides)) => {
                (sides.len() == weights.len()).then(|| imbalance(weights, sides) as f64)
            }
            (ProblemSpec::CnfSat { cnf }, DecodedSolution::Assignment(a)) => {
                (a.len() == cnf.num_vars()).then(|| unsat_count(cnf, a) as f64)
            }
            (ProblemSpec::Qubo(q), DecodedSolution::Spins(x)) => {
                (x.len() == q.n).then(|| qubo_energy(q, x))
            }
            (ProblemSpec::Ising(ising), DecodedSolution::Spins(s)) => {
                (s.len() == ising.n).then(|| ising_energy(ising, s))
            }
            _ => None,
        }
    }
}

/// Binary side bits from a (2-color) readout: the color LSB per node,
/// truncated to the domain size.
fn sides_of(coloring: &Coloring, n: usize) -> Vec<bool> {
    assert!(
        coloring.len() >= n,
        "readout covers {} nodes, domain needs {n}",
        coloring.len()
    );
    coloring.as_slice()[..n]
        .iter()
        .map(|c| c.index() & 1 == 1)
        .collect()
}

fn cut_edges(graph: &Graph, sides: &[bool]) -> usize {
    graph
        .edges()
        .filter(|&(_, u, v)| sides[u.index()] != sides[v.index()])
        .count()
}

fn is_independent(graph: &Graph, set: &[u32]) -> bool {
    let n = graph.num_nodes();
    if set.iter().any(|&v| v as usize >= n) {
        return false;
    }
    let mut in_set = vec![false; n];
    for &v in set {
        in_set[v as usize] = true;
    }
    graph
        .edges()
        .all(|(_, u, v)| !(in_set[u.index()] && in_set[v.index()]))
}

fn is_cover(graph: &Graph, cover: &[u32]) -> bool {
    let n = graph.num_nodes();
    if cover.iter().any(|&v| v as usize >= n) {
        return false;
    }
    let mut in_cover = vec![false; n];
    for &v in cover {
        in_cover[v as usize] = true;
    }
    graph
        .edges()
        .all(|(_, u, v)| in_cover[u.index()] || in_cover[v.index()])
}

/// Independent set from a 2-color readout: take each color class as the
/// candidate set, repair it to independence (repeatedly dropping the
/// member with the most in-set neighbours; ties break toward the higher
/// index), then greedily re-add any vertex with no in-set neighbour in
/// ascending order. The larger of the two repaired sets wins (ties keep
/// the color-0 side). Deterministic.
fn decode_independent_set(graph: &Graph, coloring: &Coloring) -> Vec<u32> {
    let n = graph.num_nodes();
    let sides = sides_of(coloring, n);
    let repair = |want: bool| -> Vec<u32> {
        let mut in_set: Vec<bool> = sides.iter().map(|&s| s == want).collect();
        // In-set neighbour counts, maintained incrementally.
        let mut load: Vec<usize> = (0..n)
            .map(|v| {
                graph
                    .neighbors(NodeId::new(v))
                    .filter(|(w, _)| in_set[w.index()])
                    .count()
            })
            .collect();
        loop {
            let mut worst: Option<(usize, usize)> = None; // (load, vertex)
            for v in 0..n {
                if in_set[v] && load[v] > 0 {
                    worst = Some(match worst {
                        Some((bl, bv)) if (load[v], v) <= (bl, bv) => (bl, bv),
                        _ => (load[v], v),
                    });
                }
            }
            let Some((_, v)) = worst else { break };
            in_set[v] = false;
            for (w, _) in graph.neighbors(NodeId::new(v)) {
                load[w.index()] -= 1;
            }
        }
        for v in 0..n {
            if !in_set[v] && load[v] == 0 {
                in_set[v] = true;
                for (w, _) in graph.neighbors(NodeId::new(v)) {
                    load[w.index()] += 1;
                }
            }
        }
        (0..n as u32).filter(|&v| in_set[v as usize]).collect()
    };
    let a = repair(false);
    let b = repair(true);
    if b.len() > a.len() {
        b
    } else {
        a
    }
}

fn imbalance(weights: &[u64], sides: &[bool]) -> u64 {
    let mut diff: i128 = 0;
    for (&w, &s) in weights.iter().zip(sides) {
        if s {
            diff -= w as i128;
        } else {
            diff += w as i128;
        }
    }
    diff.unsigned_abs() as u64
}

/// Deterministic single-move descent on the partition imbalance: while
/// moving one item strictly reduces `|sum_A - sum_B|`, apply the best
/// such move (ties break toward the lowest index). Terminates because the
/// imbalance is a strictly decreasing non-negative integer.
fn repair_partition(weights: &[u64], sides: &mut [bool]) -> u64 {
    let mut diff: i128 = 0;
    for (&w, &s) in weights.iter().zip(sides.iter()) {
        if s {
            diff -= w as i128;
        } else {
            diff += w as i128;
        }
    }
    loop {
        let mut best: Option<(u128, usize, i128)> = None; // (|new diff|, item, new diff)
        for (i, (&w, &s)) in weights.iter().zip(sides.iter()).enumerate() {
            // Moving item i across flips its contribution.
            let new_diff = if s {
                diff + 2 * w as i128
            } else {
                diff - 2 * w as i128
            };
            let mag = new_diff.unsigned_abs();
            if mag < diff.unsigned_abs() && best.is_none_or(|(bm, _, _)| mag < bm) {
                best = Some((mag, i, new_diff));
            }
        }
        let Some((_, i, new_diff)) = best else { break };
        sides[i] = !sides[i];
        diff = new_diff;
    }
    diff.unsigned_abs() as u64
}

fn unsat_count(cnf: &Cnf, assignment: &[bool]) -> usize {
    cnf.clauses()
        .filter(|c| !c.iter().any(|l| l.eval(assignment[l.var().index()])))
        .count()
}

/// Deterministic GSAT-style descent on the unsatisfied-clause count:
/// best-improvement flips with sideways moves allowed (plateau escape), a
/// 1-step tabu on the variable just flipped (so equal-score two-cycles
/// cannot form), a `4·vars` flip budget, and the best assignment seen
/// returned. Pure function of the starting assignment.
fn repair_assignment(cnf: &Cnf, assignment: &mut [bool]) -> usize {
    let n = assignment.len();
    let mut unsat = unsat_count(cnf, assignment);
    let mut best_seen = assignment.to_vec();
    let mut best_unsat = unsat;
    let mut last_flip: Option<usize> = None;
    for _ in 0..n.saturating_mul(4) {
        if best_unsat == 0 {
            break;
        }
        let mut cand: Option<(usize, usize)> = None; // (new unsat, var)
        for v in 0..n {
            if last_flip == Some(v) {
                continue;
            }
            assignment[v] = !assignment[v];
            let u = unsat_count(cnf, assignment);
            assignment[v] = !assignment[v];
            if cand.is_none_or(|(cu, cv)| (u, v) < (cu, cv)) {
                cand = Some((u, v));
            }
        }
        // Downhill or sideways only; a forced uphill move means a strict
        // local minimum deeper than one flip — stop there.
        let Some((u, v)) = cand.filter(|&(u, _)| u <= unsat) else {
            break;
        };
        assignment[v] = !assignment[v];
        unsat = u;
        last_flip = Some(v);
        if unsat < best_unsat {
            best_unsat = unsat;
            best_seen.copy_from_slice(assignment);
        }
    }
    assignment.copy_from_slice(&best_seen);
    best_unsat
}

fn qubo_energy(q: &Qubo, x: &[bool]) -> f64 {
    let mut e = 0.0;
    for (i, &l) in q.linear.iter().enumerate() {
        if x[i] {
            e += l;
        }
    }
    for &(i, j, w) in &q.quadratic {
        if x[i as usize] && x[j as usize] {
            e += w;
        }
    }
    e
}

fn ising_energy(ising: &Ising, s: &[bool]) -> f64 {
    let spin = |b: bool| if b { 1.0 } else { -1.0 };
    let mut e = 0.0;
    for (i, &h) in ising.h.iter().enumerate() {
        e += h * spin(s[i]);
    }
    for &(i, j, w) in &ising.j {
        e += w * spin(s[i as usize]) * spin(s[j as usize]);
    }
    e
}

/// Deterministic 1-flip descent shared by QUBO and Ising decoding: start
/// from the better of the readout and its complement (the unweighted
/// anneal cannot see field signs, so the global flip is free), then apply
/// best-improvement flips until a local optimum, capped at `4n` flips.
fn descend_bits(bits: &mut [bool], energy: &dyn Fn(&[bool]) -> f64) -> f64 {
    let flipped: Vec<bool> = bits.iter().map(|b| !b).collect();
    let e0 = energy(bits);
    let e1 = energy(&flipped);
    let mut e = if e1 < e0 {
        bits.copy_from_slice(&flipped);
        e1
    } else {
        e0
    };
    for _ in 0..bits.len().saturating_mul(4) {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..bits.len() {
            bits[v] = !bits[v];
            let cand = energy(bits);
            bits[v] = !bits[v];
            if cand < e && best.is_none_or(|(be, _)| cand < be) {
                best = Some((cand, v));
            }
        }
        let Some((cand, v)) = best else { break };
        bits[v] = !bits[v];
        e = cand;
    }
    e
}

fn descend_qubo(q: &Qubo, x: &mut [bool]) -> f64 {
    descend_bits(x, &|bits| qubo_energy(q, bits))
}

fn descend_ising(ising: &Ising, s: &mut [bool]) -> f64 {
    descend_bits(s, &|bits| ising_energy(ising, bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;

    fn coloring(indices: &[usize]) -> Coloring {
        Coloring::from_indices(indices.iter().copied())
    }

    #[test]
    fn class_tags_roundtrip() {
        for c in ProblemClass::ALL {
            assert_eq!(ProblemClass::from_tag(c.tag()), Some(c));
            assert_eq!(ProblemClass::from_name(c.name()), Some(c));
        }
        assert_eq!(ProblemClass::from_tag(0), None);
        assert_eq!(ProblemClass::from_tag(10), None);
    }

    #[test]
    fn fingerprints_distinguish_encodings_of_the_same_graph() {
        let g = generators::cycle_graph(6);
        let specs = [
            ProblemSpec::MaxCut { graph: g.clone() },
            ProblemSpec::Mis { graph: g.clone() },
            ProblemSpec::VertexCover { graph: g.clone() },
            ProblemSpec::Coloring {
                graph: g.clone(),
                colors: 2,
            },
            ProblemSpec::MaxKCut { graph: g, k: 2 },
        ];
        // All five compile to the *same* encoding graph (and the binary
        // ones to the same config); the fingerprints must still differ.
        let fps: Vec<u64> = specs.iter().map(ProblemSpec::fingerprint).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "specs {i} and {j} collide");
            }
        }
    }

    #[test]
    fn fingerprint_is_stable() {
        let spec = ProblemSpec::NumberPartition {
            weights: vec![3, 1, 4, 1, 5],
        };
        assert_eq!(spec.fingerprint(), spec.fingerprint());
        let other = ProblemSpec::NumberPartition {
            weights: vec![3, 1, 4, 1, 6],
        };
        assert_ne!(spec.fingerprint(), other.fingerprint());
    }

    #[test]
    fn compile_forces_num_colors() {
        let base = MsropmConfig::paper_default(); // 4 colors
        let g = generators::cycle_graph(5);
        let c = ProblemSpec::MaxCut { graph: g.clone() }
            .compile(&base, 2)
            .unwrap();
        assert_eq!(c.config.num_colors, 2);
        assert_eq!(c.lanes.len(), 2);
        let c = ProblemSpec::MaxKCut { graph: g, k: 8 }
            .compile(&base, 1)
            .unwrap();
        assert_eq!(c.config.num_colors, 8);
    }

    #[test]
    fn compile_rejects_bad_palettes_and_empty_instances() {
        let base = MsropmConfig::paper_default();
        let g = generators::cycle_graph(5);
        for k in [0u16, 1, 3, 6, 257] {
            let err = ProblemSpec::MaxKCut {
                graph: g.clone(),
                k,
            }
            .compile(&base, 1)
            .unwrap_err();
            assert!(matches!(err, ProblemError::Unsupported(_)), "k={k}");
        }
        assert!(ProblemSpec::NumberPartition { weights: vec![7] }
            .compile(&base, 1)
            .is_err());
        assert!(ProblemSpec::CnfSat { cnf: Cnf::new(0) }
            .compile(&base, 1)
            .is_err());
        assert!(ProblemSpec::MaxCut { graph: g }.compile(&base, 0).is_err());
    }

    #[test]
    fn number_partition_encodes_to_complete_graph() {
        let spec = ProblemSpec::NumberPartition {
            weights: vec![1, 2, 3, 4],
        };
        let c = spec.compile(&MsropmConfig::paper_default(), 1).unwrap();
        assert_eq!(c.graph.num_nodes(), 4);
        assert_eq!(c.graph.num_edges(), 6);
    }

    #[test]
    fn cnf_encodes_to_cooccurrence_graph() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]);
        cnf.add_clause(vec![
            Lit::from_dimacs(2),
            Lit::from_dimacs(3),
            Lit::from_dimacs(4),
        ]);
        let c = ProblemSpec::CnfSat { cnf }
            .compile(&MsropmConfig::paper_default(), 1)
            .unwrap();
        assert_eq!(c.graph.num_nodes(), 4);
        assert_eq!(c.graph.num_edges(), 4); // {0,1} {1,2} {1,3} {2,3}
    }

    #[test]
    fn mis_decode_repairs_to_independence() {
        // Path 0-1-2-3-4: putting everything on one side is maximally
        // conflicted; the decoder must still emit an independent set.
        let g = generators::path_graph(5);
        let spec = ProblemSpec::Mis { graph: g.clone() };
        let d = Decoder { spec };
        let (sol, obj, feasible) = d.decode_coloring(&coloring(&[0, 0, 0, 0, 0]));
        let DecodedSolution::Subset(set) = &sol else {
            panic!("wrong solution type")
        };
        assert!(is_independent(&g, set));
        assert!(feasible);
        assert_eq!(obj, set.len() as f64);
        assert_eq!(set.len(), 3, "path_5 MIS is {{0,2,4}}");
        assert_eq!(d.objective_of(&sol), Some(obj));
    }

    #[test]
    fn vertex_cover_decode_covers_every_edge() {
        let g = generators::kings_graph(3, 3);
        let spec = ProblemSpec::VertexCover { graph: g.clone() };
        let d = Decoder { spec };
        let readout = coloring(&[0, 1, 0, 1, 0, 1, 0, 1, 0]);
        let (sol, obj, _) = d.decode_coloring(&readout);
        let DecodedSolution::Subset(cover) = &sol else {
            panic!("wrong solution type")
        };
        assert!(is_cover(&g, cover));
        assert_eq!(obj, cover.len() as f64);
        assert_eq!(d.objective_of(&sol), Some(obj));
    }

    #[test]
    fn partition_repair_reaches_local_optimum() {
        let weights = vec![8u64, 7, 6, 5, 4];
        let mut sides = vec![false; 5]; // everything on one side: imbalance 30
        let imb = repair_partition(&weights, &mut sides);
        assert_eq!(imb, 0, "8+7 = 6+5+4");
        // No single move may improve further (local optimality).
        for i in 0..weights.len() {
            let mut probe = sides.clone();
            probe[i] = !probe[i];
            assert!(imbalance(&weights, &probe) >= imb);
        }
    }

    #[test]
    fn cnf_repair_fixes_satisfiable_instances() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]);
        cnf.add_clause(vec![Lit::from_dimacs(-1), Lit::from_dimacs(3)]);
        cnf.add_clause(vec![Lit::from_dimacs(-2)]);
        let mut a = vec![false, true, false]; // violates clause 3? (-2): x2 true -> unsat
        let unsat = repair_assignment(&cnf, &mut a);
        assert_eq!(unsat, 0);
        assert!(cnf.eval(&a));
    }

    #[test]
    fn qubo_descent_finds_small_optimum() {
        // E(x) = -x0 - x1 + 2 x0 x1: optima are x = (1,0) / (0,1), E = -1.
        let q = Qubo {
            n: 2,
            linear: vec![-1.0, -1.0],
            quadratic: vec![(0, 1, 2.0)],
        };
        let mut x = vec![false, false];
        let e = descend_qubo(&q, &mut x);
        assert_eq!(e, -1.0);
        assert_ne!(x[0], x[1]);
    }

    #[test]
    fn ising_global_flip_is_considered() {
        // h = (+1, +1), no couplings: ground state is s = (-1, -1), E = -2.
        let ising = Ising {
            n: 2,
            h: vec![1.0, 1.0],
            j: vec![],
        };
        let mut s = vec![true, true]; // readout at the *maximum*
        let e = descend_ising(&ising, &mut s);
        assert_eq!(e, -2.0);
        assert_eq!(s, vec![false, false]);
    }

    #[test]
    fn from_text_parses_every_standard_format() {
        let dimacs = "c tiny\np edge 3 2\ne 1 2\ne 2 3\n";
        for class in [
            ProblemClass::Coloring,
            ProblemClass::MaxCut,
            ProblemClass::MaxKCut,
            ProblemClass::Mis,
            ProblemClass::VertexCover,
        ] {
            let spec = ProblemSpec::from_text(class, dimacs, 0).unwrap();
            assert_eq!(spec.class(), class);
            assert_eq!(spec.domain_size(), 3);
        }
        let spec =
            ProblemSpec::from_text(ProblemClass::NumberPartition, "# c\n10 20\n30\n", 0).unwrap();
        assert_eq!(spec.domain_size(), 3);
        let spec = ProblemSpec::from_text(ProblemClass::CnfSat, "p cnf 2 1\n1 -2 0\n", 0).unwrap();
        assert_eq!(spec.domain_size(), 2);
        let spec = ProblemSpec::from_text(
            ProblemClass::Qubo,
            r#"{"n": 2, "linear": [0.5, -0.5], "quadratic": [[0, 1, 1.0]]}"#,
            0,
        )
        .unwrap();
        assert_eq!(spec.domain_size(), 2);
        let spec = ProblemSpec::from_text(
            ProblemClass::Ising,
            r#"{"n": 3, "j": [[0, 1, -1.0], [1, 2, -1.0]]}"#,
            0,
        )
        .unwrap();
        assert_eq!(spec.domain_size(), 3);
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(ProblemSpec::from_text(ProblemClass::MaxCut, "not dimacs", 0).is_err());
        assert!(ProblemSpec::from_text(ProblemClass::NumberPartition, "1 two 3", 0).is_err());
        assert!(ProblemSpec::from_text(ProblemClass::CnfSat, "p cnf 2 1\n1 x 0", 0).is_err());
        assert!(ProblemSpec::from_text(ProblemClass::Qubo, "{\"n\": }", 0).is_err());
        assert!(
            ProblemSpec::from_text(ProblemClass::Ising, r#"{"n": 2, "j": [[0, 5, 1.0]]}"#, 0)
                .is_err()
        );
    }
}
