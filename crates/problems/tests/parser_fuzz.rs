//! Ingestion robustness: the standard-format parsers (DIMACS CNF via
//! [`ProblemSpec::from_text`], QUBO/Ising JSON, weights lists, and the
//! dependency-free JSON reader underneath) must never panic — not on
//! arbitrary bytes, not on truncations of valid documents, not on
//! near-miss inputs drawn from each format's own alphabet. Malformed
//! input is answered with a typed [`ProblemError`], hostile sizes with
//! `Unsupported`; a crash here would take down whoever ingests
//! untrusted files (the CLI) or bytes (the server's compile path).

use msropm_problems::{
    json, read_ising_json, read_qubo_json, read_weights, ProblemClass, ProblemSpec,
};
use proptest::prelude::*;

/// Bytes → text the way every ingestion caller does it (lossy UTF-8),
/// so the fuzz alphabet covers invalid sequences too.
fn lossy(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// A valid DIMACS CNF document to truncate and mutate.
const CNF_DOC: &str = "c tiny instance\np cnf 4 3\n1 -2 0\n2 3 4 0\n-1 -3 0\n";

/// A valid QUBO JSON document to truncate and mutate.
const QUBO_DOC: &str =
    r#"{"n": 4, "linear": [-1.0, 0.5, -0.5, 0.25], "quadratic": [[0, 1, 1.0], [1, 2, -1.0]]}"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every class's text reader survives arbitrary bytes.
    #[test]
    fn from_text_never_panics_on_arbitrary_bytes(
        class_idx in 0usize..9,
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
        k in any::<u16>(),
    ) {
        let class = ProblemClass::ALL[class_idx];
        let _ = ProblemSpec::from_text(class, &lossy(&bytes), k);
    }

    /// The JSON reader and the three format-specific readers survive
    /// arbitrary bytes.
    #[test]
    fn readers_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let text = lossy(&bytes);
        let _ = json::parse(&text);
        let _ = read_qubo_json(&text);
        let _ = read_ising_json(&text);
        let _ = read_weights(&text);
    }

    /// Truncating a valid CNF document at any byte yields an error or a
    /// (smaller) valid instance — never a panic.
    #[test]
    fn truncated_cnf_never_panics(cut in 0usize..64) {
        let cut = cut.min(CNF_DOC.len());
        let _ = ProblemSpec::from_text(ProblemClass::CnfSat, &CNF_DOC[..cut], 0);
    }

    /// Same for a valid QUBO JSON document (also fed to the Ising
    /// reader, whose field names then miss).
    #[test]
    fn truncated_qubo_json_never_panics(cut in 0usize..96) {
        let cut = cut.min(QUBO_DOC.len());
        let text = &QUBO_DOC[..cut];
        let _ = read_qubo_json(text);
        let _ = read_ising_json(text);
    }

    /// Near-miss CNF: tokens drawn from the DIMACS alphabet in random
    /// order, so headers, clause terminators, and literals appear in
    /// invalid arrangements.
    #[test]
    fn cnf_alphabet_soup_never_panics(
        picks in proptest::collection::vec(0usize..12, 0..80),
    ) {
        const TOKENS: [&str; 12] = [
            "p", "cnf", "c", "0", "1", "-1", "4", "-4", "99999999999999999999",
            "\n", " ", "e",
        ];
        let text: String = picks.iter().map(|&i| TOKENS[i]).collect();
        let _ = ProblemSpec::from_text(ProblemClass::CnfSat, &text, 0);
    }

    /// Near-miss JSON: structural tokens in random arrangements (deep
    /// nesting, unbalanced brackets, stray commas, huge numbers).
    #[test]
    fn json_alphabet_soup_never_panics(
        picks in proptest::collection::vec(0usize..14, 0..120),
    ) {
        const TOKENS: [&str; 14] = [
            "{", "}", "[", "]", ",", ":", "\"n\"", "\"linear\"", "\"quadratic\"",
            "4", "-1.5e308", "null", "true", "1e999",
        ];
        let text: String = picks.iter().map(|&i| TOKENS[i]).collect();
        let _ = json::parse(&text);
        let _ = read_qubo_json(&text);
        let _ = read_ising_json(&text);
    }

    /// Weight lists with hostile magnitudes parse or error, never panic
    /// — and anything over the documented caps is rejected.
    #[test]
    fn weights_reader_respects_caps(
        weights in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let text: String = weights
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        match read_weights(&text) {
            Ok(parsed) => {
                prop_assert_eq!(parsed.len(), weights.len());
                for w in parsed {
                    prop_assert!(w <= msropm_problems::MAX_WEIGHT);
                }
            }
            Err(_) => {
                // Rejected: at least one weight must be over the cap.
                prop_assert!(weights.iter().any(|&w| w > msropm_problems::MAX_WEIGHT));
            }
        }
    }
}
