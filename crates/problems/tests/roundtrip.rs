//! End-to-end problem roundtrips: compile a typed spec onto the
//! machine, run the compiled batch job exactly as a server worker
//! would, decode the ranked readout, and check the decoded objective
//! against an exhaustive brute-force optimum on instances small enough
//! to enumerate. Two properties per class:
//!
//! 1. **consistency** — every decoded lane's objective equals the
//!    objective recomputed from its solution by
//!    [`Decoder::objective_of`] (no decoder can report a number its
//!    own solution does not earn);
//! 2. **quality** — the best decoded objective equals the brute-force
//!    optimum (the instances are chosen so the solve + deterministic
//!    repair reliably reaches it; everything here is bit-deterministic,
//!    so a pass is a pass forever).

use msropm_core::{BatchArena, BatchJob, Msropm, MsropmConfig};
use msropm_graph::{generators, Graph};
use msropm_problems::{Cnf, Ising, Lit, ObjectiveSense, ProblemReport, ProblemSpec, Qubo};

/// Compiles, solves, and decodes `spec` exactly like the server path.
fn solve_roundtrip(spec: &ProblemSpec, replicas: usize, seed: u64) -> ProblemReport {
    let compiled = spec
        .compile(&MsropmConfig::paper_default(), replicas)
        .expect("compile");
    let machine = Msropm::new(&compiled.graph, compiled.config);
    let job = BatchJob {
        config: compiled.config,
        lanes: compiled.lanes.clone(),
        seed,
    };
    let mut arena = BatchArena::new();
    let report = job.run(&machine, &mut arena);
    let decoded = compiled.decoder.decode_report(&report);
    // Consistency: each lane's objective is earned by its solution.
    for lane in &decoded.ranked {
        assert_eq!(
            compiled.decoder.objective_of(&lane.solution),
            Some(lane.objective),
            "lane {} reports an objective its solution does not earn",
            lane.lane
        );
    }
    // Ranking: best-first in the class's own sense.
    for pair in decoded.ranked.windows(2) {
        match decoded.class.sense() {
            ObjectiveSense::Maximize => assert!(pair[0].objective >= pair[1].objective),
            ObjectiveSense::Minimize => assert!(pair[0].objective <= pair[1].objective),
        }
    }
    decoded
}

fn best_objective(spec: &ProblemSpec, replicas: usize, seed: u64) -> f64 {
    solve_roundtrip(spec, replicas, seed)
        .best()
        .expect("nonzero replicas")
        .objective
}

/// Exhaustive max-cut over all 2^n side assignments.
fn brute_max_cut(g: &Graph) -> usize {
    let n = g.num_nodes();
    assert!(n <= 20);
    (0u32..1 << n)
        .map(|mask| {
            g.edges()
                .filter(|&(_, u, v)| (mask >> u.index()) & 1 != (mask >> v.index()) & 1)
                .count()
        })
        .max()
        .unwrap()
}

/// Exhaustive max-k-cut / min-conflict coloring over all k^n colorings;
/// returns the maximum number of bichromatic edges.
fn brute_max_k_cut(g: &Graph, k: usize) -> usize {
    let n = g.num_nodes();
    assert!(k.pow(n as u32) <= 1 << 22);
    let mut best = 0;
    let mut colors = vec![0usize; n];
    loop {
        let cut = g
            .edges()
            .filter(|&(_, u, v)| colors[u.index()] != colors[v.index()])
            .count();
        best = best.max(cut);
        // Odometer increment over base-k strings.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            colors[i] += 1;
            if colors[i] < k {
                break;
            }
            colors[i] = 0;
            i += 1;
        }
    }
}

/// Exhaustive maximum independent set size.
fn brute_mis(g: &Graph) -> usize {
    let n = g.num_nodes();
    assert!(n <= 20);
    (0u32..1 << n)
        .filter(|mask| {
            g.edges()
                .all(|(_, u, v)| (mask >> u.index()) & 1 == 0 || (mask >> v.index()) & 1 == 0)
        })
        .map(|mask| mask.count_ones() as usize)
        .max()
        .unwrap()
}

/// Exhaustive minimum partition imbalance.
fn brute_partition(weights: &[u64]) -> u64 {
    let n = weights.len();
    assert!(n <= 20);
    (0u32..1 << n)
        .map(|mask| {
            let side: u64 = weights
                .iter()
                .enumerate()
                .filter(|(i, _)| (mask >> i) & 1 == 1)
                .map(|(_, &w)| w)
                .sum();
            let total: u64 = weights.iter().sum();
            side.abs_diff(total - side)
        })
        .min()
        .unwrap()
}

/// Exhaustive minimum unsatisfied-clause count.
fn brute_cnf(cnf: &Cnf) -> usize {
    let n = cnf.num_vars();
    assert!(n <= 20);
    (0u32..1 << n)
        .map(|mask| {
            let a: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            cnf.clauses()
                .filter(|clause| {
                    !clause.iter().any(|lit| {
                        let v = lit.var().index();
                        a[v] == lit.is_positive()
                    })
                })
                .count()
        })
        .min()
        .unwrap()
}

/// Exhaustive QUBO minimum energy.
fn brute_qubo(q: &Qubo) -> f64 {
    assert!(q.n <= 20);
    (0u32..1 << q.n)
        .map(|mask| {
            let mut e = 0.0;
            for (i, &l) in q.linear.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    e += l;
                }
            }
            for &(i, j, w) in &q.quadratic {
                if (mask >> i) & 1 == 1 && (mask >> j) & 1 == 1 {
                    e += w;
                }
            }
            e
        })
        .fold(f64::INFINITY, f64::min)
}

/// Exhaustive Ising minimum energy.
fn brute_ising(ising: &Ising) -> f64 {
    assert!(ising.n <= 20);
    let spin = |mask: u32, i: usize| if (mask >> i) & 1 == 1 { 1.0 } else { -1.0 };
    (0u32..1 << ising.n)
        .map(|mask| {
            let mut e = 0.0;
            for (i, &h) in ising.h.iter().enumerate() {
                e += h * spin(mask, i);
            }
            for &(i, j, w) in &ising.j {
                e += w * spin(mask, i as usize) * spin(mask, j as usize);
            }
            e
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn coloring_roundtrip_matches_brute_force() {
    // C6 is 2-colorable: the optimum is zero conflicts.
    let g = generators::cycle_graph(6);
    let spec = ProblemSpec::Coloring {
        graph: g.clone(),
        colors: 2,
    };
    let opt = g.num_edges() - brute_max_k_cut(&g, 2);
    assert_eq!(opt, 0);
    assert_eq!(best_objective(&spec, 8, 11), opt as f64);
}

#[test]
fn max_cut_roundtrip_matches_brute_force() {
    let g = generators::cycle_graph(6);
    let spec = ProblemSpec::MaxCut { graph: g.clone() };
    assert_eq!(best_objective(&spec, 8, 12), brute_max_cut(&g) as f64);
}

#[test]
fn max_k_cut_roundtrip_matches_brute_force() {
    // K4 with 4 classes: every edge can be cut.
    let g = generators::complete_graph(4);
    let spec = ProblemSpec::MaxKCut {
        graph: g.clone(),
        k: 4,
    };
    assert_eq!(best_objective(&spec, 8, 13), brute_max_k_cut(&g, 4) as f64);
}

#[test]
fn mis_roundtrip_matches_brute_force() {
    // Every maximal independent set of C5 is maximum (size 2), so the
    // decoder's repair-to-maximality guarantees the optimum.
    let g = generators::cycle_graph(5);
    let spec = ProblemSpec::Mis { graph: g.clone() };
    assert_eq!(best_objective(&spec, 4, 14), brute_mis(&g) as f64);
}

#[test]
fn vertex_cover_roundtrip_matches_brute_force() {
    // Complement duality on C5: min cover = 5 - max IS = 3.
    let g = generators::cycle_graph(5);
    let spec = ProblemSpec::VertexCover { graph: g.clone() };
    let opt = g.num_nodes() - brute_mis(&g);
    assert_eq!(best_objective(&spec, 4, 15), opt as f64);
}

#[test]
fn number_partition_roundtrip_matches_brute_force() {
    let weights = vec![8u64, 7, 6, 5, 4];
    let spec = ProblemSpec::NumberPartition {
        weights: weights.clone(),
    };
    assert_eq!(
        best_objective(&spec, 8, 16),
        brute_partition(&weights) as f64
    );
}

#[test]
fn cnf_roundtrip_matches_brute_force() {
    let mut cnf = Cnf::new(4);
    cnf.add_clause(vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]);
    cnf.add_clause(vec![Lit::from_dimacs(-1), Lit::from_dimacs(3)]);
    cnf.add_clause(vec![Lit::from_dimacs(-2), Lit::from_dimacs(-3)]);
    cnf.add_clause(vec![Lit::from_dimacs(-3), Lit::from_dimacs(4)]);
    let opt = brute_cnf(&cnf);
    assert_eq!(opt, 0, "instance chosen satisfiable");
    let spec = ProblemSpec::CnfSat { cnf };
    assert_eq!(best_objective(&spec, 8, 17), opt as f64);
}

#[test]
fn qubo_roundtrip_matches_brute_force() {
    let q = Qubo {
        n: 4,
        linear: vec![-1.0, 0.5, -0.5, 0.25],
        quadratic: vec![(0, 1, 1.0), (1, 2, -1.0), (2, 3, 0.5)],
    };
    let opt = brute_qubo(&q);
    let spec = ProblemSpec::Qubo(q);
    assert_eq!(best_objective(&spec, 8, 18), opt);
}

#[test]
fn ising_roundtrip_matches_brute_force() {
    let ising = Ising {
        n: 4,
        h: vec![0.1, -0.2, 0.3, 0.0],
        j: vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, -1.0)],
    };
    let opt = brute_ising(&ising);
    let spec = ProblemSpec::Ising(ising);
    assert_eq!(best_objective(&spec, 8, 19), opt);
}

#[test]
fn unsatisfiable_cnf_reports_its_true_minimum() {
    // x & !x via two unit clauses: exactly one clause must fail.
    let mut cnf = Cnf::new(2);
    cnf.add_clause(vec![Lit::from_dimacs(1)]);
    cnf.add_clause(vec![Lit::from_dimacs(-1)]);
    cnf.add_clause(vec![Lit::from_dimacs(2)]);
    let opt = brute_cnf(&cnf);
    assert_eq!(opt, 1);
    let spec = ProblemSpec::CnfSat { cnf };
    let report = solve_roundtrip(&spec, 4, 20);
    let best = report.best().unwrap();
    assert_eq!(best.objective, opt as f64);
    assert!(
        !best.feasible,
        "an unsatisfiable instance is never feasible"
    );
}
