//! Regenerates Fig. 5(b): stage-1 max-cut accuracy over iterations, plus
//! the §4.1 observation that stage-1 accuracy correlates positively with
//! the final 4-coloring accuracy.
//!
//! Writes `fig5b_<nodes>.csv` with both series per problem.

use msropm_bench::{paper_benchmark, paper_sides, Options, Table};
use msropm_core::{CutReference, ExperimentRunner, MsropmConfig};
use std::io::Write;

fn main() {
    let opts = Options::from_env();
    let mut summary = Table::new(vec![
        "problem",
        "best cut acc",
        "mean cut acc",
        "worst cut acc",
        "corr(stage1, final)",
    ]);

    for side in paper_sides(opts.quick) {
        let bench = paper_benchmark(side);
        let nodes = bench.graph.num_nodes();
        eprintln!(
            "fig5b: solving {nodes}-node problem ({} iterations)...",
            opts.iters
        );
        let report = ExperimentRunner::new(MsropmConfig::paper_default())
            .iterations(opts.iters)
            .base_seed(opts.seed)
            .cut_reference(CutReference::Value(bench.best_cut))
            .run(&bench.graph);

        let s1 = report.stage1_accuracies();
        let acc = report.accuracies();
        println!("\n== {nodes}-node problem: stage-1 max-cut accuracy per iteration ==");
        println!("(normalized to best-known cut = {})", report.cut_reference);
        for (i, a) in s1.iter().enumerate() {
            println!("iter {i:2}: cut {:.4}  final {:.4}", a, acc[i]);
        }
        let stats = msropm_graph::metrics::Summary::of(&s1).expect("iterations exist");
        let corr = report.stage1_final_correlation();
        println!(
            "summary: best={:.4} mean={:.4} worst={:.4}; correlation with final accuracy: {}",
            stats.max,
            stats.mean,
            stats.min,
            corr.map_or("n/a".to_string(), |r| format!("{r:+.3}"))
        );

        summary.row(vec![
            format!("{nodes}-node"),
            format!("{:.3}", stats.max),
            format!("{:.3}", stats.mean),
            format!("{:.3}", stats.min),
            corr.map_or("n/a".to_string(), |r| format!("{r:+.3}")),
        ]);

        let path = opts.out_path(&format!("fig5b_{nodes}.csv"));
        let mut file = std::fs::File::create(&path).expect("create CSV");
        writeln!(file, "iteration,stage1_accuracy,final_accuracy").expect("write CSV");
        for (i, (c, f)) in s1.iter().zip(&acc).enumerate() {
            writeln!(file, "{i},{c},{f}").expect("write CSV");
        }
        eprintln!("wrote {}", path.display());
    }

    println!("\n== Fig. 5(b) summary ==");
    println!("{}", summary.render());
    println!(
        "paper: stage-1 accuracies lie in the 0.8-1.0 band and correlate positively\n\
         with final accuracy (sec. 4.1); the correlation column reproduces that claim."
    );
}
