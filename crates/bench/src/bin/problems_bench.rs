//! Per-class solution-quality ablation for the problem compiler:
//! MIS, vertex cover, max-k-cut and number partitioning, machine vs
//! the classical greedy baseline for each class
//! ([`msropm_problems::baseline`]).
//!
//! Each row solves one instance through the exact server path —
//! `ProblemSpec::compile` → `BatchJob::run` → `Decoder::decode_report`
//! — and records both objectives as a **cost** (smaller is better for
//! every class, so one gate direction covers maximize and minimize
//! problems alike):
//!
//! - `mis_*`: vertices left *outside* the independent set;
//! - `cover_*`: cover size;
//! - `kcut_*`: edges left *uncut*;
//! - `part_*`: partition imbalance.
//!
//! The solve is bit-deterministic at fixed seeds, so the committed
//! `BENCH_problems.json` is an exact accuracy baseline: CI re-runs this
//! bin with `--baseline` and fails if `machine_cost` drifts above the
//! committed value — a solution-quality regression gate, not a timing
//! one. (`--quick` solves the first instance of each class; the gate
//! compares the row subset.)

use msropm_bench::baseline::{default_out_path, enforce_gate_cli};
use msropm_core::{BatchArena, BatchJob, Msropm, MsropmConfig};
use msropm_graph::{generators, Graph};
use msropm_problems::baseline::{
    greedy_max_k_cut, greedy_mis, greedy_partition, greedy_vertex_cover,
};
use msropm_problems::ProblemSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Fixed solve parameters: the committed baseline is exact, so these
/// must not vary between the refresh run and the CI run.
const REPLICAS: usize = 8;
const SEED: u64 = 42;

/// One measured row of the ablation.
struct Row {
    label: String,
    size: usize,
    machine_objective: f64,
    machine_cost: f64,
    greedy_cost: f64,
}

/// Solves `spec` through the server's compile → run → decode path and
/// returns the best decoded objective.
fn machine_objective(spec: &ProblemSpec) -> f64 {
    let compiled = spec
        .compile(&MsropmConfig::paper_default(), REPLICAS)
        .expect("compile");
    let machine = Msropm::new(&compiled.graph, compiled.config);
    let job = BatchJob {
        config: compiled.config,
        lanes: compiled.lanes.clone(),
        seed: SEED,
    };
    let mut arena = BatchArena::new();
    let report = compiled
        .decoder
        .decode_report(&job.run(&machine, &mut arena));
    report.best().expect("replicas > 0").objective
}

/// The graph instances shared by the graph-problem bins.
fn graph_instances(quick: bool) -> Vec<(&'static str, Graph)> {
    let mut v = vec![("kings_6x6", generators::kings_graph(6, 6))];
    if !quick {
        v.push(("grid_8x8", generators::grid_graph(8, 8)));
        v.push(("cycle_33", generators::cycle_graph(33)));
    }
    v
}

fn main() {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next(),
            "--baseline" => baseline_path = args.next(),
            other => {
                eprintln!("unknown argument {other:?}; valid: --quick --out PATH --baseline PATH");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<Row> = Vec::new();

    // ---- maximum independent set: cost = vertices left out ----
    for (name, g) in graph_instances(quick) {
        eprintln!("problems_bench: mis on {name}...");
        let n = g.num_nodes() as f64;
        let obj = machine_objective(&ProblemSpec::Mis { graph: g.clone() });
        rows.push(Row {
            label: format!("mis_{name}"),
            size: g.num_nodes(),
            machine_objective: obj,
            machine_cost: n - obj,
            greedy_cost: n - greedy_mis(&g).len() as f64,
        });
    }

    // ---- minimum vertex cover: cost = cover size ----
    for (name, g) in graph_instances(quick) {
        eprintln!("problems_bench: vertex-cover on {name}...");
        let obj = machine_objective(&ProblemSpec::VertexCover { graph: g.clone() });
        rows.push(Row {
            label: format!("cover_{name}"),
            size: g.num_nodes(),
            machine_objective: obj,
            machine_cost: obj,
            greedy_cost: greedy_vertex_cover(&g).len() as f64,
        });
    }

    // ---- max-4-cut: cost = edges left uncut ----
    for (name, g) in graph_instances(quick) {
        eprintln!("problems_bench: max-k-cut on {name}...");
        let edges = g.num_edges() as f64;
        let obj = machine_objective(&ProblemSpec::MaxKCut {
            graph: g.clone(),
            k: 4,
        });
        let (_, greedy_cut) = greedy_max_k_cut(&g, 4);
        rows.push(Row {
            label: format!("kcut_{name}"),
            size: g.num_nodes(),
            machine_objective: obj,
            machine_cost: edges - obj,
            greedy_cost: edges - greedy_cut as f64,
        });
    }

    // ---- number partitioning: cost = imbalance ----
    let sizes: &[usize] = if quick { &[16] } else { &[16, 32, 64] };
    for &n in sizes {
        eprintln!("problems_bench: number-partition n={n}...");
        let mut rng = StdRng::seed_from_u64(SEED ^ n as u64);
        let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1..1000)).collect();
        let (_, greedy_imbalance) = greedy_partition(&weights);
        let obj = machine_objective(&ProblemSpec::NumberPartition { weights });
        rows.push(Row {
            label: format!("part_n{n}"),
            size: n,
            machine_objective: obj,
            machine_cost: obj,
            greedy_cost: greedy_imbalance as f64,
        });
    }

    // ---- render ----
    println!("\n== problem-compiler accuracy vs greedy baselines ==");
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>12}",
        "instance", "size", "machine_obj", "machine_cost", "greedy_cost"
    );
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>12.1} {:>12.1} {:>12.1}",
            r.label, r.size, r.machine_objective, r.machine_cost, r.greedy_cost
        );
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"suite\": \"problems\",");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"replicas\": {REPLICAS},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"instance\": \"{}\", \"size\": {}, \"machine_objective\": {:.1}, \
             \"machine_cost\": {:.1}, \"greedy_cost\": {:.1}}}",
            r.label, r.size, r.machine_objective, r.machine_cost, r.greedy_cost
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out_path = out_path.unwrap_or_else(|| default_out_path("BENCH_problems.json"));
    std::fs::write(&out_path, &json).expect("write results JSON");
    eprintln!("wrote {out_path}");

    if let Some(baseline) = baseline_path {
        // Quality gate: a machine_cost above the committed value (beyond
        // the shared tolerance) is a solution-quality regression.
        enforce_gate_cli(&json, &baseline, &["machine_cost"]);
    }
}
