//! Regenerates Fig. 5(c): histograms of pairwise Hamming distances between
//! the solutions of the 40 iterations, showing solution diversity.
//!
//! Writes `fig5c_<nodes>.csv` with the histogram per problem.

use msropm_bench::{paper_benchmark, paper_sides, Options};
use msropm_core::{CutReference, ExperimentRunner, MsropmConfig};
use std::io::Write;

const BINS: usize = 20;

fn main() {
    let opts = Options::from_env();

    for side in paper_sides(opts.quick) {
        let bench = paper_benchmark(side);
        let nodes = bench.graph.num_nodes();
        eprintln!(
            "fig5c: solving {nodes}-node problem ({} iterations)...",
            opts.iters
        );
        let report = ExperimentRunner::new(MsropmConfig::paper_default())
            .iterations(opts.iters)
            .base_seed(opts.seed)
            .cut_reference(CutReference::Value(bench.best_cut))
            .run(&bench.graph);

        let distances = report.hamming_distances();
        let hist = report.hamming_histogram(BINS);
        let stats = msropm_graph::metrics::Summary::of(&distances).expect("pairs exist");
        println!(
            "\n== {nodes}-node problem: pairwise Hamming distances ({} pairs) ==",
            distances.len()
        );
        println!(
            "mean={:.3} std={:.3} min={:.3} max={:.3}",
            stats.mean, stats.std_dev, stats.min, stats.max
        );
        let peak = hist.iter().copied().max().unwrap_or(1).max(1);
        for (b, &count) in hist.iter().enumerate() {
            let lo = b as f64 / BINS as f64;
            let hi = (b + 1) as f64 / BINS as f64;
            let bar = "#".repeat(count * 50 / peak);
            println!("[{lo:.2},{hi:.2}) {count:4} {bar}");
        }

        let path = opts.out_path(&format!("fig5c_{nodes}.csv"));
        let mut file = std::fs::File::create(&path).expect("create CSV");
        writeln!(file, "bin_low,bin_high,count").expect("write CSV");
        for (b, &count) in hist.iter().enumerate() {
            writeln!(
                file,
                "{},{},{count}",
                b as f64 / BINS as f64,
                (b + 1) as f64 / BINS as f64
            )
            .expect("write CSV");
        }
        eprintln!("wrote {}", path.display());
    }

    println!(
        "\npaper Fig. 5(c): solutions with similar accuracy remain far apart in Hamming\n\
         distance (increasingly so at larger sizes), evidencing the probabilistic search;\n\
         the histograms above reproduce that spread."
    );
}
