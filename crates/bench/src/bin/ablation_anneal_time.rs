//! Ablation: annealing-window duration sweep.
//!
//! §4.1: the 20 ns annealing windows are "empirically determined to be
//! enough for the phases to reach \[a\] nondiscretized, contended ground
//! state". This sweep shows accuracy saturating around that duration —
//! the empirical basis the paper alludes to.

use msropm_bench::{paper_benchmark, Options, Table};
use msropm_core::{Msropm, MsropmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = Options::from_env();
    let bench = paper_benchmark(if opts.quick { 7 } else { 20 });
    let g = &bench.graph;
    let iters = opts.iters.min(16);

    let mut table = Table::new(vec!["t_anneal (ns)", "total (ns)", "best acc", "mean acc"]);
    for t_anneal in [1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
        let config = MsropmConfig {
            t_anneal,
            ..MsropmConfig::paper_default()
        };
        let mut accs = Vec::new();
        for i in 0..iters {
            let mut rng = StdRng::seed_from_u64(opts.seed + i as u64);
            let mut m = Msropm::new(g, config);
            accs.push(m.solve(&mut rng).coloring.accuracy(g));
        }
        let s = msropm_graph::metrics::Summary::of(&accs).expect("iterations exist");
        table.row(vec![
            format!("{t_anneal}"),
            format!("{}", config.total_time_ns()),
            format!("{:.3}", s.max),
            format!("{:.3}", s.mean),
        ]);
    }

    println!(
        "\n== Ablation: annealing window ({}-node) ==",
        g.num_nodes()
    );
    println!("{}", table.render());
    println!(
        "expected shape: accuracy rises steeply below ~10 ns and saturates near the\n\
         paper's empirically chosen 20 ns window; doubling beyond that buys little."
    );

    let path = opts.out_path("ablation_anneal_time.csv");
    let file = std::fs::File::create(&path).expect("create CSV");
    table.write_csv(file).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
