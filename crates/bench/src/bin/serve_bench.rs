//! Job-server throughput/latency harness with machine-readable output.
//!
//! Boots an [`msropm_server::JobServer`] and hammers its queue with a
//! mixed workload — repeat and cold graph topologies, homogeneous and
//! heterogeneous (swept) lane sets — recording jobs/sec, p50/p99
//! end-to-end latency, mean service time and the cache hit rate per
//! workload:
//!
//! - `repeat_hot`: every job targets the same board (problem cache hits
//!   after the first job) — the steady-state throughput ceiling;
//! - `mixed`: jobs rotate through a graph pool with interleaved sweep
//!   jobs, the traffic shape the cache + arena design is for;
//! - `repeat_hot_s2`/`repeat_hot_s4`: the hot workload again with each
//!   job's lanes sharded 2/4 ways across the core pool
//!   (`ShardPolicy::Fixed`). Their `shard_efficiency` column is the
//!   jobs/sec ratio against the unsharded `repeat_hot` row —
//!   informational, not gated (on a 1-core box it sits at ~1.0; the
//!   service-time columns still gate overhead regressions).
//!
//! Results are written as JSON to `BENCH_serve.json` at the repository
//! root (`--out PATH` overrides; `--quick` shrinks the job count for
//! smoke runs). `--baseline PATH` re-checks the tracked service-time
//! column against a committed baseline and exits nonzero on a >15%
//! regression (the CI perf gate; see `msropm_bench::baseline`).
//!
//! `--smoke` runs no timing at all: it boots the server three times
//! (1 worker, 4 workers, 1 worker × 4 shards), replays a small mixed
//! batch, asserts the ranked reports are bit-identical, and exits — the
//! CI server smoke stage.
//!
//! Run with: `cargo run --release -p msropm-bench --bin serve_bench`

use msropm_bench::baseline;
use msropm_core::{BatchJob, JobReport, MsropmConfig, SweepParam, SweepSpec};
use msropm_graph::{generators, Graph};
use msropm_server::{JobOutcome, JobServer, ServerConfig, ShardPolicy};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tracked "ns/op" columns of the serve suite: mean service time per job
/// and per lane. End-to-end p50/p99 latency is *recorded* but not gated —
/// it includes queueing delay, which measures the workload shape more
/// than the code.
const TRACKED: [&str; 2] = ["service_us_per_job", "service_us_per_lane"];

fn fast_config() -> MsropmConfig {
    // Paper schedule at the coarser integration step the workspace's
    // fast tests use: the service is integration-bound either way, and
    // this keeps a full bench run in seconds on one core.
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

/// One benchmark workload: a labelled job sequence over shared graphs.
struct Workload {
    name: &'static str,
    jobs: Vec<(Arc<Graph>, BatchJob)>,
}

/// `repeat_hot`: `n` identical-topology jobs (seeds differ) on one board.
fn repeat_hot(n: usize) -> Workload {
    let board = Arc::new(generators::kings_graph(7, 7));
    let jobs = (0..n)
        .map(|i| {
            (
                Arc::clone(&board),
                BatchJob::uniform(fast_config(), 8, i as u64),
            )
        })
        .collect();
    Workload {
        name: "repeat_hot",
        jobs,
    }
}

/// `mixed`: rotate a graph pool (repeat + cold topologies), every fourth
/// job a heterogeneous (K, σ) sweep.
fn mixed(n: usize) -> Workload {
    let pool: Vec<Arc<Graph>> = vec![
        Arc::new(generators::kings_graph(7, 7)),
        Arc::new(generators::kings_graph(5, 5)),
        Arc::new(generators::cycle_graph(48)),
        Arc::new(generators::grid_graph(6, 6)),
        Arc::new(generators::triangular_lattice(5, 5)),
    ];
    let sweep = SweepSpec::new()
        .grid(SweepParam::CouplingStrength, vec![0.8, 1.2])
        .grid(SweepParam::Noise, vec![0.1, 0.25]);
    let jobs = (0..n)
        .map(|i| {
            let graph = Arc::clone(&pool[i % pool.len()]);
            let job = if i % 4 == 3 {
                BatchJob::from_sweep(fast_config(), &sweep, i as u64)
            } else {
                BatchJob::uniform(fast_config(), 8, i as u64)
            };
            (graph, job)
        })
        .collect();
    Workload {
        name: "mixed",
        jobs,
    }
}

struct Row {
    workload: String,
    jobs: usize,
    lanes: usize,
    wall_s: f64,
    latencies_us: Vec<f64>,
    service_us_total: f64,
    cache_hit_rate: f64,
    /// Single-worker rows carry the gated service-time columns.
    gate_row: bool,
}

impl Row {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.wall_s
    }

    fn percentile_us(&self, p: f64) -> f64 {
        // Nearest-rank on the sorted sample (latencies_us is sorted).
        let idx = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
        self.latencies_us[idx]
    }
}

/// Runs one workload on a fresh server and collects the row. The row is
/// labelled `<name>_w<workers>` beyond one worker and `<name>_s<shards>`
/// beyond one shard; tracked service-time columns are only emitted for
/// single-worker rows (on a loaded box the multi-worker service clock
/// measures timesharing, not code — intra-job shards share the worker's
/// service clock, so sharded single-worker rows stay gated).
fn run_workload(workload: Workload, workers: usize, shards: usize) -> Row {
    let server = JobServer::start(ServerConfig {
        workers,
        queue_capacity: 32,
        cache_capacity: 16,
        shards: ShardPolicy::Fixed(shards),
        ..ServerConfig::default()
    });
    let n_jobs = workload.jobs.len();
    let lanes: usize = workload.jobs.iter().map(|(_, j)| j.lanes.len()).sum();
    let t0 = Instant::now();
    let tickets: Vec<_> = workload
        .jobs
        .into_iter()
        .map(|(g, job)| server.submit(g, job).expect("queue open"))
        .collect();
    let outcomes: Vec<JobOutcome> = tickets
        .into_iter()
        .map(|t| t.wait().expect("job completed"))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = server.cache_stats();
    server.shutdown();

    let mut latencies_us: Vec<f64> = outcomes
        .iter()
        .map(|o| o.timing.total().as_secs_f64() * 1e6)
        .collect();
    latencies_us.sort_by(f64::total_cmp);
    let service_us_total: f64 = outcomes
        .iter()
        .map(|o| o.timing.service.as_secs_f64() * 1e6)
        .sum();
    let mut label = workload.name.to_string();
    if workers > 1 {
        let _ = write!(label, "_w{workers}");
    }
    if shards > 1 {
        let _ = write!(label, "_s{shards}");
    }
    Row {
        workload: label,
        jobs: n_jobs,
        lanes,
        wall_s,
        latencies_us,
        service_us_total,
        cache_hit_rate: stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64,
        gate_row: workers == 1,
    }
}

/// `--smoke`: ranked-report determinism across 1 vs 4 workers and 1 vs
/// 4 intra-job shards, no timing.
fn smoke() {
    let runs: Vec<Vec<JobReport>> = [(1usize, 1usize), (4, 1), (1, 4)]
        .iter()
        .map(|&(workers, shards)| {
            let Workload { jobs, .. } = mixed(12);
            let server = JobServer::start(ServerConfig {
                workers,
                queue_capacity: 8,
                cache_capacity: 4, // smaller than the pool: eviction churn included
                shards: ShardPolicy::Fixed(shards),
                ..ServerConfig::default()
            });
            let tickets: Vec<_> = jobs
                .into_iter()
                .map(|(g, job)| server.submit(g, job).expect("queue open"))
                .collect();
            let reports = tickets
                .into_iter()
                .map(|t| {
                    t.wait_timeout(Duration::from_secs(60))
                        .expect("job completed within a minute")
                        .report
                })
                .collect();
            server.shutdown();
            reports
        })
        .collect();
    for other in &runs[1..] {
        for (i, (a, b)) in runs[0].iter().zip(other).enumerate() {
            assert_eq!(a.graph_hash, b.graph_hash, "job {i} graph hash");
            assert_eq!(a.ranked.len(), b.ranked.len(), "job {i} lane count");
            for (x, y) in a.ranked.iter().zip(&b.ranked) {
                assert_eq!(x.lane, y.lane, "job {i} rank order");
                assert_eq!(x.conflicts, y.conflicts, "job {i} conflicts");
                assert_eq!(x.solution.coloring, y.solution.coloring, "job {i} coloring");
                for (p, q) in x.solution.final_phases.iter().zip(&y.solution.final_phases) {
                    assert_eq!(p.to_bits(), q.to_bits(), "job {i} phases");
                }
            }
        }
    }
    println!(
        "serve smoke OK: {} mixed jobs bit-identical across 1 vs 4 workers and 1 vs 4 shards",
        runs[0].len()
    );
}

/// Default output location mirrors `bench_phase_step`: the workspace
/// root where possible, the current directory otherwise.
fn main() {
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut quick = false;
    let mut workers = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--smoke" => {
                smoke();
                return;
            }
            "--out" => out_path = Some(args.next().expect("--out requires a value")),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline requires a value")),
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers requires a number");
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; valid: --quick, --smoke, --workers N, --out PATH, --baseline PATH"
                );
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| baseline::default_out_path("BENCH_serve.json"));
    let (hot_jobs, mixed_jobs) = if quick { (12, 15) } else { (48, 60) };

    // Gate rows (1 worker: stable service clocks) first — unsharded,
    // then the intra-job shard-width sweep of the hot workload — then
    // the multi-worker scaling rows (throughput/latency only; skipped
    // when `--workers 1` would just duplicate the gate rows' labels).
    // Every row is the best of two repetitions — scheduler hiccups on a
    // shared box only ever make a run *slower*, so the per-row minimum
    // is the stable statistic a 15% gate can safely compare.
    let best = |make: &dyn Fn() -> Workload, workers: usize, shards: usize| -> Row {
        let a = run_workload(make(), workers, shards);
        let b = run_workload(make(), workers, shards);
        if a.service_us_total <= b.service_us_total {
            a
        } else {
            b
        }
    };
    let mut rows = vec![
        best(&|| repeat_hot(hot_jobs), 1, 1),
        best(&|| mixed(mixed_jobs), 1, 1),
        best(&|| repeat_hot(hot_jobs), 1, 2),
        best(&|| repeat_hot(hot_jobs), 1, 4),
    ];
    if workers > 1 {
        rows.push(best(&|| repeat_hot(hot_jobs), workers, 1));
        rows.push(best(&|| mixed(mixed_jobs), workers, 1));
    }
    // Shard scaling relative to the unsharded hot row (rows[0]): >1
    // means the shard pool bought wall-clock, ~1.0 means it broke even
    // (all it *can* do on a single core).
    let hot_jps = rows[0].jobs_per_sec();
    let shard_efficiency = |r: &Row| -> Option<f64> {
        r.workload
            .starts_with("repeat_hot_s")
            .then(|| r.jobs_per_sec() / hot_jps)
    };
    for r in &rows {
        let eff = shard_efficiency(r).map_or(String::new(), |e| format!(" | shard eff {e:.2}x"));
        println!(
            "{:<13} {:>3} jobs ({:>3} lanes) in {:>6.2}s | {:>6.2} jobs/s | latency p50 {:>9.0} us p99 {:>9.0} us | service/job {:>9.0} us | cache hits {:>4.0}%{eff}",
            r.workload,
            r.jobs,
            r.lanes,
            r.wall_s,
            r.jobs_per_sec(),
            r.percentile_us(0.50),
            r.percentile_us(0.99),
            r.service_us_total / r.jobs as f64,
            r.cache_hit_rate * 100.0,
        );
    }

    // Sanity: refuse to write (or gate on) a bogus baseline.
    for r in &rows {
        let cols = [
            r.wall_s,
            r.jobs_per_sec(),
            r.percentile_us(0.50),
            r.percentile_us(0.99),
            r.service_us_total,
        ];
        if cols.iter().any(|v| !v.is_finite() || *v <= 0.0) {
            eprintln!(
                "serve_bench: invalid timings for workload {:?} (NaN/zero) — refusing to write {out_path}",
                r.workload
            );
            std::process::exit(1);
        }
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"suite\": \"serve\",");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{name}\", \"jobs\": {jobs}, \"lanes\": {lanes}, \
             \"jobs_per_sec\": {jps:.3}, \
             \"p50_latency_us\": {p50:.1}, \"p99_latency_us\": {p99:.1}",
            name = r.workload,
            jobs = r.jobs,
            lanes = r.lanes,
            jps = r.jobs_per_sec(),
            p50 = r.percentile_us(0.50),
            p99 = r.percentile_us(0.99),
        );
        if r.gate_row {
            let _ = write!(
                json,
                ", \"service_us_per_job\": {spj:.1}, \"service_us_per_lane\": {spl:.1}",
                spj = r.service_us_total / r.jobs as f64,
                spl = r.service_us_total / r.lanes as f64,
            );
        }
        if let Some(eff) = shard_efficiency(r) {
            let _ = write!(json, ", \"shard_efficiency\": {eff:.3}");
        }
        let _ = write!(json, ", \"cache_hit_rate\": {:.4}}}", r.cache_hit_rate);
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(base_path) = baseline_path {
        baseline::enforce_gate_cli(&json, &base_path, &TRACKED);
    }
}
