//! Regenerates Fig. 3: simulated ROSC waveforms across the five control
//! windows of the multi-stage computation — at **circuit level**, using the
//! behavioural transistor models (the phase-domain equivalent is written
//! alongside for comparison).
//!
//! Outputs:
//! - `fig3_circuit.csv`: time, per-oscillator output-node voltages, and the
//!   active window label — the direct analogue of the paper's oscillograms;
//! - `fig3_phase.csv`: time, per-oscillator phases from the macromodel run
//!   of the same schedule.

use msropm_bench::Options;
use msropm_circuit::CircuitArray;
use msropm_core::{Msropm, MsropmConfig, Schedule, WindowKind};
use msropm_graph::generators;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;

fn main() {
    let opts = Options::from_env();
    // A triangle plus a pendant node: small enough to watch individual
    // waveforms, frustrated enough to exercise both stages.
    let g = generators::kings_graph(2, 2); // K4: every stage matters
    let config = MsropmConfig::paper_default();
    let schedule = Schedule::from_config(&config);

    // ---------- Circuit-level run ----------
    eprintln!("fig3: circuit-level transient of the 60 ns schedule...");
    let mut array = CircuitArray::builder(&g)
        .coupling_strength(0.18)
        .shil_injection(6e-4)
        .build();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut state = array.random_state(&mut rng);
    let dt = 2e-3; // 2 ps
    let path = opts.out_path("fig3_circuit.csv");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create CSV"));
    writeln!(
        file,
        "t_ns,window,stage,{}",
        (0..g.num_nodes())
            .map(|i| format!("vout{i}"))
            .collect::<Vec<_>>()
            .join(",")
    )
    .expect("write CSV");

    // Stage-1 groups are latched at the first lock window's readout.
    let mut groups = vec![0usize; g.num_nodes()];
    for window in schedule.windows() {
        let label = match window.kind {
            WindowKind::Randomize => "randomize",
            WindowKind::Anneal => "anneal",
            WindowKind::Lock => "lock",
        };
        // Control lines per Fig. 3.
        match window.kind {
            WindowKind::Randomize => {
                array.set_all_edges_enabled(false);
                array.set_shil_enabled(false);
            }
            WindowKind::Anneal => {
                // Intra-group couplings only.
                for (e, u, v) in g.edges() {
                    array.set_edge_enabled(e.index(), groups[u.index()] == groups[v.index()]);
                }
                array.set_shil_enabled(false);
            }
            WindowKind::Lock => {
                for (i, g) in groups.iter().enumerate() {
                    array.set_shil_select(i, g % 2);
                }
                array.set_shil_enabled(true);
            }
        }
        let mut sample_count = 0usize;
        let stage = window.stage;
        array.run_observed(&mut state, window.t_start, window.duration, dt, |t, y| {
            // Decimate to 10 ps for the CSV.
            if sample_count.is_multiple_of(5) {
                let volts: Vec<String> = (0..g.num_nodes())
                    .map(|i| format!("{:.4}", y[array.output_node(i)]))
                    .collect();
                writeln!(file, "{t:.4},{label},{stage},{}", volts.join(",")).expect("write CSV");
            }
            sample_count += 1;
        });
        // Latch groups after each lock window using the relative phase to
        // oscillator 0 (a simple readout sufficient for the figure).
        if window.kind == WindowKind::Lock {
            let mut new_groups = groups.clone();
            for i in 0..g.num_nodes() {
                let d = msropm_circuit::readout::measure_relative_phase(
                    &array,
                    &state,
                    i,
                    0,
                    window.t_end(),
                    4.0,
                    1e-3,
                )
                .unwrap_or(0.0);
                let bit = usize::from((0.5..1.5).contains(&(d / std::f64::consts::PI)));
                new_groups[i] = groups[i] * 2 + bit;
            }
            groups = new_groups;
        }
    }
    drop(file);
    eprintln!("wrote {}", path.display());

    // ---------- Phase-domain run of the same schedule ----------
    eprintln!("fig3: phase-macromodel run of the same schedule...");
    let mut machine = Msropm::new(&g, config);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let path = opts.out_path("fig3_phase.csv");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create CSV"));
    writeln!(
        file,
        "t_ns,window,stage,{}",
        (0..g.num_nodes())
            .map(|i| format!("theta{i}"))
            .collect::<Vec<_>>()
            .join(",")
    )
    .expect("write CSV");
    let mut count = 0usize;
    let solution = machine.solve_observed(&mut rng, |t, w, phases| {
        if count.is_multiple_of(20) {
            let label = match w.kind {
                WindowKind::Randomize => "randomize",
                WindowKind::Anneal => "anneal",
                WindowKind::Lock => "lock",
            };
            let row: Vec<String> = phases
                .iter()
                .map(|p| format!("{:.4}", p.rem_euclid(std::f64::consts::TAU)))
                .collect();
            writeln!(file, "{t:.4},{label},{},{}", w.stage, row.join(",")).expect("write CSV");
        }
        count += 1;
    });
    drop(file);
    eprintln!("wrote {}", path.display());

    // ---------- Square-wave expansion of the phase run ----------
    // The paper's oscillograms show the rail-to-rail ROSC outputs; the
    // macromodel's phases expand back into square waves at 1.3 GHz.
    eprintln!("fig3: synthesizing square waveforms from the phase run...");
    let f0 = 1.3;
    let mut machine2 = Msropm::new(&g, config);
    let mut rng2 = StdRng::seed_from_u64(opts.seed);
    let path = opts.out_path("fig3_square.csv");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).expect("create CSV"));
    writeln!(
        file,
        "t_ns,window,stage,{}",
        (0..g.num_nodes())
            .map(|i| format!("sq{i}"))
            .collect::<Vec<_>>()
            .join(",")
    )
    .expect("write CSV");
    let mut count2 = 0usize;
    machine2.solve_observed(&mut rng2, |t, w, phases| {
        if count2.is_multiple_of(2) {
            let label = match w.kind {
                WindowKind::Randomize => "randomize",
                WindowKind::Anneal => "anneal",
                WindowKind::Lock => "lock",
            };
            let row: Vec<String> = phases
                .iter()
                .map(|&p| format!("{}", msropm_osc::waveform::square_wave(t, f0, p)))
                .collect();
            writeln!(file, "{t:.4},{label},{},{}", w.stage, row.join(",")).expect("write CSV");
        }
        count2 += 1;
    });
    drop(file);
    eprintln!("wrote {}", path.display());

    println!("== Fig. 3 regeneration ==");
    println!("windows (paper panels a-e):");
    for w in schedule.windows() {
        let ctl = w.controls();
        println!(
            "  [{:5.1}, {:5.1}] ns  stage {}  {:?}  couplings={} shil={}",
            w.t_start,
            w.t_end(),
            w.stage,
            w.kind,
            if ctl.couplings_on { "ON" } else { "off" },
            if ctl.shil_on { "ON" } else { "off" },
        );
    }
    println!(
        "\ncircuit CSV: rail-to-rail output voltages of {} ROSCs at 10 ps resolution;",
        g.num_nodes()
    );
    println!("phase CSV: macromodel phases under the identical control schedule.");
    println!(
        "phase-model coloring of the demo graph: accuracy {:.3}",
        solution.coloring.accuracy(&g)
    );
    let _ = rng.gen::<u64>();
}
