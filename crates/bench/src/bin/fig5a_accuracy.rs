//! Regenerates Fig. 5(a): 4-coloring accuracy over 40 iterations for the
//! 49-, 400- and 1024-node King's-graph problems.
//!
//! Prints the per-iteration accuracy series and summary statistics, and
//! writes `fig5a_<nodes>.csv` per problem.

use msropm_bench::{paper_benchmark, paper_sides, Options, Table};
use msropm_core::{CutReference, ExperimentRunner, MsropmConfig};

fn main() {
    let opts = Options::from_env();
    let mut summary = Table::new(vec![
        "problem",
        "iters",
        "best",
        "mean",
        "worst",
        "paper best",
        "paper mean*",
    ]);
    // Paper reference points (sec. 4.1): 49-node best 1.00 / avg 0.98;
    // 400-node best 0.98; 1024-node best 0.97 (mean read off Fig. 5a).
    let paper: &[(usize, f64, f64)] = &[(7, 1.00, 0.98), (20, 0.98, 0.97), (32, 0.97, 0.96)];

    for side in paper_sides(opts.quick) {
        let bench = paper_benchmark(side);
        let nodes = bench.graph.num_nodes();
        eprintln!(
            "fig5a: solving {nodes}-node problem ({} iterations)...",
            opts.iters
        );
        let report =
            ExperimentRunner::new(MsropmConfig::paper_default().with_backend(opts.backend))
                .iterations(opts.iters)
                .base_seed(opts.seed)
                .cut_reference(CutReference::Value(bench.best_cut))
                .run(&bench.graph);

        let acc = report.accuracies();
        println!("\n== {nodes}-node problem: 4-coloring accuracy per iteration ==");
        for (i, a) in acc.iter().enumerate() {
            println!("iter {i:2}: {a:.4}");
        }
        let s = report.accuracy_summary();
        println!(
            "summary: best={:.4} mean={:.4} worst={:.4} std={:.4}",
            report.best_accuracy(),
            s.mean,
            s.min,
            s.std_dev
        );

        let (p_best, p_mean) = paper
            .iter()
            .find(|(ps, _, _)| *ps == side)
            .map(|&(_, b, m)| (b, m))
            .unwrap_or((f64::NAN, f64::NAN));
        summary.row(vec![
            format!("{nodes}-node"),
            opts.iters.to_string(),
            format!("{:.3}", report.best_accuracy()),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.min),
            format!("{p_best:.2}"),
            format!("{p_mean:.2}"),
        ]);

        let path = opts.out_path(&format!("fig5a_{nodes}.csv"));
        let file = std::fs::File::create(&path).expect("create CSV");
        msropm_bench::tables::write_series_csv(file, "iteration", "accuracy", &acc)
            .expect("write CSV");
        eprintln!("wrote {}", path.display());
    }

    println!("\n== Fig. 5(a) summary (measured vs paper) ==");
    println!("{}", summary.render());
    println!("* paper mean values are read off Fig. 5(a); the paper states 98% avg for 49-node.");
}
