//! Regenerates Table 2: comparison of the MSROPM against prior solvers.
//!
//! Rows whose architectures run on this substrate are **measured**:
//!
//! - *This work*: MSROPM, 4-coloring, 2116-spin King's graph;
//! - *ref \[14\] class*: single-stage 3-SHIL ROPM, 3-coloring, ~2000-spin
//!   triangular lattice (3-chromatic, the natural 3-coloring benchmark);
//! - *ref \[8\] class*: single-stage ROIM, max-cut, ~1968-spin King's graph;
//! - software baselines: simulated annealing and tabu search on the
//!   2116-node 4-coloring for solution-quality context.
//!
//! Optical machines (refs \[13\], \[11\], \[9\] hardware numbers) cannot run
//! here; their rows reproduce the paper's published constants and are
//! marked `literature`.

use msropm_bench::{paper_benchmark, Options, Table};
use msropm_core::baselines::{Ropm3, SimulatedAnnealingColoring, TabuMaxCut};
use msropm_core::{CutReference, ExperimentRunner, MsropmConfig};
use msropm_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = Options::from_env();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut table = Table::new(vec![
        "Solver",
        "Type",
        "COP",
        "Spins",
        "Power",
        "Time/iter",
        "Accuracy (worst-best)",
        "Source",
    ]);

    // ---- This work: MSROPM on the largest King's graph ----
    let side = if opts.quick { 7 } else { 46 };
    let bench = paper_benchmark(side);
    let nodes = bench.graph.num_nodes();
    eprintln!("table2: MSROPM on {nodes}-node 4-coloring...");
    let report = ExperimentRunner::new(MsropmConfig::paper_default())
        .iterations(opts.iters)
        .base_seed(opts.seed)
        .cut_reference(CutReference::Value(bench.best_cut))
        .run(&bench.graph);
    let power = msropm_core::power::paper_power_estimate(&bench.graph);
    let s = report.accuracy_summary();
    table.row(vec![
        "MSROPM (this work)".into(),
        "Potts".into(),
        "4-coloring".into(),
        nodes.to_string(),
        format!("{:.1} mW", power.total_mw()),
        "60 ns".into(),
        format!("{:.2}-{:.2}", s.min, report.best_accuracy()),
        "measured".into(),
    ]);

    // ---- ref [14] class: single-stage 3-SHIL ROPM, 3-coloring ----
    let tri_side = if opts.quick { 7 } else { 45 };
    let tri = generators::triangular_lattice(tri_side, tri_side);
    eprintln!(
        "table2: 3-SHIL ROPM on {}-node 3-coloring...",
        tri.num_nodes()
    );
    let ropm3 = Ropm3::new(MsropmConfig::paper_default());
    let mut accs: Vec<f64> = Vec::new();
    for _ in 0..opts.iters {
        let c = ropm3.solve(&tri, &mut rng);
        accs.push(c.accuracy(&tri));
    }
    let ropm_stats = msropm_graph::metrics::Summary::of(&accs).expect("iterations exist");
    let ropm_power = msropm_core::power::paper_power_estimate(&tri);
    table.row(vec![
        "3-SHIL ROPM (ref [14] class)".into(),
        "Potts".into(),
        "3-coloring".into(),
        tri.num_nodes().to_string(),
        format!("{:.1} mW", ropm_power.total_mw()),
        "30 ns".into(),
        format!("{:.2}-{:.2}", ropm_stats.min, ropm_stats.max),
        "measured".into(),
    ]);

    // ---- ref [8] class: single-stage ROIM, max-cut ----
    let roim_side = if opts.quick { 7 } else { 44 }; // 44^2=1936 ~ 1968 spins of [8]
    let kb = paper_benchmark(roim_side);
    eprintln!(
        "table2: ROIM max-cut on {}-node King's graph...",
        kb.graph.num_nodes()
    );
    let roim_cfg = MsropmConfig::paper_default().with_num_colors(2);
    let roim_report = ExperimentRunner::new(roim_cfg)
        .iterations(opts.iters)
        .base_seed(opts.seed ^ 0xA5)
        .cut_reference(CutReference::Value(kb.best_cut))
        .run(&kb.graph);
    let roim_s1 = roim_report.stage1_accuracies();
    let roim_stats = msropm_graph::metrics::Summary::of(&roim_s1).expect("iterations exist");
    let roim_power = msropm_core::power::paper_power_estimate(&kb.graph);
    table.row(vec![
        "ROIM (ref [8] class)".into(),
        "Ising".into(),
        "Max-Cut".into(),
        kb.graph.num_nodes().to_string(),
        format!("{:.1} mW", roim_power.total_mw()),
        "30 ns".into(),
        format!("{:.2}-{:.2}", roim_stats.min, roim_stats.max),
        "measured".into(),
    ]);

    // ---- software baselines on the headline problem ----
    eprintln!("table2: simulated annealing baseline...");
    let sa = SimulatedAnnealingColoring::new(4, if opts.quick { 100 } else { 300 });
    let t0 = std::time::Instant::now();
    let sa_best = (0..5)
        .map(|_| sa.solve(&bench.graph, &mut rng).accuracy(&bench.graph))
        .fold(0.0f64, f64::max);
    let sa_time = t0.elapsed() / 5;
    table.row(vec![
        "Simulated annealing".into(),
        "software".into(),
        "4-coloring".into(),
        nodes.to_string(),
        "n/a (CPU)".into(),
        format!("{:.1} ms", sa_time.as_secs_f64() * 1e3),
        format!("best {sa_best:.2}"),
        "measured".into(),
    ]);

    eprintln!("table2: tabu search baseline (stage-1 reference)...");
    let tabu = TabuMaxCut::new(20 * bench.graph.num_nodes(), 10);
    let t0 = std::time::Instant::now();
    let tabu_cut = tabu.solve(&bench.graph, &mut rng).cut_value(&bench.graph);
    let tabu_time = t0.elapsed();
    table.row(vec![
        "Tabu search (max-cut)".into(),
        "software".into(),
        "Max-Cut".into(),
        nodes.to_string(),
        "n/a (CPU)".into(),
        format!("{:.1} ms", tabu_time.as_secs_f64() * 1e3),
        format!("best {:.2}", tabu_cut as f64 / bench.best_cut as f64),
        "measured".into(),
    ]);

    // ---- literature rows (published constants; not runnable here) ----
    for (solver, ty, cop, spins, pow, time, acc) in [
        (
            "CPM [13]",
            "Potts",
            "4-coloring",
            "47",
            "DNR",
            "500 us",
            "50% success rate",
        ),
        (
            "Optical CPM [11]",
            "Potts",
            "3-coloring",
            "30",
            "DNR",
            "DNR",
            "0.50-1.00",
        ),
        (
            "RTWOIM [9]",
            "Ising",
            "Max-Cut",
            "2750",
            "17.48 W",
            "10 ns",
            "0.91-0.94",
        ),
        (
            "ROIM [8] (published)",
            "Ising",
            "Max-Cut",
            "1968",
            "42 mW",
            "50 ns",
            "0.89-1.00",
        ),
        (
            "ROPM [14] (published)",
            "Potts",
            "3-coloring",
            "2000",
            "1.548 W",
            "11 ns",
            "0.83-0.92",
        ),
    ] {
        table.row(vec![
            solver.into(),
            ty.into(),
            cop.into(),
            spins.into(),
            pow.into(),
            time.into(),
            acc.into(),
            "literature".into(),
        ]);
    }

    println!("\n== Table 2: comparison with prior work ==");
    println!("{}", table.render());
    println!(
        "Key reproduction claim: the multi-stage 2-SHIL machine reaches a higher\n\
         accuracy band than the single-stage 3-SHIL ROPM despite the larger search\n\
         space (4^N vs 3^N) -- compare the MSROPM and 3-SHIL ROPM rows above."
    );

    let path = opts.out_path("table2.csv");
    let file = std::fs::File::create(&path).expect("create CSV");
    table.write_csv(file).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
