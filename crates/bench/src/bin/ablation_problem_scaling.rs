//! Ablation: scaling with problem size.
//!
//! §4.1: *"Computation cycles of the MSROPM are allocated predetermined
//! durations regardless of the problem size"* (near-constant machine time
//! through natural parallelization) while *"power consumption ... scal\[es\]
//! linearly with increasing problem sizes."* This sweep quantifies both,
//! plus the TTS(99%) figure of merit for reaching 97%-quality solutions.

use msropm_bench::{paper_benchmark, Options, Table};
use msropm_core::analysis::{success_probability, time_to_solution_ns};
use msropm_core::{CutReference, ExperimentRunner, MsropmConfig};

fn main() {
    let opts = Options::from_env();
    let sides: Vec<usize> = if opts.quick {
        vec![5, 7, 10]
    } else {
        vec![5, 7, 10, 14, 20, 28, 38, 46]
    };

    let mut table = Table::new(vec![
        "nodes",
        "edges",
        "machine ns/iter",
        "best acc",
        "mean acc",
        "P(acc>=0.97)",
        "TTS99(0.97)",
        "power (mW)",
        "wall ms/iter",
    ]);

    for side in sides {
        let bench = paper_benchmark(side);
        let g = &bench.graph;
        eprintln!("scaling: {}-node problem...", g.num_nodes());
        let wall0 = std::time::Instant::now();
        let report = ExperimentRunner::new(MsropmConfig::paper_default())
            .iterations(opts.iters)
            .base_seed(opts.seed)
            .cut_reference(CutReference::Value(bench.best_cut))
            .run(g);
        let wall_per_iter = wall0.elapsed().as_secs_f64() * 1e3 / opts.iters as f64;

        let p97 = success_probability(&report, 0.97);
        let tts = time_to_solution_ns(&report, 0.97, 0.99);
        let s = report.accuracy_summary();
        let power = msropm_core::power::paper_power_estimate(g);
        table.row(vec![
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            format!("{:.0}", report.time_per_iteration_ns),
            format!("{:.3}", report.best_accuracy()),
            format!("{:.3}", s.mean),
            format!("{p97:.2}"),
            tts.map_or("inf".to_string(), |t| format!("{t:.0} ns")),
            format!("{:.1}", power.total_mw()),
            format!("{wall_per_iter:.1}"),
        ]);
    }

    println!("\n== Scaling with problem size ==");
    println!("{}", table.render());
    println!(
        "claims quantified: machine time is a constant 60 ns per iteration at every\n\
         size (column 3) — the oscillator array parallelizes naturally — while model\n\
         power grows linearly (column 8) and only the simulator's wall-clock cost\n\
         grows with size (column 9)."
    );

    let path = opts.out_path("ablation_problem_scaling.csv");
    let file = std::fs::File::create(&path).expect("create CSV");
    table.write_csv(file).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
