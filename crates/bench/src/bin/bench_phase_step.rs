//! Phase-step / anneal throughput harness with machine-readable output.
//!
//! Runs the hot-loop suite on the paper's King's graphs (n = 49 … 2116):
//!
//! - `naive_eval`: one RHS evaluation via the reference CSR walk
//!   (`PhaseNetwork::eval`);
//! - `kernel_eval`: one RHS evaluation via the compiled
//!   [`CoupledKernel`] (the acceptance metric is `kernel_speedup =
//!   naive/kernel` on the 2116-node board);
//! - `fx_eval`: one RHS evaluation via the fixed-point kernel
//!   ([`FxBatchKernel`] at one replica): i32 binary-turn phases,
//!   Q-format weights, table-driven sine (the acceptance metric is
//!   `fx_speedup = kernel/fx` ≥ 1.3 on the 2116-node board);
//! - `batch_eval`: one 40-replica SoA RHS sweep ([`BatchKernel`]),
//!   reported per replica;
//! - `sweep_eval`: the same 40-replica RHS with **heterogeneous**
//!   per-lane (K, σ) control tables (`BatchKernel::from_lanes`) — the
//!   per-lane sweep must run at homogeneous-batch speed;
//! - `anneal_naive` / `anneal_kernel` / `anneal_batch`: a 1 ns
//!   Euler–Maruyama annealing window (100 steps) through the same three
//!   paths (batch reported per replica).
//!
//! Results are written as JSON to `BENCH_phase_step.json` at the
//! repository root (override with `--out PATH`; `--quick` restricts to
//! the 49-node board) so successive PRs can track the perf trajectory.
//!
//! Run with: `cargo run --release -p msropm-bench --bin bench_phase_step`

use msropm_graph::generators;
use msropm_ode::system::OdeSystem;
use msropm_osc::batch::{BatchIntegrator, BatchKernel};
use msropm_osc::fxkernel::{phase_to_turns, FxBatchKernel};
use msropm_osc::kernel::KernelIntegrator;
use msropm_osc::PhaseNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

const BATCH_REPLICAS: usize = 40; // the paper's iteration count

/// Times `f` (already warmed up by `warmup` calls) and returns seconds
/// per call, sampling until ~`budget_s` of wall clock is spent.
fn time_per_call(mut f: impl FnMut(), warmup: usize, budget_s: f64) -> f64 {
    for _ in 0..warmup {
        f();
    }
    // Estimate per-call cost, then run batches.
    let t = Instant::now();
    f();
    let est = t.elapsed().as_secs_f64().max(1e-9);
    let calls = ((budget_s / est) as usize).clamp(1, 1_000_000);
    let t = Instant::now();
    for _ in 0..calls {
        f();
    }
    t.elapsed().as_secs_f64() / calls as f64
}

struct Row {
    side: usize,
    nodes: usize,
    edges: usize,
    naive_eval_ns: f64,
    kernel_eval_ns: f64,
    kernel_speedup: f64,
    /// One fixed-point RHS evaluation (integer phases, LUT sine).
    fx_eval_ns: f64,
    /// Compiled f64 kernel vs fixed-point kernel: `kernel/fx`.
    fx_speedup: f64,
    batch_eval_ns_per_replica: f64,
    batch_speedup: f64,
    /// Heterogeneous 40-lane (K, σ) sweep RHS, per replica — the
    /// per-lane control tables must not slow the SoA sweep.
    sweep_eval_ns_per_replica: f64,
    anneal_naive_us: f64,
    anneal_kernel_us: f64,
    anneal_batch_us_per_replica: f64,
}

fn bench_side(side: usize, eval_budget: f64, anneal_budget: f64) -> Row {
    let g = generators::kings_graph_square(side);
    let n = g.num_nodes();
    let net = PhaseNetwork::builder(&g)
        .coupling_strength(1.0)
        .noise(0.18)
        .build();
    let mut rng = StdRng::seed_from_u64(1);
    let phases = net.random_phases(&mut rng);
    let mut dydt = vec![0.0; n];

    // --- RHS evaluation: naive CSR walk vs compiled kernel. ---
    let naive_eval_ns = 1e9
        * time_per_call(
            || {
                net.eval(0.0, std::hint::black_box(&phases), &mut dydt);
                std::hint::black_box(&dydt);
            },
            3,
            eval_budget,
        );
    let kernel = net.compile_kernel();
    let mut scratch = Vec::new();
    let kernel_eval_ns = 1e9
        * time_per_call(
            || {
                kernel.drift_into(std::hint::black_box(&phases), &mut dydt, &mut scratch);
                std::hint::black_box(&dydt);
            },
            3,
            eval_budget,
        );

    // --- Fixed-point RHS: same topology, i32 turns + LUT sine. ---
    let fx = FxBatchKernel::new(&net, 1, 0.01);
    let phases_q: Vec<i32> = phases.iter().map(|&p| phase_to_turns(p)).collect();
    let mut dq = vec![0i32; n];
    let mut scratch_q = Vec::new();
    let fx_eval_ns = 1e9
        * time_per_call(
            || {
                fx.drift_into(std::hint::black_box(&phases_q), &mut dq, &mut scratch_q);
                std::hint::black_box(&dq);
            },
            3,
            eval_budget,
        );

    // --- 40-replica SoA sweep. ---
    let batch = BatchKernel::new(&net, BATCH_REPLICAS);
    let mut rng_b = StdRng::seed_from_u64(2);
    let phases_b: Vec<f64> = (0..n * BATCH_REPLICAS)
        .map(|_| rng_b.gen::<f64>() * std::f64::consts::TAU)
        .collect();
    let mut dydt_b = vec![0.0; n * BATCH_REPLICAS];
    let mut scratch_b = Vec::new();
    let batch_eval_ns_per_replica =
        1e9 * time_per_call(
            || {
                batch.drift_into(std::hint::black_box(&phases_b), &mut dydt_b, &mut scratch_b);
                std::hint::black_box(&dydt_b);
            },
            3,
            eval_budget,
        ) / BATCH_REPLICAS as f64;

    // --- Heterogeneous lane sweep: same SoA RHS, per-lane (K, σ). ---
    let lane_nets: Vec<PhaseNetwork> = (0..BATCH_REPLICAS)
        .map(|r| {
            let mut lane = net.clone();
            lane.set_coupling_strength(0.5 + 0.04 * r as f64);
            lane.set_noise(0.05 + 0.01 * r as f64);
            lane
        })
        .collect();
    let sweep = BatchKernel::from_lanes(&lane_nets);
    let mut dydt_s = vec![0.0; n * BATCH_REPLICAS];
    let mut scratch_s = Vec::new();
    let sweep_eval_ns_per_replica =
        1e9 * time_per_call(
            || {
                sweep.drift_into(std::hint::black_box(&phases_b), &mut dydt_s, &mut scratch_s);
                std::hint::black_box(&dydt_s);
            },
            3,
            eval_budget,
        ) / BATCH_REPLICAS as f64;

    // --- 1 ns anneal window (100 Euler–Maruyama steps). ---
    let mut rng_a = StdRng::seed_from_u64(3);
    let mut ph_a = net.random_phases(&mut rng_a);
    let net_mut = net.clone();
    let anneal_naive_us = 1e6
        * time_per_call(
            || {
                // The pre-kernel shape: fresh stepper, drift via CSR walk.
                use msropm_ode::sde::{EulerMaruyama, SdeStepper};
                EulerMaruyama::new().integrate(&net_mut, &mut ph_a, 0.0, 1.0, 0.01, &mut rng_a);
                std::hint::black_box(&ph_a);
            },
            1,
            anneal_budget,
        );
    let mut integrator = KernelIntegrator::new();
    let mut rng_k = StdRng::seed_from_u64(3);
    let mut ph_k = net_mut.random_phases(&mut rng_k);
    let anneal_kernel_us = 1e6
        * time_per_call(
            || {
                integrator.integrate(&kernel, &mut ph_k, 0.0, 1.0, 0.01, &mut rng_k);
                std::hint::black_box(&ph_k);
            },
            1,
            anneal_budget,
        );
    let mut batch_integrator = BatchIntegrator::new();
    let mut rngs: Vec<StdRng> = (0..BATCH_REPLICAS)
        .map(|r| StdRng::seed_from_u64(r as u64))
        .collect();
    let mut ph_batch = phases_b.clone();
    let anneal_batch_us_per_replica =
        1e6 * time_per_call(
            || {
                batch_integrator.integrate(&batch, &mut ph_batch, 0.0, 1.0, 0.01, &mut rngs);
                std::hint::black_box(&ph_batch);
            },
            1,
            anneal_budget,
        ) / BATCH_REPLICAS as f64;

    Row {
        side,
        nodes: n,
        edges: g.num_edges(),
        naive_eval_ns,
        kernel_eval_ns,
        kernel_speedup: naive_eval_ns / kernel_eval_ns,
        fx_eval_ns,
        fx_speedup: kernel_eval_ns / fx_eval_ns,
        batch_eval_ns_per_replica,
        batch_speedup: naive_eval_ns / batch_eval_ns_per_replica,
        sweep_eval_ns_per_replica,
        anneal_naive_us,
        anneal_kernel_us,
        anneal_batch_us_per_replica,
    }
}

/// Column-wise best of two measurement passes. Scheduler hiccups on a
/// shared box only ever make a sample *slower*, so the per-column
/// minimum is the stable statistic the 15% CI gate can safely compare
/// (derived ratios are recomputed from the kept minima).
fn best_of(a: Row, b: Row) -> Row {
    let mut r = Row {
        naive_eval_ns: a.naive_eval_ns.min(b.naive_eval_ns),
        kernel_eval_ns: a.kernel_eval_ns.min(b.kernel_eval_ns),
        fx_eval_ns: a.fx_eval_ns.min(b.fx_eval_ns),
        batch_eval_ns_per_replica: a.batch_eval_ns_per_replica.min(b.batch_eval_ns_per_replica),
        sweep_eval_ns_per_replica: a.sweep_eval_ns_per_replica.min(b.sweep_eval_ns_per_replica),
        anneal_naive_us: a.anneal_naive_us.min(b.anneal_naive_us),
        anneal_kernel_us: a.anneal_kernel_us.min(b.anneal_kernel_us),
        anneal_batch_us_per_replica: a
            .anneal_batch_us_per_replica
            .min(b.anneal_batch_us_per_replica),
        ..a
    };
    r.kernel_speedup = r.naive_eval_ns / r.kernel_eval_ns;
    r.fx_speedup = r.kernel_eval_ns / r.fx_eval_ns;
    r.batch_speedup = r.naive_eval_ns / r.batch_eval_ns_per_replica;
    r
}

/// Tracked ns/op columns for the `--baseline` CI perf gate: the compiled
/// hot paths. `naive_eval_ns` is the uncompiled reference (tracked too —
/// it regressing usually means the whole build got slower).
const TRACKED: [&str; 7] = [
    "naive_eval_ns",
    "kernel_eval_ns",
    "fx_eval_ns",
    "batch_eval_ns_per_replica",
    "sweep_eval_ns_per_replica",
    "anneal_1ns_kernel_us",
    "anneal_1ns_batch_us_per_replica",
];

/// Every timing a row carries, for output validation.
fn row_timings(r: &Row) -> [(&'static str, f64); 10] {
    [
        ("naive_eval_ns", r.naive_eval_ns),
        ("kernel_eval_ns", r.kernel_eval_ns),
        ("fx_eval_ns", r.fx_eval_ns),
        ("fx_speedup", r.fx_speedup),
        ("batch_eval_ns_per_replica", r.batch_eval_ns_per_replica),
        ("sweep_eval_ns_per_replica", r.sweep_eval_ns_per_replica),
        ("anneal_1ns_naive_us", r.anneal_naive_us),
        ("anneal_1ns_kernel_us", r.anneal_kernel_us),
        (
            "anneal_1ns_batch_us_per_replica",
            r.anneal_batch_us_per_replica,
        ),
        ("kernel_speedup", r.kernel_speedup),
    ]
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(args.next().expect("--out requires a value")),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline requires a value")),
            other => {
                eprintln!(
                    "unknown argument {other:?}; valid: --quick, --out PATH, --baseline PATH"
                );
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path
        .unwrap_or_else(|| msropm_bench::baseline::default_out_path("BENCH_phase_step.json"));
    let sides: &[usize] = if quick { &[7] } else { &[7, 20, 32, 46] };
    let (eval_budget, anneal_budget) = if quick { (0.05, 0.1) } else { (0.3, 0.6) };

    let mut rows = Vec::new();
    for &side in sides {
        let row = best_of(
            bench_side(side, eval_budget, anneal_budget),
            bench_side(side, eval_budget, anneal_budget),
        );
        println!(
            "kings {:>2}x{:<2} n={:<5} m={:<6} eval naive {:>9.1} ns | kernel {:>9.1} ns ({:>4.2}x) | fx {:>9.1} ns ({:>4.2}x) | batch/rep {:>9.1} ns ({:>4.2}x) | sweep/rep {:>9.1} ns | anneal1ns naive {:>8.1} us | kernel {:>8.1} us | batch/rep {:>8.1} us",
            row.side, row.side, row.nodes, row.edges,
            row.naive_eval_ns, row.kernel_eval_ns, row.kernel_speedup,
            row.fx_eval_ns, row.fx_speedup,
            row.batch_eval_ns_per_replica, row.batch_speedup,
            row.sweep_eval_ns_per_replica,
            row.anneal_naive_us, row.anneal_kernel_us, row.anneal_batch_us_per_replica,
        );
        rows.push(row);
    }

    // Validate before writing: a NaN/zero timing (broken clock, elided
    // benchmark loop, bad refactor of this harness) must fail the run,
    // not silently become the committed baseline future PRs are gated
    // against.
    let mut bogus = Vec::new();
    for r in &rows {
        for (name, v) in row_timings(r) {
            if !v.is_finite() || v <= 0.0 {
                bogus.push(format!("kings_{0}x{0} {name} = {v}", r.side));
            }
        }
    }
    if !bogus.is_empty() {
        eprintln!(
            "bench_phase_step: invalid timings — refusing to write {out_path}:\n  {}",
            bogus.join("\n  ")
        );
        std::process::exit(1);
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"suite\": \"phase_step\",");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"batch_replicas\": {BATCH_REPLICAS},");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"graph\": \"kings_{side}x{side}\", \"nodes\": {nodes}, \"edges\": {edges}, \
             \"naive_eval_ns\": {naive:.2}, \"kernel_eval_ns\": {kern:.2}, \
             \"kernel_speedup\": {speed:.3}, \
             \"fx_eval_ns\": {fx:.2}, \"fx_speedup\": {fxs:.3}, \
             \"batch_eval_ns_per_replica\": {batch:.2}, \"batch_speedup\": {bspeed:.3}, \
             \"sweep_eval_ns_per_replica\": {sweep:.2}, \
             \"anneal_1ns_naive_us\": {an:.2}, \"anneal_1ns_kernel_us\": {ak:.2}, \
             \"anneal_1ns_batch_us_per_replica\": {ab:.2}}}",
            side = r.side,
            nodes = r.nodes,
            edges = r.edges,
            naive = r.naive_eval_ns,
            kern = r.kernel_eval_ns,
            speed = r.kernel_speedup,
            fx = r.fx_eval_ns,
            fxs = r.fx_speedup,
            batch = r.batch_eval_ns_per_replica,
            bspeed = r.batch_speedup,
            sweep = r.sweep_eval_ns_per_replica,
            an = r.anneal_naive_us,
            ak = r.anneal_kernel_us,
            ab = r.anneal_batch_us_per_replica,
        );
        json.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));
    println!("wrote {out_path}");

    // Acceptance floor: the fixed-point RHS must beat the compiled f64
    // kernel by >= 1.3x on the paper's largest board. Checked whenever
    // the 46x46 row was measured (i.e. every non-`--quick` run); the
    // ratio is taken within one process, so machine load cancels out.
    const FX_SPEEDUP_FLOOR: f64 = 1.3;
    if let Some(big) = rows.iter().find(|r| r.side == 46) {
        if big.fx_speedup < FX_SPEEDUP_FLOOR {
            eprintln!(
                "bench_phase_step: fx_speedup {:.3} at kings_46x46 is below the {FX_SPEEDUP_FLOOR} floor",
                big.fx_speedup
            );
            std::process::exit(1);
        }
    }

    // CI perf-regression gate: compare the run just taken against a
    // committed baseline; any tracked column >15% slower exits nonzero.
    // (`--quick` runs compare only the rows they measured.)
    if let Some(base_path) = baseline_path {
        msropm_bench::baseline::enforce_gate_cli(&json, &base_path, &TRACKED);
    }
}
