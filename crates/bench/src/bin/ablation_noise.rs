//! Ablation: annealing phase-noise sweep.
//!
//! Phase noise (jitter) is the machine's only source of stochastic
//! exploration: with none, the deterministic gradient flow gets stuck in
//! the nearest local minimum; with too much, the couplings cannot hold an
//! ordering. This sweep quantifies both failure directions, plus the
//! solution-diversity effect noise has on the Fig. 5(c) Hamming spread.

use msropm_bench::{paper_benchmark, Options, Table};
use msropm_core::{CutReference, ExperimentRunner, MsropmConfig};

fn main() {
    let opts = Options::from_env();
    let bench = paper_benchmark(if opts.quick { 7 } else { 20 });
    let g = &bench.graph;
    let iters = opts.iters.min(16);

    let mut table = Table::new(vec![
        "noise (rad/sqrt-ns)",
        "best acc",
        "mean acc",
        "mean Hamming dist",
    ]);
    for sigma in [0.0, 0.05, 0.1, 0.18, 0.3, 0.6, 1.2, 2.4] {
        let config = MsropmConfig::paper_default().with_noise(sigma);
        let report = ExperimentRunner::new(config)
            .iterations(iters)
            .base_seed(opts.seed)
            .cut_reference(CutReference::Value(bench.best_cut))
            .run(g);
        let s = report.accuracy_summary();
        let ham =
            msropm_graph::metrics::Summary::of(&report.hamming_distances()).map_or(0.0, |h| h.mean);
        table.row(vec![
            format!("{sigma}"),
            format!("{:.3}", report.best_accuracy()),
            format!("{:.3}", s.mean),
            format!("{:.3}", ham),
        ]);
    }

    println!("\n== Ablation: annealing noise ({}-node) ==", g.num_nodes());
    println!("{}", table.render());
    println!(
        "expected shape: a moderate noise level maximizes accuracy (escaping local\n\
         minima without destroying ordering); Hamming spread grows with noise,\n\
         connecting this knob to the Fig. 5(c) diversity observation."
    );

    let path = opts.out_path("ablation_noise.csv");
    let file = std::fs::File::create(&path).expect("create CSV");
    table.write_csv(file).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
