//! Regenerates Table 1: search space, iterations, average power and top
//! accuracy for the 49/400/1024/2116-node problems.
//!
//! Power comes from the Table-1-calibrated CV²f model (the physics-based
//! estimate is printed alongside for transparency); accuracy is measured.

use msropm_bench::{paper_benchmark, Options, Table};
use msropm_core::metrics::search_space_label;
use msropm_core::{CutReference, ExperimentRunner, MsropmConfig};

fn main() {
    let opts = Options::from_env();
    let sides: Vec<usize> = if opts.quick {
        vec![7, 20]
    } else {
        vec![7, 20, 32, 46]
    };
    let paper_rows: &[(usize, f64, f64)] = &[
        (7, 9.4, 1.00),
        (20, 60.3, 0.98),
        (32, 146.1, 0.97),
        (46, 283.4, 0.97),
    ];

    let mut table = Table::new(vec![
        "Graph size",
        "Search space",
        "Iterations",
        "Avg power (model)",
        "Top accuracy",
        "Paper power",
        "Paper top acc",
    ]);
    let mut physics = Table::new(vec![
        "Graph size",
        "physics-model power",
        "calibrated-model power",
    ]);

    for &side in &sides {
        let bench = paper_benchmark(side);
        let nodes = bench.graph.num_nodes();
        eprintln!(
            "table1: solving {nodes}-node problem ({} iterations)...",
            opts.iters
        );
        let report = ExperimentRunner::new(MsropmConfig::paper_default())
            .iterations(opts.iters)
            .base_seed(opts.seed)
            .cut_reference(CutReference::Value(bench.best_cut))
            .run(&bench.graph);

        let power = msropm_core::power::paper_power_estimate(&bench.graph);
        let physics_power = msropm_core::power::physics_power_estimate(&bench.graph);
        let (paper_power, paper_acc) = paper_rows
            .iter()
            .find(|(s, _, _)| *s == side)
            .map(|&(_, p, a)| (p, a))
            .expect("paper row exists");

        table.row(vec![
            format!("{nodes}-node"),
            search_space_label(4, nodes),
            opts.iters.to_string(),
            format!("{:.1} mW", power.total_mw()),
            format!("{:.2}", report.best_accuracy()),
            format!("{paper_power} mW"),
            format!("{paper_acc:.2}"),
        ]);
        physics.row(vec![
            format!("{nodes}-node"),
            format!("{:.1} mW", physics_power.total_mw()),
            format!("{:.1} mW", power.total_mw()),
        ]);
    }

    println!("\n== Table 1: statistics from the simulations ==");
    println!("{}", table.render());
    println!("Time to solution: 60 ns per iteration (5+20+5 + 5+20+5 ns schedule, sec. 4.1).");
    println!("\n== Power-model cross-check ==");
    println!("{}", physics.render());
    println!(
        "The calibrated model is the affine CV^2f fit to the paper's four data points\n\
         (residual < 6%); the physics model derives per-node/per-edge power from the\n\
         behavioural 65nm-like technology without calibration."
    );

    let path = opts.out_path("table1.csv");
    let file = std::fs::File::create(&path).expect("create CSV");
    table.write_csv(file).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
