//! Ablation: coupling-strength sweep.
//!
//! §2.3: *"Although stronger couplings allow the system to converge to a
//! ground state faster, coupling strength above a certain threshold can
//! halt the oscillation of the ROSCs."* The halt is a circuit-level
//! failure; this binary demonstrates **both** levels:
//!
//! 1. phase model: accuracy vs coupling strength (too weak = no ordering
//!    within the 20 ns window; the sweet spot in between);
//! 2. circuit model: a two-ring array with increasing B2B strength, until
//!    oscillation stops (measured period disappears).

use msropm_bench::{paper_benchmark, Options, Table};
use msropm_circuit::CircuitArray;
use msropm_core::{Msropm, MsropmConfig};
use msropm_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = Options::from_env();
    let bench = paper_benchmark(if opts.quick { 7 } else { 20 });
    let g = &bench.graph;
    let iters = opts.iters.min(16);

    let mut table = Table::new(vec!["Kc (rad/ns)", "best acc", "mean acc"]);
    for kc in [0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let config = MsropmConfig::paper_default().with_coupling_strength(kc);
        let mut accs = Vec::new();
        for i in 0..iters {
            let mut rng = StdRng::seed_from_u64(opts.seed + i as u64);
            let mut m = Msropm::new(g, config);
            accs.push(m.solve(&mut rng).coloring.accuracy(g));
        }
        let s = msropm_graph::metrics::Summary::of(&accs).expect("iterations exist");
        table.row(vec![
            format!("{kc}"),
            format!("{:.3}", s.max),
            format!("{:.3}", s.mean),
        ]);
    }
    println!(
        "\n== Ablation: coupling strength, phase model ({}-node) ==",
        g.num_nodes()
    );
    println!("{}", table.render());

    // Circuit-level oscillation-halt demonstration: count VDD/2 crossings
    // and measure the residual swing after the array settles.
    println!("\n== Circuit level: B2B strength vs oscillation (2 coupled rings) ==");
    let mut halt = Table::new(vec![
        "B2B strength (x unit inv)",
        "status",
        "f (GHz)",
        "swing (V)",
    ]);
    let g2 = generators::path_graph(2);
    for strength in [0.05, 0.15, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let array = CircuitArray::builder(&g2)
            .coupling_strength(strength)
            .build();
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut state = array.random_state(&mut rng);
        array.run(&mut state, 0.0, 20.0, 1e-3);
        let node = array.output_node(0);
        let window = 8.0;
        let mut prev = state[node];
        let mut crossings = 0usize;
        let mut vmin = f64::INFINITY;
        let mut vmax = f64::NEG_INFINITY;
        let mut probe = state.clone();
        array.run_observed(&mut probe, 20.0, window, 1e-3, |_, y| {
            if prev < 0.5 && y[node] >= 0.5 {
                crossings += 1;
            }
            prev = y[node];
            vmin = vmin.min(y[node]);
            vmax = vmax.max(y[node]);
        });
        let swing = vmax - vmin;
        if crossings >= 2 && swing > 0.5 {
            halt.row(vec![
                format!("{strength}"),
                "oscillating".into(),
                format!("{:.2}", crossings as f64 / window),
                format!("{swing:.2}"),
            ]);
        } else {
            halt.row(vec![
                format!("{strength}"),
                "HALTED".into(),
                "-".into(),
                format!("{swing:.2}"),
            ]);
        }
    }
    println!("{}", halt.render());
    println!(
        "paper sec. 2.3: beyond a threshold the B2B latch overpowers the ring\n\
         inverters and both rings freeze — the rows marked HALTED (the latch\n\
         engages near 8x unit-inverter strength in this behavioural model)."
    );

    let path = opts.out_path("ablation_coupling.csv");
    let file = std::fs::File::create(&path).expect("create CSV");
    table.write_csv(file).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
