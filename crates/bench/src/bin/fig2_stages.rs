//! Regenerates Fig. 2: a walkthrough of divide-and-color on a small
//! 4-colorable graph, printing the phase targets and partitions at each
//! stage exactly as the figure panels (a)-(e) narrate.

use msropm_bench::Options;
use msropm_core::{Msropm, MsropmConfig, MsropmSolution};
use msropm_graph::generators;
use msropm_osc::shil::{stage_shil_phase, Shil};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn deg(rad: f64) -> f64 {
    rad.to_degrees()
}

fn main() {
    let opts = Options::from_env();
    // Fig. 2(a): a small 4-colorable planar graph. A 4x4 King's graph is
    // planar-drawable at this size and 4-chromatic (every 2x2 block is K4).
    let g = generators::kings_graph(4, 4);
    println!("== Fig. 2(a): the 4-colorable input graph ==");
    println!(
        "{} nodes, {} edges (4x4 King's graph; chromatic number 4)\n",
        g.num_nodes(),
        g.num_edges()
    );

    println!("== Fig. 2(b)/(d): SHIL phase targets ==");
    for (name, group, total) in [("SHIL 1", 0usize, 2usize), ("SHIL 2", 1, 2)] {
        let shil = Shil::order2(stage_shil_phase(group, total), 1.0);
        let phases: Vec<String> = shil
            .stable_phases()
            .iter()
            .map(|p| format!("{:.0}°", deg(*p)))
            .collect();
        println!(
            "{name}: injected phase {:.0}° -> stable oscillator phases {{{}}}",
            deg(shil.phase()),
            phases.join(", ")
        );
    }
    println!();

    let mut machine = Msropm::new(&g, MsropmConfig::paper_default());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    // Fig. 2 shows a successful run; retry seeds until the coloring is
    // proper (the machine is probabilistic, the figure is illustrative).
    let mut solution = machine.solve(&mut rng);
    let mut attempts = 1;
    while !solution.coloring.is_proper(&g) && attempts < 20 {
        solution = machine.solve(&mut rng);
        attempts += 1;
    }

    println!("== Fig. 2(c): stage 1 — 2-partitioning by max-cut under SHIL 1 ==");
    let s1 = &solution.stages[0];
    let side_a: Vec<usize> = (0..g.num_nodes())
        .filter(|&i| !s1.partition.side(msropm_graph::NodeId::new(i)))
        .collect();
    let side_b: Vec<usize> = (0..g.num_nodes())
        .filter(|&i| s1.partition.side(msropm_graph::NodeId::new(i)))
        .collect();
    println!("partition 0° set  (SHIL 1 next): {side_a:?}");
    println!("partition 180° set (SHIL 2 next): {side_b:?}");
    println!(
        "stage-1 cut: {}/{} edges; couplings crossing the cut are gated off (P_EN)\n",
        s1.cut_value, s1.active_edges
    );

    println!("== Fig. 2(e): stage 2 — simultaneous max-cuts give 4 phases ==");
    let board = |i: usize| (i / 4, i % 4);
    let mut grid = vec![vec![' '; 4]; 4];
    for (node, color) in solution.coloring.iter() {
        let (r, c) = board(node.index());
        grid[r][c] = char::from(b'0' + color.index() as u8);
    }
    println!("final colors on the board (color = phase):");
    for row in &grid {
        println!("  {}", row.iter().collect::<String>());
    }
    println!();
    for color in 0..4 {
        println!(
            "color {color} <-> phase {:>4.0}°",
            deg(MsropmSolution::target_phase(color, 4))
        );
    }
    println!(
        "\n4-coloring accuracy: {:.3} (proper: {}; {attempts} attempt(s))",
        solution.coloring.accuracy(&g),
        solution.coloring.is_proper(&g)
    );
}
