//! Ablation: SHIL injection-strength sweep.
//!
//! §2.3: *"SHIL injection below a certain level of strength cannot
//! discretize the ROSC phases and deforms the ROSC waveforms when \[it\]
//! exceeds a certain level of strength."* In the phase model the analogue
//! of waveform deformation is premature quenching: a SHIL much stronger
//! than the couplings freezes phases before the couplings can order them.
//! This sweep measures discretization quality (max lock error) and final
//! accuracy across strengths.

use msropm_bench::{paper_benchmark, Options, Table};
use msropm_core::{Msropm, MsropmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = Options::from_env();
    let bench = paper_benchmark(if opts.quick { 7 } else { 20 });
    let g = &bench.graph;
    let iters = opts.iters.min(16);

    let mut table = Table::new(vec![
        "Ks (rad/ns)",
        "best acc",
        "mean acc",
        "mean lock error (rad)",
    ]);
    for ks in [0.0, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0] {
        let config = MsropmConfig::paper_default().with_shil_strength(ks);
        let mut accs = Vec::new();
        let mut lock_errs = Vec::new();
        for i in 0..iters {
            let mut rng = StdRng::seed_from_u64(opts.seed + i as u64);
            let mut m = Msropm::new(g, config);
            let sol = m.solve(&mut rng);
            accs.push(sol.coloring.accuracy(g));
            lock_errs.push(
                sol.stages
                    .iter()
                    .map(|s| s.max_lock_error)
                    .fold(0.0f64, f64::max),
            );
        }
        let s = msropm_graph::metrics::Summary::of(&accs).expect("iterations exist");
        let le = msropm_graph::metrics::Summary::of(&lock_errs).expect("iterations exist");
        table.row(vec![
            format!("{ks}"),
            format!("{:.3}", s.max),
            format!("{:.3}", s.mean),
            format!("{:.3}", le.mean),
        ]);
    }

    println!(
        "\n== Ablation: SHIL strength (problem: {}-node) ==",
        g.num_nodes()
    );
    println!("{}", table.render());
    println!(
        "expected shape (paper sec. 2.3): weak SHIL fails to discretize (large lock\n\
         error, unreliable readout); strong SHIL locks phases before coupling-driven\n\
         ordering completes, costing accuracy. The working region sits in between."
    );

    let path = opts.out_path("ablation_shil_strength.csv");
    let file = std::fs::File::create(&path).expect("create CSV");
    table.write_csv(file).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
