//! Socket-path throughput/latency harness: the `serve_bench` workloads
//! driven through a real loopback TCP connection (framing, tenant
//! accounting and report streaming included).
//!
//! Boots an in-process front end ([`msropm_server::wire::WireServer`]
//! or [`msropm_server::reactor::ReactorServer`]) on an ephemeral
//! `127.0.0.1` port and hammers it with the library client:
//!
//! - `wire_hot`: repeat-topology jobs on one board (problem-cache
//!   steady state) — the socket-path throughput ceiling (threaded
//!   front end);
//! - `wire_mixed`: a rotating graph pool with interleaved sweep jobs —
//!   the traffic shape the cache + arena design is for;
//! - `wire_reactor_hot` / `wire_reactor_mixed`: the same workloads
//!   through the epoll reactor front end — front-end parity on the
//!   service columns;
//! - `wire_mux_hot`: the hot workload with every submit written
//!   back-to-back on one socket before any reply is read (the
//!   multiplexed client mode) against the reactor;
//! - `wire_reactor_idle256`: the hot workload on the reactor while 256
//!   completely idle connections stay attached — the
//!   idle-connection-scaling row (the threaded front end would burn
//!   512 threads here; the reactor serves them with none);
//! - `http_hot` / `http_mixed`: the hot/mixed shapes through the
//!   HTTP/1.1 + JSON gateway front end — submits pipelined on one
//!   keep-alive connection, reports collected by polling
//!   `GET /v1/jobs/{id}` (the gateway has no streaming push, so the
//!   poll is part of what the row measures). Sweep jobs can't travel
//!   over `POST /v1/jobs`, so the mixed row rotates graphs only;
//! - `wire_codec`: pure encode→decode round-trips of representative
//!   submit/report frames (no socket) — the framing cost in isolation.
//!
//! Recorded per workload: jobs/sec and client-observed p50/p99 latency
//! (submit → report frame received, so framing + streaming are *in* the
//! number), plus the server-reported mean service time. Only the
//! 1-worker service columns and the codec columns are gated — wall
//! latency measures the workload shape more than the code.
//!
//! Rows are **merged** into `BENCH_serve.json`: when the output file
//! already exists and parses, its non-`wire*`/`http*` rows (the
//! in-process `serve_bench` rows) are preserved and this bench's rows
//! replaced —
//! so `scripts/refresh_baselines.sh` can regenerate the whole file with
//! `serve_bench` followed by `wire_bench`. `--baseline PATH` gates the
//! tracked columns against a committed baseline (>15% regression exits
//! nonzero; see `msropm_bench::baseline`).
//!
//! Run with: `cargo run --release -p msropm-bench --bin wire_bench`

use msropm_bench::baseline;
use msropm_client::http::HttpClient;
use msropm_client::{Client, SubmitOptions};
use msropm_core::{BatchJob, MsropmConfig, SweepParam, SweepSpec};
use msropm_graph::{generators, Graph};
use msropm_problems::json::Json;
use msropm_server::proto::{
    decode_request, decode_response, encode_request, encode_response, FrontendKind, Request,
    Response, WireLane, WireReport,
};
use msropm_server::{Frontend, ServerConfig, ShardPolicy};
use std::fmt::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gated columns: server-side service time (1-worker rows) and the
/// codec round-trips. Client-observed wall latency is recorded, not
/// gated.
const TRACKED: [&str; 4] = [
    "service_us_per_job",
    "service_us_per_lane",
    "submit_roundtrip_ns",
    "report_roundtrip_ns",
];

fn fast_config() -> MsropmConfig {
    MsropmConfig {
        dt: 0.02,
        ..MsropmConfig::paper_default()
    }
}

struct Workload {
    jobs: Vec<(Arc<Graph>, BatchJob)>,
}

fn wire_hot(n: usize) -> Workload {
    let board = Arc::new(generators::kings_graph(7, 7));
    let jobs = (0..n)
        .map(|i| {
            (
                Arc::clone(&board),
                BatchJob::uniform(fast_config(), 8, i as u64),
            )
        })
        .collect();
    Workload { jobs }
}

fn wire_mixed(n: usize) -> Workload {
    let pool: Vec<Arc<Graph>> = vec![
        Arc::new(generators::kings_graph(7, 7)),
        Arc::new(generators::kings_graph(5, 5)),
        Arc::new(generators::cycle_graph(48)),
        Arc::new(generators::grid_graph(6, 6)),
        Arc::new(generators::triangular_lattice(5, 5)),
    ];
    let sweep = SweepSpec::new()
        .grid(SweepParam::CouplingStrength, vec![0.8, 1.2])
        .grid(SweepParam::Noise, vec![0.1, 0.25]);
    let jobs = (0..n)
        .map(|i| {
            let graph = Arc::clone(&pool[i % pool.len()]);
            let job = if i % 4 == 3 {
                BatchJob::from_sweep(fast_config(), &sweep, i as u64)
            } else {
                BatchJob::uniform(fast_config(), 8, i as u64)
            };
            (graph, job)
        })
        .collect();
    Workload { jobs }
}

struct Row {
    workload: String,
    jobs: usize,
    lanes: usize,
    /// Idle connections attached for the whole run (0 for most rows).
    idle_conns: usize,
    wall_s: f64,
    /// Client-observed submit→report latencies (sorted), microseconds.
    latencies_us: Vec<f64>,
    /// Server-reported total service time, microseconds.
    service_us_total: f64,
    gate_row: bool,
}

impl Row {
    fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.wall_s
    }

    fn percentile_us(&self, p: f64) -> f64 {
        let idx = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
        self.latencies_us[idx]
    }
}

/// How one bench run drives the server.
#[derive(Clone, Copy)]
struct RunOpts {
    /// Which front end serves the run.
    frontend: FrontendKind,
    /// Write every submit before reading any reply (multiplexed client
    /// mode) instead of one blocking round-trip per submit.
    mux: bool,
    /// Completely idle extra connections held open through the run.
    idle_conns: usize,
}

impl RunOpts {
    const THREADS: RunOpts = RunOpts {
        frontend: FrontendKind::Threads,
        mux: false,
        idle_conns: 0,
    };
    const REACTOR: RunOpts = RunOpts {
        frontend: FrontendKind::Reactor,
        mux: false,
        idle_conns: 0,
    };
    const MUX: RunOpts = RunOpts {
        frontend: FrontendKind::Reactor,
        mux: true,
        idle_conns: 0,
    };
    const IDLE: RunOpts = RunOpts {
        frontend: FrontendKind::Reactor,
        mux: false,
        idle_conns: 256,
    };
    const HTTP: RunOpts = RunOpts {
        frontend: FrontendKind::Http,
        mux: false,
        idle_conns: 0,
    };
}

/// Binds whichever front end the run options ask for on an ephemeral
/// loopback port, through the one server-boot API.
fn bind_frontend(workers: usize, opts: RunOpts) -> Frontend {
    ServerConfig::builder()
        .frontend(opts.frontend)
        .workers(workers)
        .queue_capacity(32)
        .cache_capacity(16)
        // The wire suite measures transport, not the solver: pin one
        // shard so its rows stay comparable to old baselines.
        .shards(ShardPolicy::Fixed(1))
        .max_inflight_jobs(512)
        .max_queued_lanes(1 << 16)
        .max_connections(opts.idle_conns + 8)
        .bind("127.0.0.1:0")
        .expect("bind frontend")
}

/// Runs one workload against a fresh front end over loopback TCP.
/// Jobs are pipelined: all submits first, then reports collected in
/// submit order (the client stashes out-of-order arrivals). With
/// `opts.mux`, submits are additionally written back to back before
/// any reply is read.
fn run_workload(workload: Workload, workers: usize, label: String, opts: RunOpts) -> Row {
    let server = bind_frontend(workers, opts);
    // The idle fleet attaches before any traffic and stays for the
    // whole run; the row measures serving *with* the fleet resident.
    let idle_fleet: Vec<TcpStream> = (0..opts.idle_conns)
        .map(|_| TcpStream::connect(server.local_addr()).expect("idle connect"))
        .collect();
    let mut client = Client::connect(server.local_addr(), "bench").expect("connect");
    if !idle_fleet.is_empty() {
        // Wait until every idle connection is registered server-side so
        // the measurement below really runs against a full house.
        for _ in 0..600 {
            let stats = client.stats().expect("stats");
            if stats.connections >= (opts.idle_conns + 1) as u64 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
    let n_jobs = workload.jobs.len();
    let lanes: usize = workload.jobs.iter().map(|(_, j)| j.lanes.len()).sum();
    let t0 = Instant::now();
    let submitted: Vec<(u64, Instant)> = if opts.mux {
        let at: Vec<Instant> = workload
            .jobs
            .iter()
            .map(|(g, job)| {
                client
                    .submit_with(g, job, &SubmitOptions::new().nowait())
                    .expect("mux submit");
                Instant::now()
            })
            .collect();
        at.into_iter()
            .map(|at| (client.recv_submitted().expect("mux reply"), at))
            .collect()
    } else {
        workload
            .jobs
            .iter()
            .map(|(g, job)| {
                let id = client
                    .submit_with(g, job, &SubmitOptions::new())
                    .expect("submit admitted")
                    .expect("blocking submit yields a job id");
                (id, Instant::now())
            })
            .collect()
    };
    let mut latencies_us = Vec::with_capacity(n_jobs);
    let mut service_us_total = 0.0f64;
    for (id, at) in &submitted {
        let report = client.wait_report(*id).expect("report streamed");
        latencies_us.push(at.elapsed().as_secs_f64() * 1e6);
        service_us_total += report.service_us as f64;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    drop(idle_fleet);
    server.shutdown();
    latencies_us.sort_by(f64::total_cmp);
    Row {
        workload: label,
        jobs: n_jobs,
        lanes,
        idle_conns: opts.idle_conns,
        wall_s,
        latencies_us,
        service_us_total,
        gate_row: workers == 1,
    }
}

/// A `POST /v1/jobs` body stream for the HTTP gateway rows: the same
/// graph/lane shapes as the wire workloads, pre-rendered to JSON.
struct HttpWorkload {
    bodies: Vec<String>,
    lanes: usize,
}

fn graph_body(g: &Graph) -> String {
    let mut edges = String::new();
    for (i, (_, u, v)) in g.edges().enumerate() {
        if i > 0 {
            edges.push(',');
        }
        let _ = write!(edges, "[{},{}]", u.index(), v.index());
    }
    format!("{{\"nodes\":{},\"edges\":[{edges}]}}", g.num_nodes())
}

fn http_job_body(graph: &str, replicas: usize, seed: u64) -> String {
    format!(
        "{{\"tenant\":\"bench\",\"graph\":{graph},\"replicas\":{replicas},\
         \"seed\":{seed},\"config\":{{\"dt\":0.02}}}}"
    )
}

/// The [`wire_hot`] shape over JSON: repeat topology, uniform lanes.
fn http_hot(n: usize) -> HttpWorkload {
    let board = graph_body(&generators::kings_graph(7, 7));
    HttpWorkload {
        bodies: (0..n).map(|i| http_job_body(&board, 8, i as u64)).collect(),
        lanes: n * 8,
    }
}

/// The [`wire_mixed`] graph rotation over JSON. Sweep jobs have no
/// `POST /v1/jobs` encoding, so every job is uniform.
fn http_mixed(n: usize) -> HttpWorkload {
    let pool: Vec<String> = [
        generators::kings_graph(7, 7),
        generators::kings_graph(5, 5),
        generators::cycle_graph(48),
        generators::grid_graph(6, 6),
        generators::triangular_lattice(5, 5),
    ]
    .iter()
    .map(graph_body)
    .collect();
    HttpWorkload {
        bodies: (0..n)
            .map(|i| http_job_body(&pool[i % pool.len()], 8, i as u64))
            .collect(),
        lanes: n * 8,
    }
}

fn jfield<'a>(value: &'a Json, key: &str) -> &'a Json {
    match value {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {key:?}")),
        _ => panic!("expected a JSON object looking up {key:?}"),
    }
}

/// Runs one workload through the HTTP gateway: all submits pipelined on
/// one keep-alive connection, then each job polled to its report in
/// submit order. The gateway streams nothing, so the polling round
/// trips are deliberately inside the measured latency — that *is* the
/// transport being benchmarked.
fn run_http_workload(workload: HttpWorkload, workers: usize, label: String) -> Row {
    let server = bind_frontend(workers, RunOpts::HTTP);
    let mut client = HttpClient::connect(server.local_addr()).expect("connect http");
    let n_jobs = workload.bodies.len();
    let lanes = workload.lanes;
    let t0 = Instant::now();
    let submitted: Vec<(u64, Instant)> = workload
        .bodies
        .iter()
        .map(|body| {
            let (status, reply) = client
                .request_json("POST", "/v1/jobs", Some(body))
                .expect("http submit");
            assert_eq!(status, 202, "submit accepted: {reply:?}");
            let id = jfield(&reply, "job_id").as_u64().expect("job_id");
            (id, Instant::now())
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(n_jobs);
    let mut service_us_total = 0.0f64;
    for (id, at) in &submitted {
        loop {
            let (status, reply) = client
                .request_json("GET", &format!("/v1/jobs/{id}?tenant=bench"), None)
                .expect("http status");
            assert_eq!(status, 200, "status answered: {reply:?}");
            match jfield(&reply, "state").as_str().expect("state string") {
                "done" => {
                    let report = jfield(&reply, "report");
                    service_us_total +=
                        jfield(report, "service_us").as_u64().expect("service_us") as f64;
                    latencies_us.push(at.elapsed().as_secs_f64() * 1e6);
                    break;
                }
                "queued" | "running" => std::thread::sleep(Duration::from_micros(200)),
                other => panic!("job {id} reached unexpected state {other:?}"),
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    server.shutdown();
    latencies_us.sort_by(f64::total_cmp);
    Row {
        workload: label,
        jobs: n_jobs,
        lanes,
        idle_conns: 0,
        wall_s,
        latencies_us,
        service_us_total,
        gate_row: workers == 1,
    }
}

/// Slices the flat `{...}` row objects out of a bench JSON document's
/// `"results"` array, returning every row whose label does **not**
/// start with `wire` or `http` (this bench's rows) exactly as it
/// appears in the file (rows are flat — no nested braces — which
/// `baseline::parse_rows` has already validated by the time this runs).
fn non_wire_row_texts(doc: &str) -> Vec<String> {
    let Some(start) = doc.find("\"results\"") else {
        return Vec::new();
    };
    let Some(open) = doc[start..].find('[') else {
        return Vec::new();
    };
    let mut body = &doc[start + open + 1..];
    let mut kept = Vec::new();
    while let Some(obj_start) = body.find('{') {
        let Some(obj_len) = body[obj_start..].find('}') else {
            break;
        };
        let row = &body[obj_start..=obj_start + obj_len];
        if !row.contains("\"workload\": \"wire") && !row.contains("\"workload\": \"http") {
            kept.push(row.to_string());
        }
        body = &body[obj_start + obj_len + 1..];
    }
    kept
}

/// Asserts the fault-injection points are free when disarmed: the bench
/// refuses to record numbers with faults armed, and the per-call cost
/// of the disarmed checks must stay in plain-load territory so they can
/// live on the serving hot paths.
fn assert_faults_disarmed() {
    use msropm_server::faultinject;
    assert!(
        faultinject::quiescent(),
        "wire_bench: fault injection is armed — numbers would be meaningless"
    );
    const ITERS: u32 = 1_000_000;
    let t = Instant::now();
    for i in 0..ITERS {
        faultinject::maybe_delay_completion();
        std::hint::black_box(faultinject::short_write_cap(i as usize + 1));
        std::hint::black_box(faultinject::should_sever_write());
    }
    let ns_per_iter = t.elapsed().as_nanos() as f64 / f64::from(ITERS);
    // Three relaxed loads per iteration; 250ns leaves two orders of
    // magnitude of headroom over any real machine so this never flakes,
    // while still catching a fault point that grew a lock or a syscall.
    assert!(
        ns_per_iter < 250.0,
        "wire_bench: disarmed fault checks cost {ns_per_iter:.1} ns/iter — no longer a no-op"
    );
}

/// Encode→decode round-trip cost of representative frames, ns/op.
fn codec_ns() -> (f64, f64) {
    let graph = generators::kings_graph(7, 7);
    let submit = Request::Submit {
        tenant: "bench".into(),
        graph: graph.clone(),
        job: BatchJob::uniform(fast_config(), 8, 1),
        deadline_ms: 0,
    };
    let report = Response::Report(WireReport {
        job_id: 1,
        graph_hash: 0xfeed,
        seed: 1,
        queued_us: 10,
        service_us: 1000,
        ranked: (0..8)
            .map(|lane| WireLane {
                lane,
                seed: lane as u64,
                conflicts: lane as u64,
                accuracy: 0.97,
                coloring: vec![2u16; graph.num_nodes()],
            })
            .collect(),
    });
    const ITERS: u32 = 2000;
    let time = |f: &dyn Fn()| -> f64 {
        // One warmup pass, then best-of-3 timed passes.
        f();
        (0..3)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..ITERS {
                    f();
                }
                t.elapsed().as_nanos() as f64 / f64::from(ITERS)
            })
            .fold(f64::INFINITY, f64::min)
    };
    let submit_ns = time(&|| {
        let payload = encode_request(&submit);
        let back = decode_request(&payload).expect("roundtrip");
        std::hint::black_box(back);
    });
    let report_ns = time(&|| {
        let payload = encode_response(&report);
        let back = decode_response(&payload).expect("roundtrip");
        std::hint::black_box(back);
    });
    (submit_ns, report_ns)
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut quick = false;
    let mut workers = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = Some(args.next().expect("--out requires a value")),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline requires a value")),
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers requires a number");
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; valid: --quick, --workers N, --out PATH, --baseline PATH"
                );
                std::process::exit(2);
            }
        }
    }
    assert_faults_disarmed();
    let out_path = out_path.unwrap_or_else(|| baseline::default_out_path("BENCH_serve.json"));
    let (hot_jobs, mixed_jobs) = if quick { (10, 12) } else { (32, 40) };

    // Best-of-2 per row, mirroring serve_bench: scheduler hiccups only
    // ever slow a run down, so the minimum is the gate-stable statistic.
    let best = |make: &dyn Fn() -> Workload, workers: usize, label: &str, opts: RunOpts| -> Row {
        let a = run_workload(make(), workers, label.to_string(), opts);
        let b = run_workload(make(), workers, label.to_string(), opts);
        if a.service_us_total <= b.service_us_total {
            a
        } else {
            b
        }
    };
    let mut rows = vec![
        best(&|| wire_hot(hot_jobs), 1, "wire_hot", RunOpts::THREADS),
        best(
            &|| wire_mixed(mixed_jobs),
            1,
            "wire_mixed",
            RunOpts::THREADS,
        ),
        best(
            &|| wire_hot(hot_jobs),
            1,
            "wire_reactor_hot",
            RunOpts::REACTOR,
        ),
        best(
            &|| wire_mixed(mixed_jobs),
            1,
            "wire_reactor_mixed",
            RunOpts::REACTOR,
        ),
        best(&|| wire_hot(hot_jobs), 1, "wire_mux_hot", RunOpts::MUX),
        best(
            &|| wire_hot(hot_jobs),
            1,
            &format!("wire_reactor_idle{}", RunOpts::IDLE.idle_conns),
            RunOpts::IDLE,
        ),
    ];
    // The HTTP gateway rows: same shapes, JSON transport, polled
    // completion. Best-of-2 like every other row.
    let best_http = |make: &dyn Fn() -> HttpWorkload, label: &str| -> Row {
        let a = run_http_workload(make(), 1, label.to_string());
        let b = run_http_workload(make(), 1, label.to_string());
        if a.service_us_total <= b.service_us_total {
            a
        } else {
            b
        }
    };
    rows.push(best_http(&|| http_hot(hot_jobs), "http_hot"));
    rows.push(best_http(&|| http_mixed(mixed_jobs), "http_mixed"));
    if workers > 1 {
        rows.push(best(
            &|| wire_hot(hot_jobs),
            workers,
            &format!("wire_hot_w{workers}"),
            RunOpts::THREADS,
        ));
        rows.push(best(
            &|| wire_mixed(mixed_jobs),
            workers,
            &format!("wire_mixed_w{workers}"),
            RunOpts::THREADS,
        ));
        rows.push(best(
            &|| wire_hot(hot_jobs),
            workers,
            &format!("wire_reactor_hot_w{workers}"),
            RunOpts::REACTOR,
        ));
        rows.push(best(
            &|| wire_mixed(mixed_jobs),
            workers,
            &format!("wire_reactor_mixed_w{workers}"),
            RunOpts::REACTOR,
        ));
    }
    for r in &rows {
        println!(
            "{:<22} {:>3} jobs ({:>3} lanes) in {:>6.2}s | {:>6.2} jobs/s | latency p50 {:>9.0} us p99 {:>9.0} us | service/job {:>9.0} us",
            r.workload,
            r.jobs,
            r.lanes,
            r.wall_s,
            r.jobs_per_sec(),
            r.percentile_us(0.50),
            r.percentile_us(0.99),
            r.service_us_total / r.jobs as f64,
        );
    }
    let (submit_ns, report_ns) = codec_ns();
    println!(
        "wire_codec             submit roundtrip {submit_ns:>8.0} ns | report roundtrip {report_ns:>8.0} ns"
    );

    // Refuse to write a bogus baseline.
    for r in &rows {
        let cols = [r.wall_s, r.jobs_per_sec(), r.service_us_total];
        if cols.iter().any(|v| !v.is_finite() || *v <= 0.0) {
            eprintln!(
                "wire_bench: invalid timings for workload {:?} (NaN/zero) — refusing to write {out_path}",
                r.workload
            );
            std::process::exit(1);
        }
    }
    if !submit_ns.is_finite() || submit_ns <= 0.0 || !report_ns.is_finite() || report_ns <= 0.0 {
        eprintln!("wire_bench: invalid codec timings — refusing to write {out_path}");
        std::process::exit(1);
    }

    // Encode this run's rows as JSON objects.
    let mut wire_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let mut row = format!(
                "{{\"workload\": \"{name}\", \"jobs\": {jobs}, \"lanes\": {lanes}, \
                 \"jobs_per_sec\": {jps:.3}, \
                 \"p50_latency_us\": {p50:.1}, \"p99_latency_us\": {p99:.1}",
                name = r.workload,
                jobs = r.jobs,
                lanes = r.lanes,
                jps = r.jobs_per_sec(),
                p50 = r.percentile_us(0.50),
                p99 = r.percentile_us(0.99),
            );
            if r.idle_conns > 0 {
                let _ = write!(row, ", \"idle_conns\": {}", r.idle_conns);
            }
            if r.gate_row {
                let _ = write!(
                    row,
                    ", \"service_us_per_job\": {spj:.1}, \"service_us_per_lane\": {spl:.1}",
                    spj = r.service_us_total / r.jobs as f64,
                    spl = r.service_us_total / r.lanes as f64,
                );
            }
            row.push('}');
            row
        })
        .collect();
    wire_rows.push(format!(
        "{{\"workload\": \"wire_codec\", \
         \"submit_roundtrip_ns\": {submit_ns:.1}, \"report_roundtrip_ns\": {report_ns:.1}}}"
    ));

    // Merge: keep non-wire rows of an existing, parseable output file
    // (the serve_bench rows of the shared BENCH_serve.json) **verbatim**
    // — re-serializing them would reorder keys / reformat numbers and
    // churn the committed baseline on every refresh.
    let kept: Vec<String> = std::fs::read_to_string(&out_path)
        .ok()
        .filter(|existing| baseline::parse_rows(existing).is_ok())
        .map(|existing| non_wire_row_texts(&existing))
        .unwrap_or_default();

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"suite\": \"serve\",");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    json.push_str("  \"results\": [\n");
    let all: Vec<&String> = kept.iter().chain(wire_rows.iter()).collect();
    for (i, row) in all.iter().enumerate() {
        let _ = write!(json, "    {row}");
        json.push_str(if i + 1 == all.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("failed to write {out_path}: {e}"));
    println!(
        "wrote {out_path} ({} preserved + {} wire rows)",
        kept.len(),
        wire_rows.len()
    );

    if let Some(base_path) = baseline_path {
        baseline::enforce_gate_cli(&json, &base_path, &TRACKED);
    }
}
