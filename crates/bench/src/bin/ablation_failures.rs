//! Ablation (beyond paper): graceful degradation under defective rings.
//!
//! A fabricated oscillator array has yield loss: some rings never start
//! (`L_EN` effectively stuck low). A dead ring freezes at an arbitrary
//! phase, reads out an arbitrary color, and stops relaying coupling
//! information. This sweep kills a random fraction of oscillators and
//! measures how 4-coloring accuracy degrades — the fault-tolerance story
//! a fabric like the paper's ref \[7\]/\[8\] arrays would need.

use msropm_bench::{paper_benchmark, Options, Table};
use msropm_core::{Msropm, MsropmConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let opts = Options::from_env();
    let bench = paper_benchmark(if opts.quick { 7 } else { 20 });
    let g = &bench.graph;
    let n = g.num_nodes();
    let iters = opts.iters.min(12);

    let mut table = Table::new(vec![
        "dead fraction",
        "dead rings",
        "best acc",
        "mean acc",
        "acc on live subgraph (mean)",
    ]);

    for &fraction in &[0.0, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let dead_count = (fraction * n as f64).round() as usize;
        let mut accs = Vec::new();
        let mut live_accs = Vec::new();
        for i in 0..iters {
            let mut rng = StdRng::seed_from_u64(opts.seed + i as u64);
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let dead: Vec<usize> = order[..dead_count].to_vec();

            let mut machine = Msropm::new(g, MsropmConfig::paper_default());
            for &d in &dead {
                machine.set_oscillator_enabled(d, false);
            }
            let sol = machine.solve(&mut rng);
            accs.push(sol.coloring.accuracy(g));

            // Accuracy restricted to edges between live oscillators: what
            // the functional part of the fabric achieves.
            let is_dead = {
                let mut v = vec![false; n];
                for &d in &dead {
                    v[d] = true;
                }
                v
            };
            let (mut live_edges, mut live_ok) = (0usize, 0usize);
            for (_, u, v) in g.edges() {
                if !is_dead[u.index()] && !is_dead[v.index()] {
                    live_edges += 1;
                    if sol.coloring.color(u) != sol.coloring.color(v) {
                        live_ok += 1;
                    }
                }
            }
            live_accs.push(if live_edges == 0 {
                1.0
            } else {
                live_ok as f64 / live_edges as f64
            });
        }
        let s = msropm_graph::metrics::Summary::of(&accs).expect("iterations exist");
        let ls = msropm_graph::metrics::Summary::of(&live_accs).expect("iterations exist");
        table.row(vec![
            format!("{fraction:.2}"),
            dead_count.to_string(),
            format!("{:.3}", s.max),
            format!("{:.3}", s.mean),
            format!("{:.3}", ls.mean),
        ]);
    }

    println!(
        "\n== Ablation: defective-ring tolerance ({}-node fabric) ==",
        n
    );
    println!("{}", table.render());
    println!(
        "reading: dead rings cost roughly their incident-edge fraction of raw\n\
         accuracy (their colors are stuck at arbitrary values), while the live\n\
         subgraph keeps near-nominal quality — the annealing routes around the\n\
         frozen phases rather than being corrupted by them."
    );

    let path = opts.out_path("ablation_failures.csv");
    let file = std::fs::File::create(&path).expect("create CSV");
    table.write_csv(file).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
