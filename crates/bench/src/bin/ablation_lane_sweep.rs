//! Ablation: heterogeneous (σ, K) lane sweep + population restarts vs
//! the single-point paper default.
//!
//! The companion multi-phase OPM work (arXiv:2504.04223) shows solution
//! quality is sharply sensitive to the coupling/SHIL operating point;
//! the paper tunes one point "empirically" and replays it for every
//! iteration. This ablation spends the same replica budget as a
//! **portfolio**: a 16-lane log/linear (K, σ) grid run through
//! [`PortfolioRunner`], with the worst quarter of lanes re-seeded from
//! the best survivors at each stage boundary. The acceptance claim is
//! that the portfolio's best lane is at least as accurate as the
//! single-point default batch with the same lane count and seeds.
//!
//! Run with: `cargo run --release -p msropm-bench --bin
//! ablation_lane_sweep` (`--quick` shrinks the board to 7×7).

use msropm_bench::{paper_benchmark, Options, Table};
use msropm_core::{Msropm, MsropmConfig, PortfolioRunner, SweepParam, SweepSpec};

fn main() {
    let opts = Options::from_env();
    let bench = paper_benchmark(if opts.quick { 7 } else { 20 });
    let g = &bench.graph;
    let base = MsropmConfig::paper_default();

    // 4 × 4 operating grid bracketing the paper point (K = 1, σ = 0.18).
    let sweep = SweepSpec::new()
        .logspace(SweepParam::CouplingStrength, 0.6, 1.6, 4)
        .linspace(SweepParam::Noise, 0.10, 0.30, 4);
    let num_lanes = sweep.num_lanes();

    println!(
        "== Ablation: {num_lanes}-lane (K, sigma) portfolio on the {}x{} King's graph ==",
        bench.side, bench.side
    );

    // Baseline: the same replica budget, all lanes at the paper point.
    let seeds: Vec<u64> = (0..num_lanes as u64).map(|i| opts.seed + i).collect();
    let machine = Msropm::new(g, base);
    let baseline = machine.solve_batch(&seeds, msropm_core::num_cores());
    let baseline_best = baseline
        .iter()
        .map(|s| s.coloring.accuracy(g))
        .fold(0.0f64, f64::max);

    let report = PortfolioRunner::from_sweep(base, &sweep)
        .base_seed(opts.seed)
        .restart_fraction(0.25)
        .run(g);

    let mut table = Table::new(vec!["lane", "K", "sigma", "restarted", "accuracy"]);
    for o in &report.lanes {
        let restarted = report
            .restarts
            .iter()
            .filter(|e| e.dst == o.lane)
            .map(|e| format!("s{}<-{}", e.stage, e.src))
            .collect::<Vec<_>>()
            .join(",");
        table.row(vec![
            format!("{}", o.lane),
            format!("{:.3}", o.config.coupling_strength),
            format!("{:.3}", o.config.noise),
            if restarted.is_empty() {
                "-".to_string()
            } else {
                restarted
            },
            format!("{:.4}", o.accuracy),
        ]);
    }
    println!("{}", table.render());

    let best = report.best();
    println!(
        "portfolio best: lane {} (K = {:.3}, sigma = {:.3}) accuracy {:.4}",
        best.lane, best.config.coupling_strength, best.config.noise, best.accuracy
    );
    println!(
        "single-point baseline (paper default, {num_lanes} replicas): best accuracy {baseline_best:.4}"
    );
    println!("restarts fired: {}", report.restarts.len());
    if best.accuracy >= baseline_best {
        println!("PASS: portfolio best lane >= single-point default");
    } else {
        println!(
            "MISS: portfolio under the single-point default by {:.4}",
            baseline_best - best.accuracy
        );
    }

    let path = opts.out_path("ablation_lane_sweep.csv");
    let file = std::fs::File::create(&path).expect("create CSV");
    table.write_csv(file).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
