//! Shared harness code for regenerating every table and figure of the
//! MSROPM paper.
//!
//! Each `src/bin/*` binary regenerates one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_stages` | Fig. 2 — divide-and-color walkthrough |
//! | `fig3_waveforms` | Fig. 3 — circuit-level stage waveforms (CSV) |
//! | `fig5a_accuracy` | Fig. 5(a) — 4-coloring accuracy per iteration |
//! | `fig5b_maxcut` | Fig. 5(b) — stage-1 max-cut accuracy + correlation |
//! | `fig5c_hamming` | Fig. 5(c) — pairwise Hamming-distance histograms |
//! | `table1_stats` | Table 1 — search space, power, top accuracy |
//! | `table2_comparison` | Table 2 — comparison vs re-implemented baselines |
//! | `ablation_*` | beyond-paper sweeps of the §2.3 tuning knobs |
//!
//! Beyond the paper artifacts, two perf harnesses write the committed
//! `BENCH_*.json` baselines at the repo root and double as the CI
//! perf-regression gate (via `--baseline`; see [`baseline`]):
//! `bench_phase_step` (hot-loop ns/op suite) and `serve_bench` (job-server
//! throughput/latency; `--smoke` is the CI server determinism stage).
//!
//! All binaries accept `--quick` (reduced sizes/iterations, for smoke
//! tests), `--iters N` and `--out DIR` (CSV output directory, default
//! `paper_results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod options;
pub mod problems;
pub mod tables;

pub use baseline::{enforce_gate, find_regressions, parse_rows, BenchRow, Regression};
pub use options::Options;
pub use problems::{paper_benchmark, paper_sides, Benchmark};
pub use tables::Table;
