//! Plain-text table rendering and CSV output for the harness binaries.

use std::io::Write;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use msropm_bench::Table;
///
/// let mut t = Table::new(vec!["graph", "accuracy"]);
/// t.row(vec!["49-node".to_string(), "1.00".to_string()]);
/// let text = t.render();
/// assert!(text.contains("49-node"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[c];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[c] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_csv<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(writer, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Writes a named series (one value per line with its index) as CSV.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_series_csv<W: Write>(
    mut writer: W,
    index_name: &str,
    value_name: &str,
    values: &[f64],
) -> std::io::Result<()> {
    writeln!(writer, "{index_name},{value_name}")?;
    for (i, v) in values.iter().enumerate() {
        writeln!(writer, "{i},{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["xxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a  "));
        assert!(lines[2].starts_with("xxx"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        Table::new(vec!["a"]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["1".into(), "2".into()]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "k,v\n1,2\n");
    }

    #[test]
    fn series_csv() {
        let mut buf = Vec::new();
        write_series_csv(&mut buf, "iter", "acc", &[0.5, 1.0]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "iter,acc\n0,0.5\n1,1\n");
    }
}
