//! The paper's benchmark problems.
//!
//! §4: "custom 4-coloring problems in King's graph topology are generated
//! in different sizes ... 49, 400, 1024, and 2116 nodes with all edges
//! active (8 edges per node)".

use msropm_graph::{generators, Graph};

/// One benchmark instance.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Board side (nodes = side²).
    pub side: usize,
    /// The King's graph.
    pub graph: Graph,
    /// Best-known max-cut value (the row-stripe construction, proven
    /// optimal at small sizes by branch and bound — see `msropm-sat`).
    pub best_cut: usize,
}

/// The paper's four board sides (49, 400, 1024, 2116 nodes).
pub const PAPER_SIDES: [usize; 4] = [7, 20, 32, 46];

/// Board sides used by figure binaries: the paper plots 49/400/1024 in
/// Fig. 5 and adds 2116 in Table 1.
pub fn paper_sides(quick: bool) -> Vec<usize> {
    if quick {
        vec![7]
    } else {
        vec![7, 20, 32]
    }
}

/// Builds the benchmark for a given board side.
pub fn paper_benchmark(side: usize) -> Benchmark {
    let graph = generators::kings_graph_square(side);
    let best_cut = msropm_graph::cut::kings_stripe_cut(side, side).cut_value(&graph);
    Benchmark {
        side,
        graph,
        best_cut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_sizes_match_paper() {
        for (side, nodes) in PAPER_SIDES.iter().zip([49usize, 400, 1024, 2116]) {
            let b = paper_benchmark(*side);
            assert_eq!(b.graph.num_nodes(), nodes);
            assert!(b.best_cut > 0);
        }
    }

    #[test]
    fn quick_mode_uses_smallest() {
        assert_eq!(paper_sides(true), vec![7]);
        assert_eq!(paper_sides(false), vec![7, 20, 32]);
    }

    #[test]
    fn stripe_cut_is_best_known() {
        // Cross-check the stored normalizer against the formula.
        let b = paper_benchmark(7);
        let expected = (7 - 1) * 7 + 2 * (7 - 1) * (7 - 1); // vertical+diagonal
        assert_eq!(b.best_cut, expected);
    }
}
