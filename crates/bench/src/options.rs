//! Minimal command-line handling shared by the figure/table binaries.

use msropm_core::KernelBackend;
use std::path::PathBuf;

/// Options common to all harness binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Reduced problem sizes and iteration counts (CI smoke mode).
    pub quick: bool,
    /// Iterations per problem (paper: 40).
    pub iters: usize,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Base RNG seed.
    pub seed: u64,
    /// Kernel backend the harness solves on (default: f64).
    pub backend: KernelBackend,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            iters: 40,
            out_dir: PathBuf::from("paper_results"),
            seed: 0x5EED,
            backend: KernelBackend::F64,
        }
    }
}

impl Options {
    /// Parses `std::env::args` style arguments (everything after argv\[0\]).
    ///
    /// Recognized: `--quick`, `--iters N`, `--out DIR`, `--seed S`,
    /// `--backend f64|fixed`. Unknown arguments cause an error message
    /// listing valid flags.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => {
                    opts.quick = true;
                    if opts.iters == 40 {
                        opts.iters = 8;
                    }
                }
                "--iters" => {
                    let v = it.next().ok_or("--iters requires a value")?;
                    opts.iters = v
                        .parse()
                        .map_err(|_| format!("invalid --iters value {v:?}"))?;
                    if opts.iters == 0 {
                        return Err("--iters must be >= 1".to_string());
                    }
                }
                "--out" => {
                    let v = it.next().ok_or("--out requires a value")?;
                    opts.out_dir = PathBuf::from(v);
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed requires a value")?;
                    opts.seed = v
                        .parse()
                        .map_err(|_| format!("invalid --seed value {v:?}"))?;
                }
                "--backend" => {
                    let v = it.next().ok_or("--backend requires a value")?;
                    opts.backend = KernelBackend::from_name(&v)
                        .ok_or_else(|| format!("invalid --backend value {v:?}; valid: f64, fixed"))?;
                }
                other => {
                    return Err(format!(
                        "unknown argument {other:?}; valid: --quick --iters N --out DIR --seed S --backend f64|fixed"
                    ))
                }
            }
        }
        Ok(opts)
    }

    /// Parses from the process environment, exiting with a message on
    /// malformed input.
    pub fn from_env() -> Self {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Creates `out_dir` (if needed) and returns the path of `name` in it.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn out_path(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create output directory");
        self.out_dir.join(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert!(!o.quick);
        assert_eq!(o.iters, 40);
        assert_eq!(o.out_dir, PathBuf::from("paper_results"));
    }

    #[test]
    fn quick_reduces_iterations() {
        let o = parse(&["--quick"]).unwrap();
        assert!(o.quick);
        assert_eq!(o.iters, 8);
    }

    #[test]
    fn explicit_iters_wins_over_quick() {
        let o = parse(&["--iters", "12", "--quick"]).unwrap();
        assert_eq!(o.iters, 12);
        let o2 = parse(&["--quick", "--iters", "12"]).unwrap();
        assert_eq!(o2.iters, 12);
    }

    #[test]
    fn out_and_seed() {
        let o = parse(&["--out", "/tmp/x", "--seed", "99"]).unwrap();
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(o.seed, 99);
    }

    #[test]
    fn backend_flag() {
        assert_eq!(parse(&[]).unwrap().backend, KernelBackend::F64);
        assert_eq!(
            parse(&["--backend", "fixed"]).unwrap().backend,
            KernelBackend::Fixed
        );
        assert!(parse(&["--backend", "q31"]).is_err());
    }

    #[test]
    fn errors() {
        assert!(parse(&["--iters"]).is_err());
        assert!(parse(&["--iters", "zero"]).is_err());
        assert!(parse(&["--iters", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }
}
