//! Perf-regression gate: parse `BENCH_*.json` baselines and compare
//! tracked timing columns against a fresh run.
//!
//! The bench bins write flat JSON of the shape
//!
//! ```json
//! { "suite": "...", "results": [ {"graph": "kings_7x7", "kernel_eval_ns": 1600.0, ...} ] }
//! ```
//!
//! and CI re-runs them with `--baseline <committed json>`: any tracked
//! ns/op column more than [`DEFAULT_TOLERANCE`] above the committed
//! value fails the gate (nonzero exit). The parser below handles exactly
//! this format — flat result objects whose values are numbers or strings
//! (the first string-valued field labels the row) — which keeps the
//! workspace free of a JSON dependency; it is not a general JSON reader.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Allowed slowdown before the gate trips: ratios above
/// `1.0 + DEFAULT_TOLERANCE` are regressions (the ISSUE's 15%).
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One parsed result row: its label (first string field, e.g.
/// `"graph": "kings_7x7"` or `"workload": "mixed"`) and every numeric
/// column.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Row label used to match baseline and current rows.
    pub label: String,
    /// Numeric columns by field name.
    pub values: BTreeMap<String, f64>,
}

/// One tracked column that got slower than the baseline tolerates.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Row label the column belongs to.
    pub label: String,
    /// Column name.
    pub column: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
}

impl Regression {
    /// Slowdown factor `current / baseline`.
    pub fn ratio(&self) -> f64 {
        self.current / self.baseline
    }
}

/// Extracts the result rows from a bench JSON document.
///
/// # Errors
///
/// Returns a human-readable message when the document has no
/// `"results"` array or a row cannot be scanned.
pub fn parse_rows(json: &str) -> Result<Vec<BenchRow>, String> {
    let start = json
        .find("\"results\"")
        .ok_or("no \"results\" key in baseline JSON")?;
    let rest = &json[start..];
    let open = rest.find('[').ok_or("no results array")?;
    let mut rows = Vec::new();
    let mut chars = rest[open + 1..].char_indices().peekable();
    let body = &rest[open + 1..];
    while let Some((i, c)) = chars.next() {
        match c {
            ']' => return Ok(rows),
            '{' => {
                let close = body[i..]
                    .find('}')
                    .map(|j| i + j)
                    .ok_or("unterminated result object")?;
                rows.push(parse_row(&body[i + 1..close])?);
                while let Some(&(j, _)) = chars.peek() {
                    if j <= close {
                        chars.next();
                    } else {
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    Err("unterminated results array".to_string())
}

/// Scans one flat `"key": value, ...` object body.
fn parse_row(body: &str) -> Result<BenchRow, String> {
    let mut label = None;
    let mut values = BTreeMap::new();
    let mut rest = body;
    while let Some(q) = rest.find('"') {
        let after_key = &rest[q + 1..];
        let endq = after_key
            .find('"')
            .ok_or_else(|| format!("unterminated key in row: {body:?}"))?;
        let key = &after_key[..endq];
        let after = &after_key[endq + 1..];
        let colon = after
            .find(':')
            .ok_or_else(|| format!("missing ':' after {key:?}"))?;
        let value = after[colon + 1..].trim_start();
        if let Some(stripped) = value.strip_prefix('"') {
            let vend = stripped
                .find('"')
                .ok_or_else(|| format!("unterminated string value for {key:?}"))?;
            if label.is_none() {
                label = Some(stripped[..vend].to_string());
            }
            rest = &stripped[vend + 1..];
        } else {
            let vend = value
                .find([',', '}'])
                .unwrap_or(value.len())
                .min(value.len());
            let num: f64 = value[..vend]
                .trim()
                .parse()
                .map_err(|_| format!("non-numeric value for {key:?}: {:?}", &value[..vend]))?;
            values.insert(key.to_string(), num);
            rest = &value[vend..];
        }
    }
    Ok(BenchRow {
        label: label.unwrap_or_default(),
        values,
    })
}

/// Compares `current` against `baseline` on the `tracked` columns.
///
/// Rows are matched by label and columns by name; rows or columns
/// present on only one side are skipped (so `--quick` runs compare the
/// subset they measured). A column regresses when
/// `current > baseline * (1 + tolerance)`.
pub fn find_regressions(
    current: &[BenchRow],
    baseline: &[BenchRow],
    tracked: &[&str],
    tolerance: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.label == cur.label) else {
            continue;
        };
        for &col in tracked {
            let (Some(&c), Some(&b)) = (cur.values.get(col), base.values.get(col)) else {
                continue;
            };
            if b > 0.0 && c > b * (1.0 + tolerance) {
                out.push(Regression {
                    label: cur.label.clone(),
                    column: col.to_string(),
                    baseline: b,
                    current: c,
                });
            }
        }
    }
    out
}

/// The whole gate: parses both documents, prints a per-column
/// comparison, and returns `Err` with a summary when any tracked column
/// regressed beyond `tolerance`.
///
/// # Errors
///
/// Returns a printable report of every regression (or a parse error).
pub fn enforce_gate(
    current_json: &str,
    baseline_json: &str,
    tracked: &[&str],
    tolerance: f64,
) -> Result<String, String> {
    let current = parse_rows(current_json)?;
    let baseline = parse_rows(baseline_json)?;
    let mut table = String::new();
    let mut compared = 0usize;
    for cur in &current {
        let Some(base) = baseline.iter().find(|b| b.label == cur.label) else {
            continue;
        };
        for &col in tracked {
            let (Some(&c), Some(&b)) = (cur.values.get(col), base.values.get(col)) else {
                continue;
            };
            compared += 1;
            let _ = writeln!(
                table,
                "  {:<14} {:<32} base {:>12.2}  now {:>12.2}  ({:+6.1}%)",
                cur.label,
                col,
                b,
                c,
                (c / b - 1.0) * 100.0,
            );
        }
    }
    if compared == 0 {
        return Err("baseline gate compared 0 columns — label/column mismatch?".to_string());
    }
    let regressions = find_regressions(&current, &baseline, tracked, tolerance);
    if regressions.is_empty() {
        Ok(table)
    } else {
        let mut msg = table;
        let _ = writeln!(
            msg,
            "PERF REGRESSION: {} tracked column(s) > {:.0}% over baseline:",
            regressions.len(),
            tolerance * 100.0
        );
        for r in &regressions {
            let _ = writeln!(
                msg,
                "  {} / {}: {:.2} -> {:.2} ({:.2}x)",
                r.label,
                r.column,
                r.baseline,
                r.current,
                r.ratio()
            );
        }
        Err(msg)
    }
}

/// Default output location shared by the bench bins: `file_name` at the
/// workspace root (two levels above this crate's manifest). Resolved at
/// *runtime* where possible — the compile-time manifest path is only a
/// fallback, so a relocated binary or moved checkout degrades to the
/// current directory instead of panicking on a stale absolute path.
pub fn default_out_path(file_name: &str) -> String {
    let candidates = [
        std::env::var("CARGO_MANIFEST_DIR")
            .ok()
            .map(|d| format!("{d}/../../{file_name}")),
        Some(format!("{}/../../{file_name}", env!("CARGO_MANIFEST_DIR"))),
    ];
    for c in candidates.into_iter().flatten() {
        if std::path::Path::new(&c)
            .parent()
            .is_some_and(|p| p.is_dir())
        {
            return c;
        }
    }
    file_name.to_string()
}

/// The bins' `--baseline` epilogue: reads `baseline_path`, runs
/// [`enforce_gate`] at [`DEFAULT_TOLERANCE`], prints the comparison, and
/// exits the process nonzero on a regression (or unreadable/mismatched
/// baseline).
pub fn enforce_gate_cli(current_json: &str, baseline_path: &str, tracked: &[&str]) {
    let base = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to read baseline {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    match enforce_gate(current_json, &base, tracked, DEFAULT_TOLERANCE) {
        Ok(table) => println!("perf gate vs {baseline_path}: OK\n{table}"),
        Err(msg) => {
            eprintln!("perf gate vs {baseline_path}: FAILED\n{msg}");
            eprintln!(
                "If this slowdown is intentional (or the baseline is stale), regenerate \
                 every committed BENCH_*.json with scripts/refresh_baselines.sh and commit \
                 the result alongside the change."
            );
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "suite": "phase_step",
  "unix_time": 123,
  "results": [
    {"graph": "kings_7x7", "nodes": 49, "kernel_eval_ns": 1000.0, "batch_eval_ns_per_replica": 800.5},
    {"graph": "kings_20x20", "nodes": 400, "kernel_eval_ns": 14000.0, "batch_eval_ns_per_replica": 11000.0}
  ]
}"#;

    #[test]
    fn parses_labels_and_numeric_columns() {
        let rows = parse_rows(SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "kings_7x7");
        assert_eq!(rows[0].values["kernel_eval_ns"], 1000.0);
        assert_eq!(rows[1].values["batch_eval_ns_per_replica"], 11000.0);
        // Non-tracked numeric fields are still available.
        assert_eq!(rows[1].values["nodes"], 400.0);
    }

    #[test]
    fn regression_detection_honors_tolerance() {
        let baseline = parse_rows(SAMPLE).unwrap();
        let faster = SAMPLE.replace("1000.0", "900.0");
        let current = parse_rows(&faster).unwrap();
        assert!(find_regressions(&current, &baseline, &["kernel_eval_ns"], 0.15).is_empty());

        let slower = SAMPLE.replace("\"kernel_eval_ns\": 1000.0", "\"kernel_eval_ns\": 1200.0");
        let current = parse_rows(&slower).unwrap();
        let regs = find_regressions(&current, &baseline, &["kernel_eval_ns"], 0.15);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].label, "kings_7x7");
        assert!((regs[0].ratio() - 1.2).abs() < 1e-12);
        // Inside tolerance: 1.10x is fine at 15%.
        let mild = SAMPLE.replace("\"kernel_eval_ns\": 1000.0", "\"kernel_eval_ns\": 1100.0");
        let current = parse_rows(&mild).unwrap();
        assert!(find_regressions(&current, &baseline, &["kernel_eval_ns"], 0.15).is_empty());
    }

    #[test]
    fn quick_runs_compare_the_row_subset() {
        let baseline = parse_rows(SAMPLE).unwrap();
        let quick = r#"{"results": [{"graph": "kings_7x7", "kernel_eval_ns": 1001.0}]}"#;
        let current = parse_rows(quick).unwrap();
        assert!(find_regressions(&current, &baseline, &["kernel_eval_ns"], 0.15).is_empty());
        let report = enforce_gate(quick, SAMPLE, &["kernel_eval_ns"], 0.15).unwrap();
        assert!(report.contains("kings_7x7"));
        assert!(!report.contains("kings_20x20"));
    }

    #[test]
    fn gate_fails_loudly_on_mismatched_documents() {
        let err = enforce_gate(
            r#"{"results": [{"graph": "other", "x": 1.0}]}"#,
            SAMPLE,
            &["kernel_eval_ns"],
            0.15,
        )
        .unwrap_err();
        assert!(err.contains("0 columns"));
        assert!(parse_rows("{}").is_err());
    }

    #[test]
    fn gate_reports_every_regressed_column() {
        let slower = SAMPLE
            .replace("\"kernel_eval_ns\": 1000.0", "\"kernel_eval_ns\": 2000.0")
            .replace(
                "\"batch_eval_ns_per_replica\": 800.5",
                "\"batch_eval_ns_per_replica\": 1800.5",
            );
        let err = enforce_gate(
            &slower,
            SAMPLE,
            &["kernel_eval_ns", "batch_eval_ns_per_replica"],
            0.15,
        )
        .unwrap_err();
        assert!(err.contains("PERF REGRESSION"));
        assert!(err.contains("kernel_eval_ns"));
        assert!(err.contains("batch_eval_ns_per_replica"));
    }
}
