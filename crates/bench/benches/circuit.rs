//! Criterion benchmarks of the circuit-level simulator: transient cost per
//! simulated nanosecond for small ROSC arrays, and the phase-readout path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msropm_circuit::CircuitArray;
use msropm_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("circuit_transient_1ns");
    group.sample_size(10);
    for side in [2usize, 3, 4] {
        let g = generators::kings_graph_square(side);
        let array = CircuitArray::builder(&g).build();
        let mut rng = StdRng::seed_from_u64(1);
        let state0 = array.random_state(&mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                b.iter(|| {
                    let mut state = state0.clone();
                    array.run(&mut state, 0.0, 1.0, 1e-3);
                    std::hint::black_box(state)
                })
            },
        );
    }
    group.finish();
}

fn bench_readout(c: &mut Criterion) {
    let g = generators::path_graph(2);
    let array = CircuitArray::builder(&g).build();
    let mut rng = StdRng::seed_from_u64(2);
    let mut state = array.random_state(&mut rng);
    array.run(&mut state, 0.0, 10.0, 1e-3);
    c.bench_function("circuit_phase_readout", |b| {
        b.iter(|| {
            std::hint::black_box(msropm_circuit::readout::measure_phase_at(
                &array, &state, 0, 10.0, 4.0, 1e-3,
            ))
        })
    });
}

criterion_group!(benches, bench_transient, bench_readout);
criterion_main!(benches);
