//! Criterion benchmarks of the CDCL baseline: exact 4-coloring of the
//! paper benchmarks (the Table 1 accuracy denominator) and classic hard
//! instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msropm_graph::generators;
use msropm_sat::encode::solve_k_coloring;
use msropm_sat::{Lit, Solver};

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_4coloring");
    group.sample_size(10);
    for side in [7usize, 20] {
        let g = generators::kings_graph_square(side);
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                b.iter(|| {
                    let coloring = solve_k_coloring(&g, 4).expect("4-colorable");
                    std::hint::black_box(coloring)
                })
            },
        );
    }
    group.finish();
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_pigeonhole_unsat");
    group.sample_size(10);
    for n in [6usize, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let holes = n - 1;
                let mut s = Solver::new();
                let vs = s.new_vars(n * holes);
                let p = |i: usize, h: usize| vs[i * holes + h];
                for i in 0..n {
                    let clause: Vec<Lit> = (0..holes).map(|h| p(i, h).positive()).collect();
                    s.add_clause(&clause);
                }
                for h in 0..holes {
                    for i in 0..n {
                        for j in (i + 1)..n {
                            s.add_clause(&[p(i, h).negative(), p(j, h).negative()]);
                        }
                    }
                }
                std::hint::black_box(s.solve())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coloring, bench_pigeonhole);
criterion_main!(benches);
