//! Criterion micro-benchmarks of the phase-macromodel hot loop: one
//! right-hand-side evaluation and one full annealing window for each paper
//! problem size. This measures the scaling behaviour that lets the
//! macromodel handle the 2116-node array the paper simulates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msropm_graph::generators;
use msropm_ode::system::OdeSystem;
use msropm_osc::PhaseNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_eval");
    for side in [7usize, 20, 32, 46] {
        let g = generators::kings_graph_square(side);
        let net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let mut rng = StdRng::seed_from_u64(1);
        let phases = net.random_phases(&mut rng);
        let mut dydt = vec![0.0; phases.len()];
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                b.iter(|| {
                    net.eval(0.0, std::hint::black_box(&phases), &mut dydt);
                    std::hint::black_box(&dydt);
                })
            },
        );
    }
    group.finish();
}

fn bench_anneal_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("anneal_1ns");
    group.sample_size(10);
    for side in [7usize, 20, 32] {
        let g = generators::kings_graph_square(side);
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                let mut net = PhaseNetwork::builder(&g)
                    .coupling_strength(1.0)
                    .noise(0.18)
                    .build();
                let mut rng = StdRng::seed_from_u64(2);
                let mut phases = net.random_phases(&mut rng);
                b.iter(|| {
                    net.anneal(&mut phases, 1.0, 0.01, &mut rng);
                    std::hint::black_box(&phases);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eval, bench_anneal_window);
criterion_main!(benches);
