//! Criterion micro-benchmarks of the phase-macromodel hot loop: one
//! right-hand-side evaluation and one full annealing window for each paper
//! problem size, for both the naive CSR walk (`PhaseNetwork::eval`, the
//! reference) and the compiled coupling kernel (`CoupledKernel` /
//! `BatchKernel`) that the machine actually runs on. This measures the
//! scaling behaviour that lets the macromodel handle the 2116-node array
//! the paper simulates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msropm_graph::generators;
use msropm_ode::system::OdeSystem;
use msropm_osc::batch::{BatchIntegrator, BatchKernel};
use msropm_osc::kernel::KernelIntegrator;
use msropm_osc::PhaseNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_eval");
    for side in [7usize, 20, 32, 46] {
        let g = generators::kings_graph_square(side);
        let net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let mut rng = StdRng::seed_from_u64(1);
        let phases = net.random_phases(&mut rng);
        let mut dydt = vec![0.0; phases.len()];
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                b.iter(|| {
                    net.eval(0.0, std::hint::black_box(&phases), &mut dydt);
                    std::hint::black_box(&dydt);
                })
            },
        );
    }
    group.finish();
}

fn bench_kernel_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_eval_kernel");
    for side in [7usize, 20, 32, 46] {
        let g = generators::kings_graph_square(side);
        let net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let kernel = net.compile_kernel();
        let mut rng = StdRng::seed_from_u64(1);
        let phases = net.random_phases(&mut rng);
        let mut dydt = vec![0.0; phases.len()];
        let mut scratch = Vec::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                b.iter(|| {
                    kernel.drift_into(std::hint::black_box(&phases), &mut dydt, &mut scratch);
                    std::hint::black_box(&dydt);
                })
            },
        );
    }
    group.finish();
}

fn bench_batch_eval(c: &mut Criterion) {
    // The runner's shape: the paper's 40 iterations as one SoA sweep.
    // Reported time is for all 40 replicas; divide by 40 to compare with
    // the scalar kernel.
    let mut group = c.benchmark_group("phase_eval_batch40");
    for side in [7usize, 20, 32, 46] {
        let g = generators::kings_graph_square(side);
        let net = PhaseNetwork::builder(&g).coupling_strength(1.0).build();
        let replicas = 40;
        let kernel = BatchKernel::new(&net, replicas);
        let mut rng = StdRng::seed_from_u64(1);
        let phases: Vec<f64> = (0..g.num_nodes() * replicas)
            .map(|_| rand::Rng::gen::<f64>(&mut rng) * std::f64::consts::TAU)
            .collect();
        let mut dydt = vec![0.0; phases.len()];
        let mut scratch = Vec::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                b.iter(|| {
                    kernel.drift_into(std::hint::black_box(&phases), &mut dydt, &mut scratch);
                    std::hint::black_box(&dydt);
                })
            },
        );
    }
    group.finish();
}

fn bench_anneal_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("anneal_1ns");
    group.sample_size(10);
    for side in [7usize, 20, 32] {
        let g = generators::kings_graph_square(side);
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                let mut net = PhaseNetwork::builder(&g)
                    .coupling_strength(1.0)
                    .noise(0.18)
                    .build();
                let mut rng = StdRng::seed_from_u64(2);
                let mut phases = net.random_phases(&mut rng);
                b.iter(|| {
                    net.anneal(&mut phases, 1.0, 0.01, &mut rng);
                    std::hint::black_box(&phases);
                })
            },
        );
    }
    group.finish();
}

fn bench_anneal_window_reused_kernel(c: &mut Criterion) {
    // Same window as `anneal_1ns` but compiling once and reusing the
    // integrator — the machine's actual hot path.
    let mut group = c.benchmark_group("anneal_1ns_kernel");
    group.sample_size(10);
    for side in [7usize, 20, 32] {
        let g = generators::kings_graph_square(side);
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                let net = PhaseNetwork::builder(&g)
                    .coupling_strength(1.0)
                    .noise(0.18)
                    .build();
                let kernel = net.compile_kernel();
                let mut integrator = KernelIntegrator::new();
                let mut rng = StdRng::seed_from_u64(2);
                let mut phases = net.random_phases(&mut rng);
                b.iter(|| {
                    integrator.integrate(&kernel, &mut phases, 0.0, 1.0, 0.01, &mut rng);
                    std::hint::black_box(&phases);
                })
            },
        );
    }
    group.finish();
}

fn bench_anneal_window_batch(c: &mut Criterion) {
    // 40-replica interleaved anneal window (time covers all replicas).
    let mut group = c.benchmark_group("anneal_1ns_batch40");
    group.sample_size(10);
    for side in [7usize, 20, 32] {
        let g = generators::kings_graph_square(side);
        group.bench_with_input(
            BenchmarkId::from_parameter(g.num_nodes()),
            &g.num_nodes(),
            |b, _| {
                let net = PhaseNetwork::builder(&g)
                    .coupling_strength(1.0)
                    .noise(0.18)
                    .build();
                let replicas = 40;
                let kernel = BatchKernel::new(&net, replicas);
                let mut integrator = BatchIntegrator::new();
                let mut rngs: Vec<StdRng> = (0..replicas)
                    .map(|r| StdRng::seed_from_u64(r as u64))
                    .collect();
                let mut seed_rng = StdRng::seed_from_u64(2);
                let mut phases: Vec<f64> = (0..g.num_nodes() * replicas)
                    .map(|_| rand::Rng::gen::<f64>(&mut seed_rng) * std::f64::consts::TAU)
                    .collect();
                b.iter(|| {
                    integrator.integrate(&kernel, &mut phases, 0.0, 1.0, 0.01, &mut rngs);
                    std::hint::black_box(&phases);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eval,
    bench_kernel_eval,
    bench_batch_eval,
    bench_anneal_window,
    bench_anneal_window_reused_kernel,
    bench_anneal_window_batch,
);
criterion_main!(benches);
