//! Criterion benchmarks of end-to-end solvers on the 49-node benchmark:
//! the MSROPM (full 60 ns schedule), the single-stage ROIM, the 3-SHIL
//! ROPM, and the software baselines (SA, tabu).

use criterion::{criterion_group, criterion_main, Criterion};
use msropm_core::baselines::{Ropm3, SimulatedAnnealingColoring, TabuMaxCut};
use msropm_core::{Msropm, MsropmConfig};
use msropm_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_solvers(c: &mut Criterion) {
    let g = generators::kings_graph(7, 7);
    let mut group = c.benchmark_group("solve_49_node");
    group.sample_size(10);

    group.bench_function("msropm_4color", |b| {
        let mut machine = Msropm::new(&g, MsropmConfig::paper_default());
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(machine.solve(&mut rng)))
    });

    group.bench_function("roim_maxcut", |b| {
        let mut machine = Msropm::new(&g, MsropmConfig::paper_default().with_num_colors(2));
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| std::hint::black_box(machine.solve(&mut rng)))
    });

    group.bench_function("ropm3_3color", |b| {
        let ropm = Ropm3::new(MsropmConfig::paper_default());
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| std::hint::black_box(ropm.solve(&g, &mut rng)))
    });

    group.bench_function("simulated_annealing", |b| {
        let sa = SimulatedAnnealingColoring::new(4, 300);
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| std::hint::black_box(sa.solve(&g, &mut rng)))
    });

    group.bench_function("tabu_maxcut", |b| {
        let tabu = TabuMaxCut::new(1000, 10);
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| std::hint::black_box(tabu.solve(&g, &mut rng)))
    });

    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
