//! Success-probability and time-to-solution analysis.
//!
//! Ising/Potts machines are probabilistic: the paper runs 40 iterations
//! and keeps the best (§4). The standard figure of merit for such solvers
//! is **TTS(q)** — the expected wall time to reach a target quality at
//! confidence `q`, `TTS = t_iter · ln(1−q)/ln(1−p)` where `p` is the
//! per-iteration success probability. This module estimates `p` and `TTS`
//! from an [`ExperimentReport`], enabling principled comparisons against
//! the literature rows of Table 2 (which report raw per-run times).

use crate::runner::ExperimentReport;

/// Fraction of iterations whose final accuracy reached `threshold`.
pub fn success_probability(report: &ExperimentReport, threshold: f64) -> f64 {
    let hits = report
        .outcomes
        .iter()
        .filter(|o| o.accuracy >= threshold)
        .count();
    hits as f64 / report.outcomes.len() as f64
}

/// Time-to-solution at confidence `confidence` for target accuracy
/// `threshold`, in nanoseconds of machine time.
///
/// Returns `None` when no iteration succeeded (TTS undefined/infinite).
/// When every iteration succeeds, the answer is one iteration time.
///
/// # Panics
///
/// Panics if `confidence` is not in `(0, 1)`.
pub fn time_to_solution_ns(
    report: &ExperimentReport,
    threshold: f64,
    confidence: f64,
) -> Option<f64> {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let p = success_probability(report, threshold);
    if p == 0.0 {
        return None;
    }
    if p >= 1.0 {
        return Some(report.time_per_iteration_ns);
    }
    let repeats = ((1.0 - confidence).ln() / (1.0 - p).ln()).max(1.0);
    Some(report.time_per_iteration_ns * repeats)
}

/// The accuracy threshold reached by at least `fraction` of iterations
/// (an empirical quantile of solution quality; `fraction = 0.5` is the
/// median accuracy).
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]` or the report is empty.
pub fn accuracy_quantile(report: &ExperimentReport, fraction: f64) -> f64 {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    let mut acc = report.accuracies();
    assert!(!acc.is_empty(), "report has no iterations");
    acc.sort_by(|a, b| b.partial_cmp(a).expect("accuracies are finite"));
    let k = ((fraction * acc.len() as f64).ceil() as usize).clamp(1, acc.len());
    acc[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::IterationOutcome;
    use msropm_graph::Coloring;

    fn fake_report(accuracies: &[f64]) -> ExperimentReport {
        ExperimentReport {
            outcomes: accuracies
                .iter()
                .enumerate()
                .map(|(i, &a)| IterationOutcome {
                    iteration: i,
                    seed: i as u64,
                    coloring: Coloring::from_indices([0]),
                    accuracy: a,
                    stage1_cut: 0,
                    stage1_accuracy: a,
                })
                .collect(),
            cut_reference: 1,
            time_per_iteration_ns: 60.0,
        }
    }

    #[test]
    fn success_probability_counts_hits() {
        let r = fake_report(&[1.0, 0.9, 0.95, 0.8]);
        assert_eq!(success_probability(&r, 1.0), 0.25);
        assert_eq!(success_probability(&r, 0.9), 0.75);
        assert_eq!(success_probability(&r, 0.0), 1.0);
    }

    #[test]
    fn tts_formula() {
        // p = 0.5, q = 0.99: repeats = ln(0.01)/ln(0.5) ~ 6.64.
        let r = fake_report(&[1.0, 0.5]);
        let tts = time_to_solution_ns(&r, 1.0, 0.99).expect("p > 0");
        assert!((tts - 60.0 * (0.01f64).ln() / (0.5f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn tts_edge_cases() {
        let all = fake_report(&[1.0, 1.0]);
        assert_eq!(time_to_solution_ns(&all, 1.0, 0.99), Some(60.0));
        let none = fake_report(&[0.5, 0.6]);
        assert_eq!(time_to_solution_ns(&none, 0.99, 0.99), None);
        // At least one repeat even for generous confidence.
        let r = fake_report(&[1.0, 1.0, 0.0, 0.0]);
        let tts = time_to_solution_ns(&r, 1.0, 0.1).expect("p > 0");
        assert!(tts >= 60.0);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn bad_confidence_rejected() {
        let r = fake_report(&[1.0]);
        let _ = time_to_solution_ns(&r, 1.0, 1.0);
    }

    #[test]
    fn quantiles() {
        let r = fake_report(&[0.9, 1.0, 0.8, 0.7]);
        assert_eq!(accuracy_quantile(&r, 0.25), 1.0);
        assert_eq!(accuracy_quantile(&r, 0.5), 0.9);
        assert_eq!(accuracy_quantile(&r, 1.0), 0.7);
    }
}
