//! Single-stage 3-SHIL ring-oscillator Potts machine (the ref-\[14\]
//! architecture).
//!
//! Instead of staging, a *third-order* SHIL (injection at 3f) discretizes
//! every phase into one of three equally spaced values in a single
//! anneal-lock cycle, natively representing 3-valued Potts spins. The paper
//! argues (Table 2 discussion) that this N-SHIL approach reaches lower
//! accuracy than divide-and-conquer staging — the comparison that
//! `table2_comparison` regenerates.

use crate::config::MsropmConfig;
use msropm_graph::{Coloring, Graph};
use msropm_osc::lock::phase_to_spin;
use msropm_osc::shil::Shil;
use msropm_osc::PhaseNetwork;
use rand::Rng;

/// A single-stage 3-coloring Potts machine using 3rd-order SHIL.
#[derive(Debug, Clone)]
pub struct Ropm3 {
    config: MsropmConfig,
}

impl Ropm3 {
    /// Creates the machine; only the dynamics fields of `config`
    /// (strengths, noise, timings, dt) are used — `num_colors` is fixed
    /// at 3 by the architecture.
    pub fn new(config: MsropmConfig) -> Self {
        Ropm3 { config }
    }

    /// Paper-comparable defaults.
    pub fn paper_default() -> Self {
        Ropm3::new(MsropmConfig::paper_default())
    }

    /// Time per run (ns): one init + anneal + lock cycle.
    pub fn time_per_run_ns(&self) -> f64 {
        self.config.t_init + self.config.t_anneal + self.config.t_lock
    }

    /// Runs one cycle and returns a 3-coloring.
    pub fn solve<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Coloring {
        let mut network = PhaseNetwork::builder(g)
            .coupling_strength(self.config.coupling_strength)
            .noise(self.config.noise)
            .frequency_spread(self.config.frequency_spread)
            .build_with_spread(rng);
        let dt = self.config.dt;
        let mut phases = network.random_phases(rng);

        // Init drift (couplings off).
        network.set_couplings_enabled(false);
        network.anneal(&mut phases, self.config.t_init, dt, rng);

        // Coupled self-annealing.
        network.set_couplings_enabled(true);
        network.anneal(&mut phases, self.config.t_anneal, dt, rng);

        // 3rd-order SHIL lock.
        let shil = Shil::order3(0.0, self.config.shil_strength);
        network.set_shil_all(shil);
        network.set_shil_enabled(true);
        network.anneal(&mut phases, self.config.t_lock, dt, rng);

        phases
            .iter()
            .map(|&p| msropm_graph::Color(phase_to_spin(p, &shil) as u16))
            .collect()
    }

    /// Runs `iterations` cycles and returns the best coloring found.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn solve_best_of<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        iterations: usize,
        rng: &mut R,
    ) -> Coloring {
        assert!(iterations > 0, "need at least one iteration");
        let mut best: Option<(f64, Coloring)> = None;
        for _ in 0..iterations {
            let c = self.solve(g, rng);
            let acc = c.accuracy(g);
            if best.as_ref().is_none_or(|(b, _)| acc > *b) {
                best = Some((acc, c));
            }
        }
        best.expect("at least one iteration ran").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast() -> Ropm3 {
        Ropm3::new(MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        })
    }

    #[test]
    fn produces_three_colors() {
        let g = generators::triangular_lattice(3, 3);
        let ropm = fast();
        let mut rng = StdRng::seed_from_u64(1);
        let c = ropm.solve(&g, &mut rng);
        assert!(c.color_range() <= 3);
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn colors_triangle_exactly() {
        // A single triangle needs exactly 3 colors; the 3-SHIL machine
        // should find the proper coloring within a few tries.
        let g = generators::complete_graph(3);
        let ropm = fast();
        let mut rng = StdRng::seed_from_u64(4);
        let c = ropm.solve_best_of(&g, 10, &mut rng);
        assert!(c.is_proper(&g), "triangle not 3-colored: {c:?}");
    }

    #[test]
    fn reasonable_accuracy_on_triangular_lattice() {
        let g = generators::triangular_lattice(5, 5);
        let ropm = fast();
        let mut rng = StdRng::seed_from_u64(9);
        let c = ropm.solve_best_of(&g, 10, &mut rng);
        let acc = c.accuracy(&g);
        assert!(acc > 0.8, "3-SHIL accuracy {acc}");
    }

    #[test]
    fn timing_is_single_cycle() {
        assert!((Ropm3::paper_default().time_per_run_ns() - 30.0).abs() < 1e-12);
    }
}
