//! Tabu search for max-cut (the ref-\[8\] quality baseline).

use msropm_graph::{Cut, Graph, NodeId};
use rand::Rng;

/// Single-flip tabu search: at each step flip the highest-gain non-tabu
/// vertex (aspiration: tabu moves that beat the global best are allowed),
/// remembering flipped vertices for `tenure` steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TabuMaxCut {
    /// Total moves to perform.
    pub iterations: usize,
    /// Tabu tenure (steps a flipped vertex stays frozen).
    pub tenure: usize,
}

impl TabuMaxCut {
    /// Creates a tabu searcher.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn new(iterations: usize, tenure: usize) -> Self {
        assert!(iterations > 0, "need at least one iteration");
        TabuMaxCut { iterations, tenure }
    }

    /// Runs from a random start and returns the best cut visited.
    pub fn solve<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Cut {
        let n = g.num_nodes();
        if n == 0 {
            return Cut::new(Vec::new());
        }
        let mut cut = Cut::random(n, rng);
        // gain[v] = cut improvement from flipping v.
        let mut gain: Vec<i64> = (0..n)
            .map(|i| {
                let v = NodeId::new(i);
                let mut same = 0i64;
                let mut cross = 0i64;
                for (w, _) in g.neighbors(v) {
                    if cut.side(w) == cut.side(v) {
                        same += 1;
                    } else {
                        cross += 1;
                    }
                }
                same - cross
            })
            .collect();
        let mut value = cut.cut_value(g) as i64;
        let mut best = cut.clone();
        let mut best_value = value;
        let mut tabu_until = vec![0usize; n];

        for step in 1..=self.iterations {
            // Pick best admissible move.
            let mut chosen: Option<(usize, i64)> = None;
            for v in 0..n {
                let admissible = tabu_until[v] < step || value + gain[v] > best_value;
                if admissible {
                    match chosen {
                        Some((_, g_best)) if gain[v] <= g_best => {}
                        _ => chosen = Some((v, gain[v])),
                    }
                }
            }
            let Some((v, g_v)) = chosen else {
                break; // everything tabu (tiny graphs with huge tenure)
            };
            // Flip v; update gains of v and neighbours.
            let v_id = NodeId::new(v);
            cut.flip(v_id);
            value += g_v;
            gain[v] = -g_v;
            for (w, _) in g.neighbors(v_id) {
                // After the flip, w's relation to v toggled: if now same
                // side, flipping w would separate them (gain +1 -> ...).
                let delta = if cut.side(w) == cut.side(v_id) { 2 } else { -2 };
                gain[w.index()] += delta;
            }
            tabu_until[v] = step + self.tenure;
            if value > best_value {
                best_value = value;
                best = cut.clone();
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::cut::exact_max_cut_bruteforce;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_exact_optimum_on_small_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        for g in [
            generators::cycle_graph(7),
            generators::kings_graph(3, 3),
            generators::complete_graph(6),
            generators::complete_bipartite(4, 4),
        ] {
            let (_, exact) = exact_max_cut_bruteforce(&g);
            let tabu = TabuMaxCut::new(500, 7);
            let cut = tabu.solve(&g, &mut rng);
            assert_eq!(cut.cut_value(&g), exact, "suboptimal on {g}");
        }
    }

    #[test]
    fn reaches_stripe_quality_on_kings_graph() {
        let g = generators::kings_graph(7, 7);
        let stripe = msropm_graph::cut::kings_stripe_cut(7, 7).cut_value(&g);
        let tabu = TabuMaxCut::new(3000, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let cut = tabu.solve(&g, &mut rng);
        assert!(
            cut.cut_value(&g) >= stripe,
            "tabu {} below stripe {stripe}",
            cut.cut_value(&g)
        );
    }

    #[test]
    fn incremental_gains_stay_consistent() {
        // After a run, recompute gains from scratch and compare.
        let g = generators::kings_graph(4, 4);
        let tabu = TabuMaxCut::new(200, 5);
        let mut rng = StdRng::seed_from_u64(7);
        let cut = tabu.solve(&g, &mut rng);
        // The returned best cut must at least be 1-flip consistent in value.
        let val = cut.cut_value(&g);
        assert!(val > 0);
    }

    #[test]
    fn empty_and_single_node() {
        let tabu = TabuMaxCut::new(10, 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(tabu.solve(&Graph::empty(0), &mut rng).len(), 0);
        let single = Graph::empty(1);
        assert_eq!(tabu.solve(&single, &mut rng).len(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::kings_graph(4, 4);
        let tabu = TabuMaxCut::new(100, 5);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            tabu.solve(&g, &mut rng)
        };
        assert_eq!(run(5).as_slice(), run(5).as_slice());
    }
}
