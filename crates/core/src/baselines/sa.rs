//! Simulated annealing on the Potts Hamiltonian (classical baseline).

use msropm_graph::{Color, Coloring, Graph, NodeId};
use rand::Rng;

/// Metropolis simulated annealing for graph K-coloring: single-vertex color
/// moves, geometric cooling, energy = number of conflicting edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealingColoring {
    /// Number of colors.
    pub num_colors: usize,
    /// Full sweeps (each sweep proposes one move per vertex).
    pub sweeps: usize,
    /// Initial temperature (in conflict-count units).
    pub t_start: f64,
    /// Final temperature.
    pub t_end: f64,
}

impl SimulatedAnnealingColoring {
    /// A reasonable default: cool from 2.0 to 0.05 over `sweeps` sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `num_colors < 2` or `sweeps == 0`.
    pub fn new(num_colors: usize, sweeps: usize) -> Self {
        assert!(num_colors >= 2, "need at least two colors");
        assert!(sweeps > 0, "need at least one sweep");
        SimulatedAnnealingColoring {
            num_colors,
            sweeps,
            t_start: 2.0,
            t_end: 0.05,
        }
    }

    /// Runs one annealing schedule and returns the best coloring visited.
    pub fn solve<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Coloring {
        let n = g.num_nodes();
        let mut coloring = Coloring::random(n, self.num_colors, rng);
        if n == 0 {
            return coloring;
        }
        let mut energy = coloring.conflicts(g) as i64;
        let mut best = coloring.clone();
        let mut best_energy = energy;
        let cooling = if self.sweeps > 1 {
            (self.t_end / self.t_start).powf(1.0 / (self.sweeps - 1) as f64)
        } else {
            1.0
        };
        let mut temp = self.t_start;
        for _ in 0..self.sweeps {
            for _ in 0..n {
                let v = NodeId::new(rng.gen_range(0..n));
                let old = coloring.color(v);
                let mut new = Color(rng.gen_range(0..self.num_colors) as u16);
                while new == old && self.num_colors > 1 {
                    new = Color(rng.gen_range(0..self.num_colors) as u16);
                }
                // Delta = conflicts gained - conflicts lost at v.
                let mut delta = 0i64;
                for (w, _) in g.neighbors(v) {
                    let cw = coloring.color(w);
                    if cw == new {
                        delta += 1;
                    }
                    if cw == old {
                        delta -= 1;
                    }
                }
                let accept = delta <= 0 || rng.gen::<f64>() < (-(delta as f64) / temp).exp();
                if accept {
                    coloring.set_color(v, new);
                    energy += delta;
                    if energy < best_energy {
                        best_energy = energy;
                        best = coloring.clone();
                    }
                }
            }
            temp *= cooling;
            if best_energy == 0 {
                break;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn solves_small_kings_graph_exactly() {
        let g = generators::kings_graph(5, 5);
        let sa = SimulatedAnnealingColoring::new(4, 300);
        let mut rng = StdRng::seed_from_u64(2);
        let c = sa.solve(&g, &mut rng);
        assert!(c.is_proper(&g), "SA should 4-color a 5x5 King's graph");
    }

    #[test]
    fn three_colors_triangular_lattice() {
        let g = generators::triangular_lattice(4, 4);
        let sa = SimulatedAnnealingColoring::new(3, 400);
        let mut rng = StdRng::seed_from_u64(5);
        let c = sa.solve(&g, &mut rng);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn infeasible_palette_still_returns_best_effort() {
        // K5 with 2 colors: best possible leaves >= 4 conflicts... actually
        // best 2-coloring of K5 leaves C(3,2)+C(2,2)=4 conflicts.
        let g = generators::complete_graph(5);
        let sa = SimulatedAnnealingColoring::new(2, 100);
        let mut rng = StdRng::seed_from_u64(1);
        let c = sa.solve(&g, &mut rng);
        assert_eq!(c.conflicts(&g), 4, "optimal infeasible energy");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generators::kings_graph(4, 4);
        let sa = SimulatedAnnealingColoring::new(4, 50);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            sa.solve(&g, &mut rng)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(0);
        let sa = SimulatedAnnealingColoring::new(4, 10);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sa.solve(&g, &mut rng).len(), 0);
    }
}
