//! Single-stage ring-oscillator Ising machine (ROIM) for max-cut.
//!
//! The class of machine in the paper's refs \[7\]/\[8\]: couplings anneal the
//! array, one SHIL binarizes, the readout is a 2-partition. Implemented as
//! a 2-color [`Msropm`], which degenerates to exactly that schedule — the
//! multi-stage machine is a strict superset of the ROIM.

use crate::config::MsropmConfig;
use crate::machine::Msropm;
use msropm_graph::{Cut, Graph};
use rand::Rng;

/// A single-stage oscillator Ising machine solving max-cut.
#[derive(Debug, Clone)]
pub struct RoimMaxCut {
    config: MsropmConfig,
}

impl RoimMaxCut {
    /// Creates a ROIM with the given dynamics; `config.num_colors` is
    /// forced to 2 (one stage).
    pub fn new(config: MsropmConfig) -> Self {
        RoimMaxCut {
            config: config.with_num_colors(2),
        }
    }

    /// The paper-default dynamics.
    pub fn paper_default() -> Self {
        RoimMaxCut::new(MsropmConfig::paper_default().with_num_colors(2))
    }

    /// Time per run (ns): one stage of init + anneal + lock (30 ns with
    /// paper timings).
    pub fn time_per_run_ns(&self) -> f64 {
        self.config.total_time_ns()
    }

    /// Runs one annealing cycle and returns the resulting cut.
    pub fn solve<R: Rng + ?Sized>(&self, g: &Graph, rng: &mut R) -> Cut {
        let mut machine = Msropm::with_frequency_spread(g, self.config, rng);
        let sol = machine.solve(rng);
        sol.stages[0].partition.clone()
    }

    /// Runs `iterations` cycles and returns the best cut found.
    pub fn solve_best_of<R: Rng + ?Sized>(&self, g: &Graph, iterations: usize, rng: &mut R) -> Cut {
        assert!(iterations > 0, "need at least one iteration");
        let mut best: Option<(usize, Cut)> = None;
        for _ in 0..iterations {
            let cut = self.solve(g, rng);
            let v = cut.cut_value(g);
            if best.as_ref().is_none_or(|(bv, _)| v > *bv) {
                best = Some((v, cut));
            }
        }
        best.expect("at least one iteration ran").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast() -> RoimMaxCut {
        RoimMaxCut::new(MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        })
    }

    #[test]
    fn single_stage_timing_is_30ns() {
        let roim = RoimMaxCut::paper_default();
        assert!((roim.time_per_run_ns() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn cuts_bipartite_graph_fully() {
        let g = generators::complete_bipartite(4, 4);
        let roim = fast();
        let mut rng = StdRng::seed_from_u64(2);
        let cut = roim.solve_best_of(&g, 5, &mut rng);
        assert_eq!(cut.cut_value(&g), g.num_edges());
    }

    #[test]
    fn near_optimal_on_small_kings() {
        let g = generators::kings_graph(4, 4);
        let (_, exact) = msropm_graph::cut::exact_max_cut_bruteforce(&g);
        let roim = fast();
        let mut rng = StdRng::seed_from_u64(6);
        let cut = roim.solve_best_of(&g, 8, &mut rng);
        let ratio = cut.cut_value(&g) as f64 / exact as f64;
        assert!(ratio >= 0.9, "ROIM quality {ratio}");
    }
}
