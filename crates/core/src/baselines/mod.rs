//! Baseline solvers for the Table-2 comparison.
//!
//! - [`Ropm3`]: a single-stage 3-SHIL ring-oscillator Potts machine solving
//!   3-coloring — the architecture of the paper's ref \[14\], against which
//!   the multi-stage approach is compared.
//! - [`RoimMaxCut`]: a single-stage oscillator Ising machine solving
//!   max-cut (the paper's refs \[8\]/\[9\] class of machines).
//! - [`SimulatedAnnealingColoring`]: classical SA on the Potts Hamiltonian,
//!   the standard software baseline.
//! - [`TabuMaxCut`]: tabu search for max-cut (the quality baseline used by
//!   ref \[8\], also the default large-graph cut reference here).

mod roim;
mod ropm3;
mod sa;
mod tabu;

pub use roim::RoimMaxCut;
pub use ropm3::Ropm3;
pub use sa::SimulatedAnnealingColoring;
pub use tabu::TabuMaxCut;
