//! Quality metrics used by the paper's evaluation (§4).

use msropm_graph::{Coloring, Graph};

/// The paper's 4-coloring accuracy: fraction of properly colored edges
/// (delegates to [`Coloring::accuracy`]; re-exported here so experiment
/// code reads like the paper).
pub fn coloring_accuracy(coloring: &Coloring, g: &Graph) -> f64 {
    coloring.accuracy(g)
}

/// Stage-1 (max-cut) accuracy: achieved cut size normalized by the
/// reference (exact or best-known) cut size — the Fig. 5(b) metric.
///
/// # Panics
///
/// Panics if `reference == 0`.
pub fn max_cut_accuracy(cut_value: usize, reference: usize) -> f64 {
    assert!(reference > 0, "cut reference must be positive");
    cut_value as f64 / reference as f64
}

/// Table 1's "search space" label: `K^N` possible spin states.
pub fn search_space_label(num_colors: usize, num_nodes: usize) -> String {
    format!("{num_colors}^{num_nodes}")
}

/// log10 of the search-space size `K^N` (Table 1 comparison aid; the raw
/// number overflows for every paper benchmark).
pub fn search_space_log10(num_colors: usize, num_nodes: usize) -> f64 {
    num_nodes as f64 * (num_colors as f64).log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;

    #[test]
    fn accuracy_delegation() {
        let g = generators::path_graph(3);
        let c = Coloring::from_indices([0, 1, 0]);
        assert_eq!(coloring_accuracy(&c, &g), 1.0);
    }

    #[test]
    fn maxcut_accuracy_ratio() {
        assert_eq!(max_cut_accuracy(90, 100), 0.9);
        assert_eq!(max_cut_accuracy(100, 100), 1.0);
    }

    #[test]
    #[should_panic(expected = "reference must be positive")]
    fn zero_reference_rejected() {
        max_cut_accuracy(1, 0);
    }

    #[test]
    fn search_space_formatting() {
        // Table 1 rows: 4^49, 4^400, 4^1024, 4^2116.
        assert_eq!(search_space_label(4, 49), "4^49");
        assert_eq!(search_space_label(4, 2116), "4^2116");
        assert!((search_space_log10(4, 49) - 49.0 * 4f64.log10()).abs() < 1e-12);
        assert!(search_space_log10(4, 2116) > 1273.0);
    }
}
