//! The experiment runner: repeated iterations, statistics, and the data
//! behind Fig. 5 and Table 1.
//!
//! §4: *"40 iterations (i.e. repeated runs) are performed for each problem,
//! allowing the MSROPM to explore the solution space"*; the best solution
//! among iterations is the reported answer. Iterations are independent;
//! the runner advances them as interleaved multi-replica batches (one SoA
//! sweep per worker thread, see [`crate::batch`]), which is bit-identical
//! to — and much faster than — the sequential per-iteration loop that
//! [`ExperimentRunner::run_sequential`] retains as the reference.

use crate::config::MsropmConfig;
use crate::machine::{Msropm, MsropmSolution};
use crate::metrics::max_cut_accuracy;
use msropm_graph::metrics::{pairwise_hamming, pearson, Summary};
use msropm_graph::{Coloring, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Where the stage-1 max-cut normalizer (Fig. 5(b) denominator) comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutReference {
    /// Use this exact/best-known cut value.
    Value(usize),
    /// Decide automatically: exact branch-and-bound for graphs of ≤ 22
    /// nodes, otherwise the best cut found by tabu search restarts.
    Auto,
}

/// The outcome of one iteration (one complete multi-stage run).
#[derive(Debug, Clone)]
pub struct IterationOutcome {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// RNG seed used for this iteration.
    pub seed: u64,
    /// The coloring produced.
    pub coloring: Coloring,
    /// Edge-satisfaction accuracy (Fig. 5(a) metric).
    pub accuracy: f64,
    /// Stage-1 cut size.
    pub stage1_cut: usize,
    /// Stage-1 cut normalized by the reference (Fig. 5(b) metric).
    pub stage1_accuracy: f64,
}

/// Aggregate results of an experiment (one problem, many iterations).
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Per-iteration outcomes, in iteration order.
    pub outcomes: Vec<IterationOutcome>,
    /// The max-cut normalizer used for stage-1 accuracy.
    pub cut_reference: usize,
    /// Schedule time per iteration (ns).
    pub time_per_iteration_ns: f64,
}

impl ExperimentReport {
    /// Final-accuracy series (Fig. 5(a) y-values, one per iteration).
    pub fn accuracies(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.accuracy).collect()
    }

    /// Stage-1 accuracy series (Fig. 5(b) y-values).
    pub fn stage1_accuracies(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.stage1_accuracy).collect()
    }

    /// Best (top) accuracy over iterations — Table 1's "Top accuracy".
    pub fn best_accuracy(&self) -> f64 {
        self.accuracies().into_iter().fold(0.0, f64::max)
    }

    /// Summary statistics of the final accuracy.
    pub fn accuracy_summary(&self) -> Summary {
        Summary::of(&self.accuracies()).expect("at least one iteration")
    }

    /// The best solution found (ties broken by earliest iteration).
    pub fn best_solution(&self) -> &IterationOutcome {
        self.outcomes
            .iter()
            .max_by(|a, b| {
                a.accuracy
                    .partial_cmp(&b.accuracy)
                    .expect("accuracies are finite")
                    .then(b.iteration.cmp(&a.iteration))
            })
            .expect("at least one iteration")
    }

    /// Pairwise normalized Hamming distances between all iteration
    /// solutions (Fig. 5(c) data).
    pub fn hamming_distances(&self) -> Vec<f64> {
        let sols: Vec<Coloring> = self.outcomes.iter().map(|o| o.coloring.clone()).collect();
        pairwise_hamming(&sols)
    }

    /// Histogram of [`ExperimentReport::hamming_distances`] over `bins`
    /// equal buckets of `[0, 1]`.
    pub fn hamming_histogram(&self, bins: usize) -> Vec<usize> {
        msropm_graph::metrics::histogram_unit_interval(&self.hamming_distances(), bins)
    }

    /// Pearson correlation between stage-1 and final accuracy across
    /// iterations (§4.1 reports this is positive). `None` if degenerate.
    pub fn stage1_final_correlation(&self) -> Option<f64> {
        pearson(&self.stage1_accuracies(), &self.accuracies())
    }
}

/// Runs `iterations` independent solves of one problem.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    config: MsropmConfig,
    iterations: usize,
    base_seed: u64,
    cut_reference: CutReference,
    threads: usize,
}

impl ExperimentRunner {
    /// Creates a runner with the paper's 40 iterations and automatic cut
    /// reference.
    pub fn new(config: MsropmConfig) -> Self {
        ExperimentRunner {
            config,
            iterations: 40,
            base_seed: 0x5EED,
            cut_reference: CutReference::Auto,
            threads: crate::pool::num_cores(),
        }
    }

    /// Sets the number of iterations (paper: 40).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "need at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Sets the base RNG seed (iteration `i` uses `base_seed + i`).
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the stage-1 cut normalizer policy.
    pub fn cut_reference(mut self, reference: CutReference) -> Self {
        self.cut_reference = reference;
        self
    }

    /// Caps worker threads (default: available parallelism).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    fn resolve_cut_reference(&self, g: &Graph) -> usize {
        match self.cut_reference {
            CutReference::Value(v) => v.max(1),
            CutReference::Auto => {
                if g.num_nodes() <= 22 {
                    msropm_sat::branch_and_bound_max_cut(g, u64::MAX)
                        .value
                        .max(1)
                } else {
                    // Best of several tabu restarts.
                    let mut rng = StdRng::seed_from_u64(self.base_seed ^ 0xC0FFEE);
                    let tabu = crate::baselines::TabuMaxCut::new(20 * g.num_nodes(), 10);
                    let mut best = 0;
                    for _ in 0..5 {
                        let cut = tabu.solve(g, &mut rng);
                        best = best.max(cut.cut_value(g));
                    }
                    best.max(1)
                }
            }
        }
    }

    /// The per-iteration RNG seeds (`base_seed + i`).
    fn seeds(&self) -> Vec<u64> {
        (0..self.iterations)
            .map(|i| self.base_seed.wrapping_add(i as u64))
            .collect()
    }

    /// Assembles the report from per-iteration solutions — the single
    /// place both execution paths ([`ExperimentRunner::run`] and
    /// [`ExperimentRunner::run_sequential`]) turn raw solutions into
    /// [`IterationOutcome`]s, so the two can never drift in metric
    /// derivation, seed bookkeeping or report shape.
    fn assemble_report(
        &self,
        g: &Graph,
        reference: usize,
        solutions: Vec<MsropmSolution>,
    ) -> ExperimentReport {
        let outcomes = solutions
            .into_iter()
            .zip(self.seeds())
            .enumerate()
            .map(|(iteration, (sol, seed))| {
                let accuracy = sol.coloring.accuracy(g);
                let stage1_cut = sol.stages[0].cut_value;
                IterationOutcome {
                    iteration,
                    seed,
                    coloring: sol.coloring,
                    accuracy,
                    stage1_cut,
                    stage1_accuracy: max_cut_accuracy(stage1_cut, reference).min(1.0),
                }
            })
            .collect();
        ExperimentReport {
            outcomes,
            cut_reference: reference,
            time_per_iteration_ns: self.config.total_time_ns(),
        }
    }

    /// Runs the experiment on `g` and aggregates the report.
    ///
    /// Iterations are advanced as multi-replica batches sharded over the
    /// configured thread count — results are bit-identical to
    /// [`ExperimentRunner::run_sequential`] regardless of `threads`.
    pub fn run(&self, g: &Graph) -> ExperimentReport {
        self.config.validate();
        let reference = self.resolve_cut_reference(g);
        let threads = self.threads.min(self.iterations).max(1);
        // The no-spread base network; per-replica frequency offsets are
        // sampled inside the batch driver from each replica's own RNG,
        // matching `Msropm::with_frequency_spread` + `solve`.
        let network = self.config.build_network(g);
        let seeds = self.seeds();
        let solutions =
            crate::batch::solve_batch_sharded(g, &self.config, &network, &seeds, true, threads);
        self.assemble_report(g, reference, solutions)
    }

    /// The reference implementation of [`ExperimentRunner::run`]: one
    /// machine per iteration, solved sequentially on a single thread.
    /// Kept for verification (the batch determinism tests pin `run` to
    /// this) and as the fallback shape for profiling single iterations.
    pub fn run_sequential(&self, g: &Graph) -> ExperimentReport {
        let reference = self.resolve_cut_reference(g);
        let config = self.config;
        let solutions = self
            .seeds()
            .into_iter()
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut machine = Msropm::with_frequency_spread(g, config, &mut rng);
                machine.solve(&mut rng)
            })
            .collect();
        self.assemble_report(g, reference, solutions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;

    fn fast_config() -> MsropmConfig {
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    #[test]
    fn batched_run_matches_sequential_reference() {
        let g = generators::kings_graph(4, 4);
        let runner = ExperimentRunner::new(fast_config())
            .iterations(6)
            .base_seed(17)
            .threads(3);
        let batched = runner.run(&g);
        let sequential = runner.run_sequential(&g);
        assert_eq!(batched.accuracies(), sequential.accuracies());
        for (a, b) in batched.outcomes.iter().zip(&sequential.outcomes) {
            assert_eq!(a.coloring, b.coloring);
            assert_eq!(a.stage1_cut, b.stage1_cut);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn report_on_small_kings_graph() {
        let g = generators::kings_graph(4, 4);
        let report = ExperimentRunner::new(fast_config())
            .iterations(8)
            .base_seed(42)
            .run(&g);
        assert_eq!(report.outcomes.len(), 8);
        assert!((report.time_per_iteration_ns - 60.0).abs() < 1e-12);
        assert!(report.best_accuracy() > 0.85);
        assert!(report.cut_reference > 0);
        // Iterations are ordered and seeded deterministically.
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.iteration, i);
            assert_eq!(o.seed, 42 + i as u64);
        }
        // Stage-1 accuracy is a valid normalized ratio.
        for o in &report.outcomes {
            assert!((0.0..=1.0).contains(&o.stage1_accuracy));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::kings_graph(3, 3);
        let run = || {
            ExperimentRunner::new(fast_config())
                .iterations(4)
                .base_seed(7)
                .threads(2)
                .run(&g)
                .accuracies()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = generators::kings_graph(3, 3);
        let run = |threads| {
            ExperimentRunner::new(fast_config())
                .iterations(6)
                .base_seed(3)
                .threads(threads)
                .run(&g)
                .accuracies()
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn hamming_and_correlation_shapes() {
        let g = generators::kings_graph(4, 4);
        let report = ExperimentRunner::new(fast_config())
            .iterations(6)
            .base_seed(1)
            .run(&g);
        assert_eq!(report.hamming_distances().len(), 15); // C(6,2)
        let hist = report.hamming_histogram(10);
        assert_eq!(hist.iter().sum::<usize>(), 15);
        // Correlation may be None for degenerate samples but must be in
        // [-1, 1] when present.
        if let Some(r) = report.stage1_final_correlation() {
            assert!((-1.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn explicit_cut_reference() {
        let g = generators::kings_graph(3, 3);
        let report = ExperimentRunner::new(fast_config())
            .iterations(2)
            .cut_reference(CutReference::Value(1000))
            .run(&g);
        assert_eq!(report.cut_reference, 1000);
        for o in &report.outcomes {
            assert!(o.stage1_accuracy < 0.1, "normalized by huge reference");
        }
    }

    #[test]
    fn best_solution_is_argmax() {
        let g = generators::kings_graph(4, 4);
        let report = ExperimentRunner::new(fast_config())
            .iterations(5)
            .base_seed(5)
            .run(&g);
        let best = report.best_solution();
        assert_eq!(best.accuracy, report.best_accuracy());
    }
}
