//! The multi-stage Potts machine itself.
//!
//! Integration runs on the compiled coupling kernel
//! ([`msropm_osc::kernel`]): the machine recompiles the gating state at
//! every window boundary (the only instants it can change) and steps each
//! window with a reusable, allocation-free [`KernelIntegrator`]. The
//! multi-replica entry point [`Msropm::solve_batch`] advances many
//! independent iterations in one interleaved sweep (see
//! [`crate::batch`]).

use crate::config::{LaneConfig, MsropmConfig, ReinitMode};
use crate::schedule::{Schedule, Window, WindowKind};
use msropm_graph::{Color, Coloring, Cut, EdgeMask, Graph};
use msropm_osc::kernel::KernelIntegrator;
use msropm_osc::lock::phase_to_spin;
use msropm_osc::shil::{stage_shil_phase, Shil};
use msropm_osc::PhaseNetwork;
use rand::Rng;
use std::f64::consts::TAU;

/// Readout record of one solution stage.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// 1-based stage index.
    pub stage: usize,
    /// The binarized bit of every oscillator at this stage's readout.
    pub partition: Cut,
    /// Number of *active* (still-coupled) edges cut by this stage.
    pub cut_value: usize,
    /// Number of edges that were active during this stage.
    pub active_edges: usize,
    /// Worst distance from any phase to its SHIL target at readout (rad);
    /// small values mean the SHIL window achieved discretization.
    pub max_lock_error: f64,
}

/// The outcome of one complete multi-stage run.
#[derive(Debug, Clone)]
pub struct MsropmSolution {
    /// Final color of every vertex (`2^k` colors from `k` stage bits; the
    /// stage-1 bit is the most significant).
    pub coloring: Coloring,
    /// Per-stage readout records; `stages\[0\]` is the stage-1 max-cut whose
    /// quality Fig. 5(b) tracks.
    pub stages: Vec<StageRecord>,
    /// Final oscillator phases (rad), locked at the color target phases.
    pub final_phases: Vec<f64>,
    /// Total schedule time (ns); 60 ns for 4 colors with paper timings.
    pub total_time_ns: f64,
}

impl MsropmSolution {
    /// The ideal target phase of color `c` among `num_colors = 2^k`.
    ///
    /// Derived from the stage recurrence: during stage `s` a node in group
    /// `g` locks at `π·g/2^(s−1) + π·b_s`, so after `k` stages
    /// `θ = π·b_k + Σ_{s<k} π·b_s/2^s` (`b₁` = stage-1 bit = MSB of `c`).
    /// For 4 colors this yields {0°, 180°, 90°, 270°} for colors 0–3 —
    /// exactly the paper's Fig. 2(e) assignment.
    pub fn target_phase(color: usize, num_colors: usize) -> f64 {
        assert!(num_colors.is_power_of_two() && num_colors >= 2);
        assert!(color < num_colors);
        let k = num_colors.trailing_zeros() as usize;
        let pi = std::f64::consts::PI;
        let mut theta = 0.0;
        for s in 1..=k {
            let bit = ((color >> (k - s)) & 1) as f64;
            if s == k {
                theta += bit * pi;
            } else {
                theta += bit * pi / 2f64.powi(s as i32);
            }
        }
        theta.rem_euclid(TAU)
    }
}

/// The Multi-Stage coupled Ring-Oscillator Potts Machine (paper §3).
///
/// Owns the phase-domain oscillator array plus the control state
/// (`P_EN` edge mask, per-node `SHIL_SEL` groups) and executes the
/// divide-and-color schedule. Each call to [`Msropm::solve`] performs one
/// complete multi-stage run — one "iteration" in the paper's terminology.
#[derive(Debug, Clone)]
pub struct Msropm {
    graph: Graph,
    config: MsropmConfig,
    network: PhaseNetwork,
    /// Reusable stepper scratch (drift + edge buffers), hoisted out of the
    /// per-window loop so a full run allocates nothing while integrating.
    integrator: KernelIntegrator,
}

impl Msropm {
    /// Maps `graph` onto a fresh oscillator array configured by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`MsropmConfig::validate`]).
    pub fn new(graph: &Graph, config: MsropmConfig) -> Self {
        config.validate();
        let network = config.build_network(graph);
        Msropm {
            graph: graph.clone(),
            config,
            network,
            integrator: KernelIntegrator::new(),
        }
    }

    /// Like [`Msropm::new`] but samples per-oscillator frequency offsets
    /// (process variation) from `rng`.
    pub fn with_frequency_spread<R: Rng + ?Sized>(
        graph: &Graph,
        config: MsropmConfig,
        rng: &mut R,
    ) -> Self {
        config.validate();
        let network = config.build_network_with_spread(graph, rng);
        Msropm {
            graph: graph.clone(),
            config,
            network,
            integrator: KernelIntegrator::new(),
        }
    }

    /// The problem graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The machine configuration.
    pub fn config(&self) -> &MsropmConfig {
        &self.config
    }

    /// The derived control schedule.
    pub fn schedule(&self) -> Schedule {
        Schedule::from_config(&self.config)
    }

    /// Marks an oscillator as defective (its per-ring `L_EN` held low):
    /// the ring freezes, exchanges no coupling, and its readout color is an
    /// arbitrary stuck value. Used for yield / fault-tolerance studies.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_oscillator_enabled(&mut self, node: usize, on: bool) {
        self.network.set_node_enabled(node, on);
    }

    /// Number of functional (enabled) oscillators.
    pub fn num_functional_oscillators(&self) -> usize {
        self.network.num_enabled_nodes()
    }

    /// Executes one complete multi-stage run.
    ///
    /// With [`KernelBackend::F64`](crate::KernelBackend::F64) this is
    /// the scalar reference path (and the anchor of the batch engine's
    /// bit-identity contract). With
    /// [`KernelBackend::Fixed`](crate::KernelBackend::Fixed) the run
    /// executes as a one-lane fixed-point batch: one `u64` is drawn
    /// from `rng` and becomes the lane seed, so repeated solves from
    /// one RNG still explore independent trajectories and a run is
    /// reproducible from the RNG state alone.
    pub fn solve<R: Rng + ?Sized>(&mut self, rng: &mut R) -> MsropmSolution {
        if self.config.backend == crate::KernelBackend::Fixed {
            let seed = rng.gen::<u64>();
            let lanes = [crate::LaneConfig::default()];
            let mut sols = self
                .solve_lanes(&lanes, &[seed], SolveOptions::new())
                .expect("no cancel token => never None");
            return sols.pop().expect("one lane yields one solution");
        }
        self.solve_observed(rng, |_, _, _| {})
    }

    /// Executes one run, invoking `observe(t_ns, window, phases)` at every
    /// integration step — the hook used to dump Fig. 3-style waveforms.
    ///
    /// Each window compiles the current gating state into a
    /// [`msropm_osc::CoupledKernel`] (compilation is O(n + m); the windows
    /// integrate thousands of steps) and runs on the machine's reusable
    /// integrator, so the whole multi-stage run performs no per-window
    /// heap allocation beyond the readout records it returns.
    ///
    /// # Panics
    ///
    /// Panics when the machine is configured with the fixed-point
    /// backend: the observer contract hands out per-step `&[f64]`
    /// radian phases, which only the float kernel produces. Waveform
    /// dumps of a fixed-point run are not supported; use
    /// [`Msropm::solve`] (which delegates to the batch engine) for
    /// its end-of-run readout instead.
    pub fn solve_observed<R, F>(&mut self, rng: &mut R, mut observe: F) -> MsropmSolution
    where
        R: Rng + ?Sized,
        F: FnMut(f64, &Window, &[f64]),
    {
        assert_eq!(
            self.config.backend,
            crate::KernelBackend::F64,
            "solve_observed streams f64 phase waveforms and only runs on the f64 backend"
        );
        let n = self.graph.num_nodes();
        let k = self.config.num_stages();
        let dt = self.config.dt;
        let schedule = self.schedule();

        // Startup: "ROSCs are initially turned on at random time instances"
        // => i.i.d. uniform phases before the first drift window.
        let mut phases = self.network.random_phases(rng);
        // SHIL_SEL state: accumulated group id per node.
        let mut groups = vec![0usize; n];
        // P_EN state: all couplings initially enabled.
        let mut mask = EdgeMask::all_enabled(&self.graph);
        self.network.apply_edge_mask(&mask);
        self.network.set_shil_enabled(false);

        let mut stages = Vec::with_capacity(k);
        let mut windows = schedule.windows().iter();
        // Per-stage buffers, hoisted out of the stage loop.
        let mut stage_shils: Vec<Shil> = Vec::with_capacity(1 << (k - 1));
        let mut bits: Vec<bool> = vec![false; n];

        for stage in 1..=k {
            let num_groups = 1usize << (stage - 1);

            // ---- Randomize window (couplings off, SHIL off) ----
            let w_init = windows.next().expect("schedule has init window");
            debug_assert_eq!(w_init.kind, WindowKind::Randomize);
            self.network.set_couplings_enabled(false);
            self.network.set_shil_enabled(false);
            match self.config.reinit {
                ReinitMode::UniformRandom => {
                    phases = self.network.random_phases(rng);
                    observe(w_init.t_end(), w_init, &phases);
                }
                ReinitMode::JitterDrift { sigma } => {
                    let saved = self.network.noise_amplitude();
                    self.network.set_noise(sigma);
                    let kernel = self.network.compile_kernel();
                    self.integrator.integrate_observed(
                        &kernel,
                        &mut phases,
                        w_init.t_start,
                        w_init.t_end(),
                        dt,
                        rng,
                        |t, y| observe(t, w_init, y),
                    );
                    self.network.set_noise(saved);
                }
            }

            // ---- Anneal window (couplings on, SHIL off) ----
            let w_anneal = windows.next().expect("schedule has anneal window");
            debug_assert_eq!(w_anneal.kind, WindowKind::Anneal);
            self.network.set_couplings_enabled(true);
            let kernel = self.network.compile_kernel();
            self.integrator.integrate_observed(
                &kernel,
                &mut phases,
                w_anneal.t_start,
                w_anneal.t_end(),
                dt,
                rng,
                |t, y| observe(t, w_anneal, y),
            );

            // ---- Lock window (couplings on, SHIL on) ----
            let w_lock = windows.next().expect("schedule has lock window");
            debug_assert_eq!(w_lock.kind, WindowKind::Lock);
            stage_shils.clear();
            stage_shils.extend(
                (0..num_groups).map(|g| {
                    Shil::order2(stage_shil_phase(g, num_groups), self.config.shil_strength)
                }),
            );
            for i in 0..n {
                self.network.set_shil_node(i, Some(stage_shils[groups[i]]));
            }
            self.network.set_shil_enabled(true);
            let mut kernel = self.network.compile_kernel();
            if self.config.shil_ramp {
                // Gradual discretization (OIM-style annealed SHIL), with
                // the observer threaded through the segmented ramp so
                // Fig. 3 waveform dumps see every step of ramped windows.
                self.integrator.integrate_ramped(
                    &mut kernel,
                    &mut phases,
                    w_lock.t_start,
                    w_lock.t_end(),
                    dt,
                    rng,
                    |f| f,
                    |t, y| observe(t, w_lock, y),
                );
            } else {
                self.integrator.integrate_observed(
                    &kernel,
                    &mut phases,
                    w_lock.t_start,
                    w_lock.t_end(),
                    dt,
                    rng,
                    |t, y| observe(t, w_lock, y),
                );
            }

            // ---- Readout (the DFF sampling at the end of the window) ----
            for i in 0..n {
                bits[i] = phase_to_spin(phases[i], &stage_shils[groups[i]]) == 1;
            }
            let worst_lock = (0..n)
                .map(|i| {
                    let shil = &stage_shils[groups[i]];
                    msropm_osc::lock::lock_error(phases[i], shil)
                })
                .fold(0.0f64, f64::max);
            let partition = Cut::new(bits.clone());
            let mut cut_value = 0usize;
            let mut active_edges = 0usize;
            for (e, u, v) in self.graph.edges() {
                if mask.is_enabled(e) {
                    active_edges += 1;
                    if bits[u.index()] != bits[v.index()] {
                        cut_value += 1;
                    }
                }
            }
            stages.push(StageRecord {
                stage,
                partition,
                cut_value,
                active_edges,
                max_lock_error: worst_lock,
            });

            // ---- Stage transition: latch SHIL_SEL, cut crossing couplings.
            for (i, &bit) in bits.iter().enumerate() {
                groups[i] = groups[i] * 2 + usize::from(bit);
            }
            for (e, u, v) in self.graph.edges() {
                if groups[u.index()] != groups[v.index()] {
                    mask.disable(e);
                }
            }
            self.network.apply_edge_mask(&mask);
            self.network.set_shil_enabled(false);
        }

        let coloring: Coloring = groups.iter().map(|&g| Color(g as u16)).collect();
        MsropmSolution {
            coloring,
            stages,
            final_phases: phases,
            total_time_ns: schedule.total_time_ns(),
        }
    }

    /// Solves `seeds.len()` independent replicas in one multi-replica
    /// (SoA) sweep, sharded over at most `threads` worker threads.
    ///
    /// Replica `i` is **bit-identical** to
    /// `self.clone().solve(&mut StdRng::seed_from_u64(seeds[i]))` — the
    /// batch kernel interleaves the replicas but performs the same
    /// floating-point operations on each, and every replica draws from
    /// its own seeded RNG in sequential order. Consequently the result is
    /// also independent of `threads` (replicas are sharded in disjoint
    /// contiguous ranges).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn solve_batch(&self, seeds: &[u64], threads: usize) -> Vec<MsropmSolution> {
        crate::batch::solve_batch_sharded(
            &self.graph,
            &self.config,
            &self.network,
            seeds,
            false,
            threads,
        )
    }

    /// Solves one **heterogeneous** batch: lane `i` runs the machine's
    /// configuration with `lanes[i]`'s overrides applied
    /// (see [`crate::config::LaneConfig`]), seeded by `seeds[i]` — the
    /// entry point for per-replica parameter sweeps.
    ///
    /// Lane `i` is **bit-identical** to
    /// `Msropm::new(graph, lanes[i].resolve(config)).solve(&mut
    /// StdRng::seed_from_u64(seeds[i]))` (with this machine's defective
    /// rings carried over), and all-default lanes reproduce
    /// [`Msropm::solve_batch`] exactly; both properties are tested in
    /// `tests/lane_equivalence.rs`. Results are independent of
    /// `threads`.
    ///
    /// For ranked sweeps with population restarts between stages, see
    /// [`crate::portfolio::PortfolioRunner`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, `lanes.len() != seeds.len()`, or a
    /// resolved lane configuration is invalid.
    pub fn solve_batch_lanes(
        &self,
        lanes: &[LaneConfig],
        seeds: &[u64],
        threads: usize,
    ) -> Vec<MsropmSolution> {
        self.solve_lanes(lanes, seeds, SolveOptions::new().threads(threads))
            .expect("no cancel token => never None")
    }

    /// Like [`Msropm::solve_batch_lanes`] with `threads = 1`, but running
    /// in the caller's long-lived [`crate::batch::BatchArena`]: repeated
    /// calls reuse the integrator scratch and per-run state buffers, so a
    /// worker solving many jobs back to back allocates (almost) nothing
    /// per job. Results are bit-identical to [`Msropm::solve_batch_lanes`]
    /// regardless of the arena's history — this is the job-server unit of
    /// work (see [`crate::job::BatchJob::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() != seeds.len()` or a resolved lane
    /// configuration is invalid.
    pub fn solve_batch_lanes_arena(
        &self,
        lanes: &[LaneConfig],
        seeds: &[u64],
        arena: &mut crate::batch::BatchArena,
    ) -> Vec<MsropmSolution> {
        self.solve_lanes(lanes, seeds, SolveOptions::new().arena(arena))
            .expect("no cancel token => never None")
    }

    /// Like [`Msropm::solve_batch_lanes_arena`], but checking `cancel`
    /// at every non-final stage boundary; returns `None` when the run
    /// was abandoned there. Runs that complete are **bit-identical** to
    /// the uncancellable entry (the check happens strictly between
    /// stages, after all RNG draws of the finished stage and before any
    /// of the next). This is the job-server cancellation path — see
    /// [`crate::job::BatchJob::run_cancellable`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() != seeds.len()` or a resolved lane
    /// configuration is invalid.
    pub fn solve_batch_lanes_arena_cancellable(
        &self,
        lanes: &[LaneConfig],
        seeds: &[u64],
        arena: &mut crate::batch::BatchArena,
        cancel: &crate::job::CancelToken,
    ) -> Option<Vec<MsropmSolution>> {
        self.solve_lanes(
            lanes,
            seeds,
            SolveOptions::new().arena(arena).cancel(cancel),
        )
    }

    /// Generalized cancellable batch solve: `cancelled` is polled at
    /// every non-final stage boundary; returning `true` abandons the
    /// run (→ `None`). Backs [`Msropm::solve_batch_lanes_arena_cancellable`]
    /// and lets tests and deadline-based policies (see
    /// [`crate::job::BatchJob::run_cancellable_with`]) drive the
    /// boundary check deterministically. Runs that complete are
    /// **bit-identical** to the uncancellable entry regardless of what
    /// the closure observes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() != seeds.len()` or a resolved lane
    /// configuration is invalid.
    pub fn solve_batch_lanes_arena_cancellable_with<F>(
        &self,
        lanes: &[LaneConfig],
        seeds: &[u64],
        arena: &mut crate::batch::BatchArena,
        mut cancelled: F,
    ) -> Option<Vec<MsropmSolution>>
    where
        F: FnMut() -> bool,
    {
        self.config.validate();
        if seeds.is_empty() {
            return Some(Vec::new());
        }
        crate::batch::solve_lane_range_hooked(
            &self.graph,
            &self.config,
            &self.network,
            lanes,
            seeds,
            false,
            arena,
            |_, _| {
                if cancelled() {
                    std::ops::ControlFlow::Break(())
                } else {
                    std::ops::ControlFlow::Continue(())
                }
            },
        )
    }

    /// Like [`Msropm::solve_batch_lanes_arena`], but sharding the lane
    /// range across `shards` tasks on `pool` — the intra-job parallel
    /// solve path. Results are **bit-identical** at every shard count
    /// (lane seeds are per-lane; shards only partition the range — see
    /// [`crate::batch`]'s determinism contract), and `shards = 1`
    /// executes the exact unsharded path in `arena`'s first slot.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, `lanes.len() != seeds.len()`, a
    /// resolved lane configuration is invalid, or a shard task
    /// panicked.
    pub fn solve_batch_lanes_arena_sharded(
        &self,
        lanes: &[LaneConfig],
        seeds: &[u64],
        shards: usize,
        arena: &mut crate::batch::ShardedArena,
        pool: &crate::pool::ShardPool,
    ) -> Vec<MsropmSolution> {
        self.solve_lanes(
            lanes,
            seeds,
            SolveOptions::new().sharded(shards, arena, pool),
        )
        .expect("no cancel token => never None")
    }

    /// Sharded counterpart of
    /// [`Msropm::solve_batch_lanes_arena_cancellable_with`]: `cancelled`
    /// is polled on the dispatching thread at every non-final stage
    /// boundary — after all shards have joined, before any next-stage
    /// task is dispatched — so cancellation semantics are identical at
    /// any shard width. Returns `None` when the run was abandoned.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`Msropm::solve_batch_lanes_arena_sharded`].
    pub fn solve_batch_lanes_arena_sharded_cancellable_with<F>(
        &self,
        lanes: &[LaneConfig],
        seeds: &[u64],
        shards: usize,
        arena: &mut crate::batch::ShardedArena,
        pool: &crate::pool::ShardPool,
        mut cancelled: F,
    ) -> Option<Vec<MsropmSolution>>
    where
        F: FnMut() -> bool,
    {
        self.config.validate();
        if seeds.is_empty() {
            return Some(Vec::new());
        }
        crate::batch::solve_lanes_sharded_hooked(
            &self.graph,
            &self.config,
            &self.network,
            lanes,
            seeds,
            false,
            shards,
            arena,
            pool,
            |_, _| {
                if cancelled() {
                    std::ops::ControlFlow::Break(())
                } else {
                    std::ops::ControlFlow::Continue(())
                }
            },
        )
    }

    /// Unified heterogeneous batch solve: one entry point behind which
    /// every `solve_batch_lanes*` variant now lives. The execution
    /// strategy is picked by [`SolveOptions`] — scratch reuse via
    /// `arena`, cooperative abort via `cancel_token`, and parallelism
    /// via `shard_policy` — while the result contract stays the same:
    /// a completed solve is **bit-identical** across every valid
    /// option combination (tested in `tests/lane_equivalence.rs` and
    /// below). Returns `None` only when a cancel token fired at a
    /// stage boundary.
    ///
    /// The named legacy entry points ([`Msropm::solve_batch_lanes`],
    /// [`Msropm::solve_batch_lanes_arena`],
    /// [`Msropm::solve_batch_lanes_arena_cancellable`],
    /// [`Msropm::solve_batch_lanes_arena_sharded`]) forward here; the
    /// `*_with` closure variants remain as the lower-level hooked API
    /// (deadline policies poll arbitrary closures, not tokens).
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len() != seeds.len()`, a resolved lane
    /// configuration is invalid, or the options combine strategies that
    /// do not compose (see [`SolveOptions`]): thread-sharding with an
    /// arena or cancel token, a [`ShardedArena`] without a shard pool,
    /// a [`BatchArena`] with one, or `threads == 0` / `shards == 0`.
    pub fn solve_lanes(
        &self,
        lanes: &[LaneConfig],
        seeds: &[u64],
        options: SolveOptions<'_>,
    ) -> Option<Vec<MsropmSolution>> {
        let SolveOptions {
            arena,
            cancel_token,
            shard_policy,
            backend,
        } = options;
        // A backend override is expressed through the lane layer so it
        // flows unchanged through every execution strategy below.
        let lanes_overridden: Vec<LaneConfig>;
        let lanes = match backend {
            Some(b) if b != self.config.backend => {
                lanes_overridden = lanes
                    .iter()
                    .map(|lane| {
                        let mut lane = *lane;
                        lane.backend.get_or_insert(b);
                        lane
                    })
                    .collect();
                &lanes_overridden[..]
            }
            _ => lanes,
        };
        match shard_policy {
            SolveShardPolicy::Threads(threads) => {
                assert!(threads > 0, "threads must be >= 1");
                if threads > 1 {
                    assert!(
                        arena.is_none() && cancel_token.is_none(),
                        "thread-sharded solves take neither an arena nor a cancel \
                         token; use SolveShardPolicy::Pool for cancellable parallelism"
                    );
                    return Some(crate::batch::solve_lanes_sharded(
                        &self.graph,
                        &self.config,
                        &self.network,
                        lanes,
                        seeds,
                        false,
                        threads,
                    ));
                }
                let cancelled = || cancel_token.is_some_and(|t| t.is_cancelled());
                match arena {
                    None => {
                        if cancel_token.is_none() {
                            // Matches the historical `solve_batch_lanes(_, _, 1)`
                            // path exactly (bit-identical to the arena path).
                            return Some(crate::batch::solve_lanes_sharded(
                                &self.graph,
                                &self.config,
                                &self.network,
                                lanes,
                                seeds,
                                false,
                                1,
                            ));
                        }
                        let mut scratch = crate::batch::BatchArena::new();
                        self.solve_batch_lanes_arena_cancellable_with(
                            lanes,
                            seeds,
                            &mut scratch,
                            cancelled,
                        )
                    }
                    Some(ArenaRef::Batch(arena)) => self
                        .solve_batch_lanes_arena_cancellable_with(lanes, seeds, arena, cancelled),
                    Some(ArenaRef::Sharded(_)) => {
                        panic!("a ShardedArena requires SolveShardPolicy::Pool")
                    }
                }
            }
            SolveShardPolicy::Pool { shards, pool } => {
                let cancelled = || cancel_token.is_some_and(|t| t.is_cancelled());
                match arena {
                    None => {
                        let mut scratch = crate::batch::ShardedArena::new();
                        self.solve_batch_lanes_arena_sharded_cancellable_with(
                            lanes,
                            seeds,
                            shards,
                            &mut scratch,
                            pool,
                            cancelled,
                        )
                    }
                    Some(ArenaRef::Sharded(arena)) => self
                        .solve_batch_lanes_arena_sharded_cancellable_with(
                            lanes, seeds, shards, arena, pool, cancelled,
                        ),
                    Some(ArenaRef::Batch(_)) => {
                        panic!("a BatchArena cannot back a pool-sharded solve; use a ShardedArena")
                    }
                }
            }
        }
    }
}

/// A borrowed solver scratch arena for [`Msropm::solve_lanes`]: either
/// the single-task [`crate::batch::BatchArena`] or the
/// [`crate::batch::ShardedArena`] that backs pool-sharded solves. The
/// variant must match the [`SolveShardPolicy`] (`Batch` with
/// [`SolveShardPolicy::Threads`]`(1)`, `Sharded` with
/// [`SolveShardPolicy::Pool`]); `solve_lanes` panics on a mismatch
/// rather than silently copying buffers.
pub enum ArenaRef<'a> {
    /// Scratch for a single-task solve.
    Batch(&'a mut crate::batch::BatchArena),
    /// Per-shard scratch for a pool-sharded solve.
    Sharded(&'a mut crate::batch::ShardedArena),
}

/// How [`Msropm::solve_lanes`] spreads lanes over execution resources.
/// Every policy yields **bit-identical** completed results; only
/// wall-clock and allocation behaviour differ.
pub enum SolveShardPolicy<'a> {
    /// Shard lanes over `n` ephemeral threads (`1` = solve inline on
    /// the caller's thread). Thread sharding predates arenas and
    /// cancellation and composes with neither; pass an arena or cancel
    /// token only with `Threads(1)` or [`SolveShardPolicy::Pool`].
    Threads(usize),
    /// Shard lanes over `shards` work-stealing tasks on a persistent
    /// [`crate::pool::ShardPool`] — the job-server parallel solve path.
    Pool {
        /// Number of lane shards (must be `>= 1`).
        shards: usize,
        /// The persistent worker pool to run shard tasks on.
        pool: &'a crate::pool::ShardPool,
    },
}

/// Options for [`Msropm::solve_lanes`], the unified batch entry point.
/// The default is the simplest strategy: solve inline on the caller's
/// thread with throwaway scratch and no cancellation — equivalent to
/// the legacy `solve_batch_lanes(lanes, seeds, 1)`.
///
/// ```
/// use msropm_core::{LaneConfig, Msropm, MsropmConfig, SolveOptions};
/// use msropm_graph::generators;
///
/// let g = generators::cycle_graph(6);
/// let m = Msropm::new(&g, MsropmConfig { dt: 0.02, ..MsropmConfig::paper_default() });
/// let lanes = vec![LaneConfig::default(); 2];
/// let sols = m
///     .solve_lanes(&lanes, &[1, 2], SolveOptions::new())
///     .expect("no cancel token => never None");
/// assert_eq!(sols.len(), 2);
/// ```
#[derive(Default)]
pub struct SolveOptions<'a> {
    /// Long-lived solver scratch to reuse; `None` allocates throwaway
    /// scratch for this call.
    pub arena: Option<ArenaRef<'a>>,
    /// Cooperative abort token, polled at every non-final stage
    /// boundary; `None` never cancels.
    pub cancel_token: Option<&'a crate::job::CancelToken>,
    /// Execution strategy (defaults to inline single-task).
    pub shard_policy: SolveShardPolicy<'a>,
    /// Kernel backend to run the lanes on; `None` keeps the machine
    /// configuration's backend. Lanes that pin their own
    /// [`LaneConfig::backend`](crate::LaneConfig) keep it (a batch must
    /// still end up single-backend).
    pub backend: Option<crate::KernelBackend>,
}

impl Default for SolveShardPolicy<'_> {
    fn default() -> Self {
        SolveShardPolicy::Threads(1)
    }
}

impl<'a> SolveOptions<'a> {
    /// The default strategy: inline, throwaway scratch, uncancellable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shard lanes over `threads` ephemeral threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.shard_policy = SolveShardPolicy::Threads(threads);
        self
    }

    /// Reuse the caller's [`crate::batch::BatchArena`] scratch.
    pub fn arena(mut self, arena: &'a mut crate::batch::BatchArena) -> Self {
        self.arena = Some(ArenaRef::Batch(arena));
        self
    }

    /// Shard over `shards` tasks on `pool`, reusing `arena` scratch.
    pub fn sharded(
        mut self,
        shards: usize,
        arena: &'a mut crate::batch::ShardedArena,
        pool: &'a crate::pool::ShardPool,
    ) -> Self {
        self.arena = Some(ArenaRef::Sharded(arena));
        self.shard_policy = SolveShardPolicy::Pool { shards, pool };
        self
    }

    /// Poll `cancel` at stage boundaries; `solve_lanes` returns `None`
    /// if it fires.
    pub fn cancel(mut self, cancel: &'a crate::job::CancelToken) -> Self {
        self.cancel_token = Some(cancel);
        self
    }

    /// Run the lanes on `backend`, overriding the machine
    /// configuration's default (lanes that pin their own backend keep
    /// it).
    pub fn backend(mut self, backend: crate::KernelBackend) -> Self {
        self.backend = Some(backend);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn fast_config() -> MsropmConfig {
        // Paper timings but a coarser dt to keep unit tests quick.
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    #[test]
    fn target_phases_match_paper_figure2() {
        // Colors 0..3 -> 0, 180, 90, 270 degrees.
        assert!((MsropmSolution::target_phase(0, 4) - 0.0).abs() < 1e-12);
        assert!((MsropmSolution::target_phase(1, 4) - PI).abs() < 1e-12);
        assert!((MsropmSolution::target_phase(2, 4) - PI / 2.0).abs() < 1e-12);
        assert!((MsropmSolution::target_phase(3, 4) - 3.0 * PI / 2.0).abs() < 1e-12);
        // 8 colors: all distinct multiples of 45 deg.
        let mut phases: Vec<f64> = (0..8).map(|c| MsropmSolution::target_phase(c, 8)).collect();
        phases.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, p) in phases.iter().enumerate() {
            assert!((p - i as f64 * TAU / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn solves_single_edge_perfectly() {
        let g = generators::path_graph(2);
        let mut m = Msropm::new(&g, fast_config());
        let mut rng = StdRng::seed_from_u64(1);
        let sol = m.solve(&mut rng);
        assert!(sol.coloring.is_proper(&g));
        assert_eq!(sol.stages.len(), 2);
        assert_eq!(sol.total_time_ns, 60.0);
    }

    #[test]
    fn four_colors_k4() {
        // K4 needs all four colors; the machine should find a proper
        // coloring in most runs — take best of 5 seeds.
        let g = generators::complete_graph(4);
        let cfg = fast_config();
        let mut best = 0.0f64;
        for seed in 0..5 {
            let mut m = Msropm::new(&g, cfg);
            let mut rng = StdRng::seed_from_u64(seed);
            let sol = m.solve(&mut rng);
            best = best.max(sol.coloring.accuracy(&g));
        }
        assert_eq!(best, 1.0, "K4 exact solution not found in 5 runs");
    }

    #[test]
    fn small_kings_graph_good_accuracy() {
        let g = generators::kings_graph(5, 5);
        let mut m = Msropm::new(&g, fast_config());
        let mut rng = StdRng::seed_from_u64(3);
        let mut best = 0.0f64;
        for _ in 0..5 {
            let sol = m.solve(&mut rng);
            best = best.max(sol.coloring.accuracy(&g));
        }
        assert!(best >= 0.9, "best accuracy {best} too low for 5x5 board");
    }

    #[test]
    fn stage1_records_full_graph_cut() {
        let g = generators::kings_graph(4, 4);
        let mut m = Msropm::new(&g, fast_config());
        let mut rng = StdRng::seed_from_u64(5);
        let sol = m.solve(&mut rng);
        let s1 = &sol.stages[0];
        assert_eq!(s1.active_edges, g.num_edges());
        // The recorded cut value must match recomputing from the partition.
        assert_eq!(s1.cut_value, s1.partition.cut_value(&g));
        // Stage 2 only sees intra-partition edges.
        let s2 = &sol.stages[1];
        assert_eq!(s2.active_edges, g.num_edges() - s1.cut_value);
    }

    #[test]
    fn final_phases_lock_to_color_targets() {
        let g = generators::kings_graph(3, 3);
        let mut m = Msropm::new(&g, fast_config());
        let mut rng = StdRng::seed_from_u64(8);
        let sol = m.solve(&mut rng);
        // Each oscillator's final phase must sit near the target phase of
        // its color (within noise-induced jitter around the lock point).
        for (i, (_, color)) in sol.coloring.iter().enumerate() {
            let target = MsropmSolution::target_phase(color.index(), 4);
            let p = sol.final_phases[i].rem_euclid(TAU);
            let d = (p - target).rem_euclid(TAU);
            let d = d.min(TAU - d);
            assert!(d < 0.5, "osc {i} phase {p} far from target {target}");
        }
    }

    #[test]
    fn coloring_consistent_with_stage_bits() {
        let g = generators::kings_graph(3, 3);
        let mut m = Msropm::new(&g, fast_config());
        let mut rng = StdRng::seed_from_u64(2);
        let sol = m.solve(&mut rng);
        for i in 0..g.num_nodes() {
            let b1 = usize::from(sol.stages[0].partition.side(msropm_graph::NodeId::new(i)));
            let b2 = usize::from(sol.stages[1].partition.side(msropm_graph::NodeId::new(i)));
            assert_eq!(sol.coloring.as_slice()[i].index(), b1 * 2 + b2);
        }
    }

    #[test]
    fn cross_partition_edges_always_satisfied() {
        // Stage-1 cut edges connect colors {0,1} x {2,3}: always proper.
        let g = generators::kings_graph(4, 4);
        let mut m = Msropm::new(&g, fast_config());
        let mut rng = StdRng::seed_from_u64(11);
        let sol = m.solve(&mut rng);
        let s1 = &sol.stages[0];
        for (_, u, v) in g.edges() {
            if s1.partition.side(u) != s1.partition.side(v) {
                assert_ne!(
                    sol.coloring.color(u),
                    sol.coloring.color(v),
                    "cross-partition edge ({u},{v}) miscolored"
                );
            }
        }
    }

    #[test]
    fn single_stage_machine_solves_maxcut() {
        // num_colors = 2 degenerates to a ROIM: bipartite graphs get cut
        // perfectly.
        let g = generators::grid_graph(4, 4);
        let cfg = fast_config().with_num_colors(2);
        let mut m = Msropm::new(&g, cfg);
        let mut rng = StdRng::seed_from_u64(4);
        let mut best = 0;
        for _ in 0..5 {
            let sol = m.solve(&mut rng);
            best = best.max(sol.stages[0].cut_value);
        }
        assert_eq!(best, g.num_edges(), "grid max-cut is all edges");
    }

    #[test]
    fn eight_color_run_is_proper_on_planted_graph() {
        use msropm_graph::generators::planted_k_colorable;
        let mut rng = StdRng::seed_from_u64(21);
        let (g, _) = planted_k_colorable(24, 8, 0.6, &mut rng);
        let cfg = fast_config().with_num_colors(8);
        let mut m = Msropm::new(&g, cfg);
        let mut best = 0.0f64;
        for _ in 0..5 {
            let sol = m.solve(&mut rng);
            assert_eq!(sol.stages.len(), 3);
            assert!(sol.coloring.color_range() <= 8);
            best = best.max(sol.coloring.accuracy(&g));
        }
        assert!(best > 0.85, "8-color accuracy {best}");
    }

    #[test]
    fn observer_sees_monotone_time_and_all_windows() {
        let g = generators::path_graph(3);
        let mut m = Msropm::new(&g, fast_config());
        let mut rng = StdRng::seed_from_u64(6);
        let mut last_t = -1.0;
        let mut kinds = std::collections::HashSet::new();
        let sol = m.solve_observed(&mut rng, |t, w, phases| {
            assert!(t >= last_t - 1e-9, "time went backwards: {last_t} -> {t}");
            last_t = t;
            kinds.insert((w.stage, w.kind));
            assert_eq!(phases.len(), 3);
        });
        assert!((last_t - 60.0).abs() < 1e-9);
        assert_eq!(kinds.len(), 6, "all six windows observed");
        assert!(sol.coloring.is_proper(&g));
    }

    #[test]
    fn uniform_reinit_mode_works() {
        let g = generators::kings_graph(3, 3);
        let cfg = MsropmConfig {
            reinit: ReinitMode::UniformRandom,
            ..fast_config()
        };
        let mut m = Msropm::new(&g, cfg);
        let mut rng = StdRng::seed_from_u64(13);
        let sol = m.solve(&mut rng);
        assert_eq!(sol.coloring.len(), 9);
    }

    #[test]
    fn frequency_spread_constructor() {
        let g = generators::path_graph(4);
        let mut rng = StdRng::seed_from_u64(17);
        let mut m = Msropm::with_frequency_spread(&g, fast_config(), &mut rng);
        let sol = m.solve(&mut rng);
        assert_eq!(sol.coloring.len(), 4);
    }

    #[test]
    fn shil_ramp_mode_still_solves() {
        let g = generators::kings_graph(4, 4);
        let cfg = fast_config().with_shil_ramp(true);
        let mut m = Msropm::new(&g, cfg);
        let mut rng = StdRng::seed_from_u64(23);
        let mut best = 0.0f64;
        let mut lock_errors = Vec::new();
        for _ in 0..5 {
            let sol = m.solve(&mut rng);
            lock_errors.extend(sol.stages.iter().map(|s| s.max_lock_error));
            best = best.max(sol.coloring.accuracy(&g));
        }
        // Discretization must *typically* be tight at readout. A rare,
        // physical tail event can leave one oscillator stranded near a
        // SHIL saddle (~1.4 rad) while still coloring correctly, so
        // instead of bounding every stage (seed-brittle): the median
        // stage must be tight and at most one of the ten stage maxima
        // may be a straggler.
        lock_errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = lock_errors[lock_errors.len() / 2];
        assert!(median < 0.6, "median ramped lock error {median}");
        let stragglers = lock_errors.iter().filter(|&&e| e >= 0.6).count();
        assert!(
            stragglers <= 1,
            "{stragglers} of {} ramped stages locked loosely: {lock_errors:?}",
            lock_errors.len()
        );
        assert!(best > 0.9, "ramped accuracy {best}");
    }

    #[test]
    fn seeded_runs_reproduce() {
        let g = generators::kings_graph(4, 4);
        let run = |seed| {
            let mut m = Msropm::new(&g, fast_config());
            let mut rng = StdRng::seed_from_u64(seed);
            m.solve(&mut rng).coloring
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn solve_lanes_is_bit_identical_across_strategies() {
        let g = generators::kings_graph(3, 3);
        let m = Msropm::new(&g, fast_config());
        let lanes = vec![LaneConfig::default(); 3];
        let seeds = [5, 6, 7];
        let base = m
            .solve_lanes(&lanes, &seeds, SolveOptions::new())
            .expect("uncancellable");

        let threaded = m
            .solve_lanes(&lanes, &seeds, SolveOptions::new().threads(2))
            .expect("uncancellable");
        let mut arena = crate::batch::BatchArena::new();
        let in_arena = m
            .solve_lanes(&lanes, &seeds, SolveOptions::new().arena(&mut arena))
            .expect("uncancellable");
        let token = crate::job::CancelToken::new();
        let cancellable = m
            .solve_lanes(
                &lanes,
                &seeds,
                SolveOptions::new().arena(&mut arena).cancel(&token),
            )
            .expect("token never fired");
        let pool = crate::pool::ShardPool::new(2);
        let mut sharena = crate::batch::ShardedArena::new();
        let pooled = m
            .solve_lanes(
                &lanes,
                &seeds,
                SolveOptions::new().sharded(2, &mut sharena, &pool),
            )
            .expect("uncancellable");

        for other in [&threaded, &in_arena, &cancellable, &pooled] {
            assert_eq!(base.len(), other.len());
            for (a, b) in base.iter().zip(other.iter()) {
                assert_eq!(a.coloring, b.coloring);
            }
        }
    }

    #[test]
    fn solve_lanes_cancelled_token_returns_none() {
        let g = generators::kings_graph(3, 3);
        let m = Msropm::new(&g, fast_config());
        let lanes = vec![LaneConfig::default(); 2];
        let token = crate::job::CancelToken::new();
        token.cancel();
        assert!(m
            .solve_lanes(&lanes, &[1, 2], SolveOptions::new().cancel(&token))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "neither an arena nor a cancel")]
    fn solve_lanes_rejects_threads_with_arena() {
        let g = generators::path_graph(2);
        let m = Msropm::new(&g, fast_config());
        let mut arena = crate::batch::BatchArena::new();
        let _ = m.solve_lanes(
            &[LaneConfig::default()],
            &[1],
            SolveOptions::new().arena(&mut arena).threads(2),
        );
    }

    #[test]
    #[should_panic(expected = "requires SolveShardPolicy::Pool")]
    fn solve_lanes_rejects_sharded_arena_without_pool() {
        let g = generators::path_graph(2);
        let m = Msropm::new(&g, fast_config());
        let mut arena = crate::batch::ShardedArena::new();
        let _ = m.solve_lanes(
            &[LaneConfig::default()],
            &[1],
            SolveOptions {
                arena: Some(ArenaRef::Sharded(&mut arena)),
                cancel_token: None,
                shard_policy: SolveShardPolicy::Threads(1),
                backend: None,
            },
        );
    }
}
