//! The control-signal schedule: the MSROPM's "clocking" (paper §3.2–3.3).
//!
//! SHIL clocks the machine: stage transitions are effected purely by
//! toggling `G_EN`/`P_EN` (couplings), `SHIL_EN` and `SHIL_SEL` at
//! predetermined instants. [`Schedule`] materializes the paper's Fig. 3
//! timeline as a list of typed windows so that the machine, the waveform
//! dumper and the tests all agree on what happens when.

use crate::config::{LaneConfig, MsropmConfig};

/// What the array is doing during one window of the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Couplings and SHIL off; phases randomize (startup or inter-stage).
    Randomize,
    /// Couplings on, SHIL off: coupled self-annealing.
    Anneal,
    /// Couplings on, SHIL on: phase discretization and readout.
    Lock,
}

/// The control-line levels during a window (Fig. 3 annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlState {
    /// Couplings conduct (`G_EN` high and the relevant `P_EN`s high).
    pub couplings_on: bool,
    /// SHIL injection active (`SHIL_EN`).
    pub shil_on: bool,
}

/// One window of the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Which solution stage this window belongs to (1-based).
    pub stage: usize,
    /// Window role.
    pub kind: WindowKind,
    /// Start time (ns from machine start).
    pub t_start: f64,
    /// Duration (ns).
    pub duration: f64,
}

impl Window {
    /// End time of the window (ns).
    pub fn t_end(&self) -> f64 {
        self.t_start + self.duration
    }

    /// Control-line levels implied by the window kind.
    pub fn controls(&self) -> ControlState {
        match self.kind {
            WindowKind::Randomize => ControlState {
                couplings_on: false,
                shil_on: false,
            },
            WindowKind::Anneal => ControlState {
                couplings_on: true,
                shil_on: false,
            },
            WindowKind::Lock => ControlState {
                couplings_on: true,
                shil_on: true,
            },
        }
    }
}

/// The full multi-stage timeline derived from a [`MsropmConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    windows: Vec<Window>,
}

impl Schedule {
    /// Builds the timeline for `config`: for each stage, Randomize →
    /// Anneal → Lock, with the paper's durations.
    pub fn from_config(config: &MsropmConfig) -> Self {
        config.validate();
        let mut windows = Vec::new();
        let mut t = 0.0;
        for stage in 1..=config.num_stages() {
            for (kind, d) in [
                (WindowKind::Randomize, config.t_init),
                (WindowKind::Anneal, config.t_anneal),
                (WindowKind::Lock, config.t_lock),
            ] {
                windows.push(Window {
                    stage,
                    kind,
                    t_start: t,
                    duration: d,
                });
                t += d;
            }
        }
        Schedule { windows }
    }

    /// The windows in chronological order.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Total duration (ns).
    pub fn total_time_ns(&self) -> f64 {
        self.windows.last().map_or(0.0, |w| w.t_end())
    }

    /// The window containing time `t` (boundaries belong to the later
    /// window), or `None` if `t` is outside the schedule.
    pub fn window_at(&self, t: f64) -> Option<&Window> {
        self.windows
            .iter()
            .find(|w| t >= w.t_start && t < w.t_end())
            .or_else(|| {
                // t exactly at the very end belongs to the last window.
                self.windows
                    .last()
                    .filter(|w| (t - w.t_end()).abs() < 1e-12)
            })
    }
}

/// One compiled [`Schedule`] per replica lane, plus the proof that the
/// lanes can run in one interleaved batch.
///
/// The batch engine advances every lane with the *same* step loop, so
/// heterogeneous lanes are only admissible when their timelines agree
/// on every window boundary (the control *contents* — noise σ, SHIL
/// strength/ramp, re-init mode — may differ per lane; the control
/// *instants* may not). [`ScheduleSet::from_lane_configs`] compiles one
/// schedule per resolved lane and panics if any pair disagrees, so a
/// future per-lane timing override cannot silently desynchronize the
/// SoA sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSet {
    schedules: Vec<Schedule>,
}

impl ScheduleSet {
    /// Compiles one schedule per config and checks lockstep.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, any config is invalid, or two
    /// lanes' timelines differ in window count, kind, stage or
    /// boundaries.
    pub fn from_configs(configs: &[MsropmConfig]) -> Self {
        assert!(!configs.is_empty(), "need at least one lane");
        let schedules: Vec<Schedule> = configs.iter().map(Schedule::from_config).collect();
        let base = &schedules[0];
        for (r, s) in schedules.iter().enumerate().skip(1) {
            assert_eq!(
                s.windows().len(),
                base.windows().len(),
                "lane {r} window count differs from lane 0"
            );
            for (w, wb) in s.windows().iter().zip(base.windows()) {
                assert!(
                    w.stage == wb.stage
                        && w.kind == wb.kind
                        && w.t_start == wb.t_start
                        && w.duration == wb.duration,
                    "lane {r} timeline not in lockstep with lane 0: {w:?} vs {wb:?}"
                );
            }
            assert_eq!(
                configs[r].dt, configs[0].dt,
                "lane {r} step size differs from lane 0"
            );
        }
        ScheduleSet { schedules }
    }

    /// Resolves `lanes` against `base` and compiles the per-lane
    /// schedules (see [`ScheduleSet::from_configs`]).
    ///
    /// # Panics
    ///
    /// As [`ScheduleSet::from_configs`], plus lane-resolution panics.
    pub fn from_lane_configs(base: &MsropmConfig, lanes: &[LaneConfig]) -> Self {
        let configs: Vec<MsropmConfig> = lanes.iter().map(|l| l.resolve(base)).collect();
        Self::from_configs(&configs)
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.schedules.len()
    }

    /// The schedule of one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane(&self, lane: usize) -> &Schedule {
        &self.schedules[lane]
    }

    /// The shared lockstep timeline (every lane's boundaries agree, so
    /// lane 0 speaks for all — the timeline the batch step loop walks).
    pub fn lockstep(&self) -> &Schedule {
        &self.schedules[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timeline_matches_figure3() {
        let s = Schedule::from_config(&MsropmConfig::paper_default());
        let w = s.windows();
        assert_eq!(w.len(), 6);
        // 5 | 20 | 5 | 5 | 20 | 5 ns.
        let durations: Vec<f64> = w.iter().map(|w| w.duration).collect();
        assert_eq!(durations, vec![5.0, 20.0, 5.0, 5.0, 20.0, 5.0]);
        assert_eq!(s.total_time_ns(), 60.0);
        // Stage tags.
        assert!(w[..3].iter().all(|w| w.stage == 1));
        assert!(w[3..].iter().all(|w| w.stage == 2));
        // Contiguous.
        for pair in w.windows(2) {
            assert!((pair[0].t_end() - pair[1].t_start).abs() < 1e-12);
        }
    }

    #[test]
    fn control_lines_follow_figure3() {
        let s = Schedule::from_config(&MsropmConfig::paper_default());
        let kinds: Vec<WindowKind> = s.windows().iter().map(|w| w.kind).collect();
        assert_eq!(
            kinds,
            vec![
                WindowKind::Randomize,
                WindowKind::Anneal,
                WindowKind::Lock,
                WindowKind::Randomize,
                WindowKind::Anneal,
                WindowKind::Lock,
            ]
        );
        // Fig. 3(a): couplings on, SHIL off.
        let anneal = s.windows()[1].controls();
        assert!(anneal.couplings_on && !anneal.shil_on);
        // Fig. 3(b)/(e): SHIL on.
        let lock = s.windows()[2].controls();
        assert!(lock.couplings_on && lock.shil_on);
        // Fig. 3(c): everything off.
        let reinit = s.windows()[3].controls();
        assert!(!reinit.couplings_on && !reinit.shil_on);
    }

    #[test]
    fn window_lookup() {
        let s = Schedule::from_config(&MsropmConfig::paper_default());
        assert_eq!(s.window_at(0.0).unwrap().kind, WindowKind::Randomize);
        assert_eq!(s.window_at(10.0).unwrap().kind, WindowKind::Anneal);
        assert_eq!(s.window_at(27.0).unwrap().kind, WindowKind::Lock);
        assert_eq!(s.window_at(30.0).unwrap().stage, 2);
        assert_eq!(s.window_at(60.0).unwrap().stage, 2);
        assert!(s.window_at(61.0).is_none());
        assert!(s.window_at(-1.0).is_none());
    }

    #[test]
    fn schedule_set_accepts_heterogeneous_controls() {
        use crate::config::{LaneConfig, ReinitMode};
        let base = MsropmConfig::paper_default();
        let lanes = [
            LaneConfig::default(),
            LaneConfig::default().with_noise(0.4).with_shil_ramp(true),
            LaneConfig::default().with_reinit(ReinitMode::UniformRandom),
        ];
        let set = ScheduleSet::from_lane_configs(&base, &lanes);
        assert_eq!(set.num_lanes(), 3);
        assert_eq!(set.lane(1), set.lockstep());
        assert_eq!(set.lockstep().total_time_ns(), 60.0);
    }

    #[test]
    #[should_panic(expected = "lockstep")]
    fn schedule_set_rejects_desynced_timelines() {
        let a = MsropmConfig::paper_default();
        let b = MsropmConfig {
            t_anneal: 25.0,
            ..a
        };
        ScheduleSet::from_configs(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn schedule_set_rejects_empty() {
        ScheduleSet::from_configs(&[]);
    }

    #[test]
    fn eight_color_schedule_has_three_stages() {
        let c = MsropmConfig::paper_default().with_num_colors(8);
        let s = Schedule::from_config(&c);
        assert_eq!(s.windows().len(), 9);
        assert_eq!(s.total_time_ns(), 90.0);
        assert_eq!(s.windows().last().unwrap().stage, 3);
    }
}
