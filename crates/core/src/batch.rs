//! Multi-replica batch execution of the divide-and-color schedule.
//!
//! The paper's experiments run 40 independent iterations per problem;
//! [`solve_lanes_sharded`] advances all of them through the full
//! multi-stage schedule as one interleaved SoA sweep per thread (see
//! [`msropm_osc::batch`] for the kernel layout). Per-replica gating
//! (`P_EN` lanes) and `SHIL_SEL` assignments evolve independently across
//! stage transitions, exactly as `Msropm::solve` evolves them for a
//! single run.
//!
//! Since PR 2 the replicas are full **control lanes**: each lane may
//! override the base configuration's coupling strength, SHIL
//! strength/ramp, annealing noise and re-init mode
//! ([`crate::config::LaneConfig`]), so one batch can sweep an operating
//! grid or run a restart portfolio instead of repeating one point M
//! times. Timing stays lockstep across lanes (enforced by
//! [`crate::schedule::ScheduleSet`]); everything else rides in per-lane
//! kernel tables, so the hot loop is identical to the homogeneous case.
//!
//! Since PR 7 a *single job's* lane range can also shard **inside** one
//! solve: [`solve_lanes_sharded_hooked`] splits the range into
//! contiguous chunks, runs each chunk's current stage as an owned task
//! on the [`crate::pool::ShardPool`], and re-joins at every stage
//! boundary, where hooks (cancellation, deadlines, portfolio restarts)
//! fire over a cross-shard [`StageBoundary`] with exactly the
//! single-shard semantics. Both paths execute the same
//! [`run_one_stage`] body on the same per-shard state, so 1-shard and
//! N-shard solves are bit-identical by construction.
//!
//! # Determinism contract
//!
//! Replica `i` performs bit-for-bit the floating-point operations and RNG
//! draws of a standalone `Msropm::solve` over the lane's *resolved*
//! config, seeded with `seeds[i]`:
//!
//! - every replica draws noise, initial phases and (optionally) frequency
//!   offsets from its **own** `StdRng`, in the order a sequential run
//!   would;
//! - the interleaved drift sweep visits edges in the same (edge-id) order
//!   as the scalar compiled kernel, and gated lanes contribute exact
//!   IEEE `±0` terms;
//! - per-lane coupling weights are **copied** from a lane-resolved
//!   network, never rescaled, so a swept lane carries exactly the
//!   weights a standalone machine at that operating point would;
//! - ramped and non-ramped lanes share the plain step sequence (the
//!   step-indexed `RampSchedule`), so mixing them changes no step sizes;
//! - jitter-drift and uniform re-init lanes may coexist: during the
//!   randomize window (couplings and SHIL off — lanes are independent)
//!   jitter lanes integrate bias + noise drawing one deviate per node
//!   per step, uniform lanes draw nothing until their end-of-window
//!   phase redraw, each matching its solo counterpart;
//! - threads and shards partition replicas into disjoint contiguous
//!   ranges, and a replica's trajectory never depends on its range.
//!
//! Hence colorings (and final phases) are identical across thread counts
//! *and shard counts* and identical to a sequential iteration loop —
//! property-tested in the workspace root's `tests/batch_determinism.rs`
//! and `tests/lane_equivalence.rs`.

use crate::config::{KernelBackend, LaneConfig, MsropmConfig, ReinitMode};
use crate::machine::{MsropmSolution, StageRecord};
use crate::pool::ShardPool;
use crate::schedule::{ScheduleSet, Window, WindowKind};
use msropm_graph::{Color, Coloring, Cut, Graph};
use msropm_ode::sde::standard_normal;
use msropm_osc::batch::{BatchIntegrator, BatchKernel};
use msropm_osc::fxkernel::{
    self, noise_increment, phase_to_turns, turns_to_phase, FxBatchIntegrator, FxBatchKernel,
};
use msropm_osc::lock::{lock_error, phase_to_spin};
use msropm_osc::shil::{stage_shil_phase, Shil};
use msropm_osc::PhaseNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::f64::consts::TAU;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};

/// Runs one homogeneous batch of replicas (every lane at the base
/// config), sharded over at most `threads` OS threads.
///
/// # Panics
///
/// Panics if `threads == 0` or `config` is inconsistent.
pub(crate) fn solve_batch_sharded(
    graph: &Graph,
    config: &MsropmConfig,
    network: &PhaseNetwork,
    seeds: &[u64],
    sample_spread: bool,
    threads: usize,
) -> Vec<MsropmSolution> {
    let lanes = vec![LaneConfig::default(); seeds.len()];
    solve_lanes_sharded(
        graph,
        config,
        network,
        &lanes,
        seeds,
        sample_spread,
        threads,
    )
}

/// Runs one batch of heterogeneous control lanes, sharded over at most
/// `threads` OS threads (disjoint contiguous (lane, seed) ranges; the
/// outputs are concatenated in lane order). `sample_spread` reproduces
/// `Msropm::with_frequency_spread` semantics: each replica first draws
/// per-oscillator frequency offsets from its own RNG, before any phase
/// draws.
///
/// # Panics
///
/// Panics if `threads == 0`, `lanes.len() != seeds.len()`, or any
/// resolved lane config is inconsistent.
pub(crate) fn solve_lanes_sharded(
    graph: &Graph,
    config: &MsropmConfig,
    network: &PhaseNetwork,
    lanes: &[LaneConfig],
    seeds: &[u64],
    sample_spread: bool,
    threads: usize,
) -> Vec<MsropmSolution> {
    assert!(threads > 0, "need at least one thread");
    assert_eq!(lanes.len(), seeds.len(), "need one lane config per seed");
    config.validate();
    if seeds.is_empty() {
        return Vec::new();
    }
    // Check backend agreement across the *whole* batch up front, so a
    // mixed batch fails identically whether or not the thread chunking
    // happens to put the odd lane in its own chunk.
    let _ = batch_backend(config, lanes);
    let threads = threads.min(seeds.len());
    if threads == 1 {
        return solve_lanes_arena(
            graph,
            config,
            network,
            lanes,
            seeds,
            sample_spread,
            &mut BatchArena::new(),
        );
    }
    let chunk_len = seeds.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(chunk_len)
            .zip(lanes.chunks(chunk_len))
            .map(|(seed_chunk, lane_chunk)| {
                scope.spawn(move |_| {
                    solve_lanes_arena(
                        graph,
                        config,
                        network,
                        lane_chunk,
                        seed_chunk,
                        sample_spread,
                        &mut BatchArena::new(),
                    )
                })
            })
            .collect();
        let mut out = Vec::with_capacity(seeds.len());
        for h in handles {
            out.extend(h.join().expect("batch worker thread panicked"));
        }
        out
    })
    .expect("crossbeam scope")
}

/// The backend-erased compiled kernel of one lane range: either the
/// IEEE-double SoA kernel or its fixed-point twin. The generic control
/// plumbing (gating at stage transitions, boundary hooks, lane copies)
/// goes through this enum's delegating methods; the numeric stage
/// bodies ([`run_one_stage`]) match once and stay monomorphic, so
/// neither hot loop pays for the other's existence.
#[derive(Debug)]
pub(crate) enum EngineKernel {
    F64(BatchKernel),
    Fx(FxBatchKernel),
}

impl EngineKernel {
    fn edge_enabled(&self, edge: usize, replica: usize) -> bool {
        match self {
            EngineKernel::F64(k) => k.edge_enabled(edge, replica),
            EngineKernel::Fx(k) => k.edge_enabled(edge, replica),
        }
    }

    fn set_edge_enabled(&mut self, edge: usize, replica: usize, on: bool) {
        match self {
            EngineKernel::F64(k) => k.set_edge_enabled(edge, replica, on),
            EngineKernel::Fx(k) => k.set_edge_enabled(edge, replica, on),
        }
    }

    fn enable_all_edges(&mut self) {
        match self {
            EngineKernel::F64(k) => k.enable_all_edges(),
            EngineKernel::Fx(k) => k.enable_all_edges(),
        }
    }

    fn set_shil_enabled(&mut self, on: bool) {
        match self {
            EngineKernel::F64(k) => k.set_shil_enabled(on),
            EngineKernel::Fx(k) => k.set_shil_enabled(on),
        }
    }

    fn set_bias(&mut self, node: usize, replica: usize, delta_omega: f64) {
        match self {
            EngineKernel::F64(k) => k.set_bias(node, replica, delta_omega),
            EngineKernel::Fx(k) => k.set_bias(node, replica, delta_omega),
        }
    }
}

/// The backend-erased mutable phase buffer of one shard: `f64` radians
/// for the float backend, `i32` binary turns for the fixed-point one.
/// A batch is single-backend (asserted at prepare time), so the two
/// variants never mix inside one boundary.
pub(crate) enum PhasesMut<'a> {
    F64(&'a mut [f64]),
    Fx(&'a mut [i32]),
}

impl PhasesMut<'_> {
    fn len(&self) -> usize {
        match self {
            PhasesMut::F64(p) => p.len(),
            PhasesMut::Fx(p) => p.len(),
        }
    }

    fn copy_within_lane(&mut self, n: usize, rr: usize, src: usize, dst: usize) {
        match self {
            PhasesMut::F64(p) => {
                for i in 0..n {
                    p[i * rr + dst] = p[i * rr + src];
                }
            }
            PhasesMut::Fx(p) => {
                for i in 0..n {
                    p[i * rr + dst] = p[i * rr + src];
                }
            }
        }
    }
}

/// Borrows the backend-matching phase buffer for a boundary slice
/// (taking both buffers keeps the borrow disjoint from the arena's
/// other fields).
fn arena_phases<'a>(
    kernel: &EngineKernel,
    phases: &'a mut [f64],
    fx_phases: &'a mut [i32],
) -> PhasesMut<'a> {
    match kernel {
        EngineKernel::F64(_) => PhasesMut::F64(phases),
        EngineKernel::Fx(_) => PhasesMut::Fx(fx_phases),
    }
}

/// One shard's mutable slice of a [`StageBoundary`]: the per-shard
/// kernel and state vectors, in lane order within the shard.
pub(crate) struct ShardSlice<'a> {
    kernel: &'a mut EngineKernel,
    phases: PhasesMut<'a>,
    groups: &'a mut [usize],
    stage_records: &'a mut [Vec<StageRecord>],
    replicas: usize,
}

impl ShardSlice<'_> {
    /// Copies lane `src` onto lane `dst` *within this shard* (local
    /// indices).
    fn copy_lane_local(&mut self, graph: &Graph, src: usize, dst: usize) {
        let rr = self.replicas;
        let n = self.phases.len() / rr;
        self.phases.copy_within_lane(n, rr, src, dst);
        for i in 0..n {
            self.groups[i * rr + dst] = self.groups[i * rr + src];
        }
        for e in 0..graph.num_edges() {
            let on = self.kernel.edge_enabled(e, src);
            self.kernel.set_edge_enabled(e, dst, on);
        }
        self.stage_records[dst] = self.stage_records[src].clone();
    }
}

/// Copies lane state across two *different* shards (local indices into
/// each). Reads from `src` are through shared references, so the
/// borrows never conflict.
fn copy_lane_across(
    graph: &Graph,
    src: &ShardSlice<'_>,
    src_lane: usize,
    dst: &mut ShardSlice<'_>,
    dst_lane: usize,
) {
    let (rs, rd) = (src.replicas, dst.replicas);
    let n = src.phases.len() / rs;
    match (&src.phases, &mut dst.phases) {
        (PhasesMut::F64(s), PhasesMut::F64(d)) => {
            for i in 0..n {
                d[i * rd + dst_lane] = s[i * rs + src_lane];
            }
        }
        (PhasesMut::Fx(s), PhasesMut::Fx(d)) => {
            for i in 0..n {
                d[i * rd + dst_lane] = s[i * rs + src_lane];
            }
        }
        _ => unreachable!("a batch is single-backend; shards cannot mix phase formats"),
    }
    for i in 0..n {
        dst.groups[i * rd + dst_lane] = src.groups[i * rs + src_lane];
    }
    for e in 0..graph.num_edges() {
        let on = src.kernel.edge_enabled(e, src_lane);
        dst.kernel.set_edge_enabled(e, dst_lane, on);
    }
    dst.stage_records[dst_lane] = src.stage_records[src_lane].clone();
}

/// The cross-lane view a stage-boundary hook receives: per-lane quality
/// so far plus the lane-state copy that implements population restarts.
///
/// The hook fires after each stage's readout *and* transition (groups
/// latched, crossing couplings cut) for every stage except the last —
/// the instants the paper's control sequencer could realistically
/// intervene between SHIL windows. On the sharded path the boundary
/// spans every shard (shards appear in lane order), so lane indices are
/// **global** and `copy_lane` works across shard boundaries — a
/// portfolio restart neither knows nor cares how the batch was
/// partitioned.
pub(crate) struct StageBoundary<'a> {
    graph: &'a Graph,
    shards: Vec<ShardSlice<'a>>,
}

impl StageBoundary<'_> {
    /// Number of lanes in the batch (across all shards).
    pub(crate) fn num_lanes(&self) -> usize {
        self.shards.iter().map(|s| s.replicas).sum()
    }

    /// Maps a global lane index to `(shard, local lane)`.
    fn locate(&self, lane: usize) -> (usize, usize) {
        let mut remaining = lane;
        for (s, shard) in self.shards.iter().enumerate() {
            if remaining < shard.replicas {
                return (s, remaining);
            }
            remaining -= shard.replicas;
        }
        panic!("lane {lane} out of range");
    }

    /// Edges already *permanently satisfied* for lane `r`: couplings cut
    /// at earlier transitions connect nodes whose group ids (and hence
    /// final colors) already differ. The natural stage-boundary quality
    /// ranking — more satisfied edges now means fewer conflicts the
    /// remaining stages must resolve.
    pub(crate) fn satisfied_edges(&self, r: usize) -> usize {
        let (s, local) = self.locate(r);
        let m = self.graph.num_edges();
        let kernel = &self.shards[s].kernel;
        let active = (0..m).filter(|&e| kernel.edge_enabled(e, local)).count();
        m - active
    }

    /// Re-seeds lane `dst` from lane `src`: copies phases, group ids,
    /// per-lane coupling gating **and the stage records so far**, so the
    /// restarted lane's eventual `MsropmSolution` describes one
    /// consistent lineage (its early stages are the survivor's history
    /// the final coloring is actually built on, not the discarded run).
    /// `dst` keeps its own control parameters (weights, σ, SHIL) and its
    /// own RNG stream, so the restarted lane re-explores the survivor's
    /// partition from a different operating point and noise path.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub(crate) fn copy_lane(&mut self, src: usize, dst: usize) {
        let lanes = self.num_lanes();
        assert!(src < lanes && dst < lanes, "lane range");
        if src == dst {
            return;
        }
        let (ss, sl) = self.locate(src);
        let (ds, dl) = self.locate(dst);
        if ss == ds {
            self.shards[ss].copy_lane_local(self.graph, sl, dl);
        } else if ss < ds {
            let (head, tail) = self.shards.split_at_mut(ds);
            copy_lane_across(self.graph, &head[ss], sl, &mut tail[0], dl);
        } else {
            let (head, tail) = self.shards.split_at_mut(ss);
            copy_lane_across(self.graph, &tail[0], sl, &mut head[ds], dl);
        }
    }
}

/// Reusable per-worker scratch for batch solves: the integrator (drift +
/// noise buffers) plus every per-run state vector
/// (`phases`/`groups`/`bits`/RNGs/resolved configs/SHIL tables).
///
/// A long-lived arena makes repeated batch solves allocation-free across
/// jobs once warm (for same-shaped jobs — buffers only grow, never
/// shrink): the job-server workers each own one and thread it through
/// every solve they execute. The compiled [`BatchKernel`] itself is still
/// built per solve — it *is* the problem compilation; reuse across repeat
/// topologies happens one level up in [`crate::cache::ProblemCache`],
/// which caches the machine (graph + network) a kernel is compiled from.
///
/// Results are bit-identical whether a fresh or a reused arena is used
/// (every buffer is fully re-initialized at the start of a solve);
/// covered by `reused_arena_matches_fresh_arena` below.
#[derive(Debug, Default)]
pub struct BatchArena {
    integrator: BatchIntegrator,
    fx_integrator: FxBatchIntegrator,
    rngs: Vec<StdRng>,
    configs: Vec<MsropmConfig>,
    phases: Vec<f64>,
    /// Fixed-point twin of `phases` (binary-turn words); only the
    /// buffer matching the batch's backend is populated by a solve.
    fx_phases: Vec<i32>,
    groups: Vec<usize>,
    bits: Vec<bool>,
    stage_shils: Vec<Shil>,
    ramped: Vec<bool>,
}

impl BatchArena {
    /// Creates an empty arena; buffers are sized lazily by the first
    /// solve that uses it.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One [`BatchArena`] per shard, owned by a long-lived worker: a
/// sharded solve moves shard `i`'s arena into shard `i`'s tasks and
/// moves it back at the end, so repeated sharded solves of same-shaped
/// jobs reuse every per-shard buffer — the PR 3 allocation-free-across-
/// jobs property, per shard. (The sharded path does clone the graph and
/// network into `Arc`s once per solve so tasks can outlive the caller's
/// borrows; that is O(n + m) against a solve that integrates thousands
/// of steps per edge.)
///
/// If a solve panics (a shard task died), the arenas that were in
/// flight are lost — rebuild with [`ShardedArena::new`], exactly like a
/// plain arena after a worker panic.
#[derive(Debug, Default)]
pub struct ShardedArena {
    shards: Vec<BatchArena>,
}

impl ShardedArena {
    /// Creates an empty set of shard arenas; shards materialize on
    /// first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The arena of shard `i`, created empty on demand. Shard `i` of
    /// every solve uses slot `i`, so warm buffers line up across jobs.
    fn shard_slot(&mut self, i: usize) -> &mut BatchArena {
        while self.shards.len() <= i {
            self.shards.push(BatchArena::new());
        }
        &mut self.shards[i]
    }
}

/// Clears and re-fills a reusable buffer to `len` copies of `fill`,
/// reusing its capacity.
fn refill<T: Clone>(buf: &mut Vec<T>, len: usize, fill: T) {
    buf.clear();
    buf.resize(len, fill);
}

/// Derives lane `r`'s network from the base network: a clone with the
/// lane's coupling/noise overrides applied by the same recipe the
/// builder uses, so a swept lane's weights are bit-identical to a
/// standalone machine's at that operating point. Lanes without
/// overrides share the base network untouched (preserving any per-edge
/// weight customization it carries).
fn lane_network(base: &PhaseNetwork, lane: &LaneConfig) -> PhaseNetwork {
    let mut net = base.clone();
    if let Some(k) = lane.coupling_strength {
        net.set_coupling_strength(k);
    }
    if let Some(sigma) = lane.noise {
        net.set_noise(sigma);
    }
    net
}

/// Hook-free wrapper over [`solve_lane_range_hooked`]: one contiguous
/// lane range solved single-threaded in the caller's `arena`. This is
/// the job-server unit of work ([`crate::job::BatchJob::run`] and
/// [`crate::machine::Msropm::solve_batch_lanes_arena`] route here), so
/// a worker's long-lived arena is reused across jobs.
pub(crate) fn solve_lanes_arena(
    graph: &Graph,
    config: &MsropmConfig,
    network: &PhaseNetwork,
    lanes: &[LaneConfig],
    seeds: &[u64],
    sample_spread: bool,
    arena: &mut BatchArena,
) -> Vec<MsropmSolution> {
    config.validate();
    if seeds.is_empty() {
        return Vec::new();
    }
    solve_lane_range_hooked(
        graph,
        config,
        network,
        lanes,
        seeds,
        sample_spread,
        arena,
        |_, _: &mut StageBoundary| ControlFlow::Continue(()),
    )
    .expect("hook never aborts")
}

/// Everything [`prepare_lane_range`] computes beyond the arena's own
/// buffers: the compiled kernel, the (per-solve) stage-record
/// accumulators and the lockstep timeline.
struct PreparedRange {
    kernel: EngineKernel,
    stage_records: Vec<Vec<StageRecord>>,
    windows: Vec<Window>,
    k: usize,
    dt: f64,
}

/// Asserts every lane of a batch resolves to the same [`KernelBackend`]
/// and returns it. One batch runs one numeric stack: the SoA sweep,
/// the shared phase buffers and the cross-shard boundary all assume a
/// single phase format.
fn batch_backend(base: &MsropmConfig, lanes: &[LaneConfig]) -> KernelBackend {
    let backend = lanes
        .first()
        .map_or(base.backend, |l| l.backend.unwrap_or(base.backend));
    assert!(
        lanes
            .iter()
            .all(|l| l.backend.unwrap_or(base.backend) == backend),
        "all lanes in a batch must use the same kernel backend"
    );
    backend
}

/// Shared start-of-run setup for one contiguous lane range: resolves the
/// lane configs, compiles the (possibly heterogeneous) kernel, seeds the
/// RNGs and draws spreads + initial phases — every buffer in `arena`
/// fully re-initialized. Both the borrowed single-shard path and the
/// owned shard tasks run exactly this code, which is half of the
/// 1-vs-N-shard bit-identity argument (the other half is
/// [`run_one_stage`]).
fn prepare_lane_range(
    graph: &Graph,
    base_config: &MsropmConfig,
    network: &PhaseNetwork,
    lanes: &[LaneConfig],
    seeds: &[u64],
    sample_spread: bool,
    arena: &mut BatchArena,
) -> PreparedRange {
    let n = graph.num_nodes();
    let rr = seeds.len();
    assert_eq!(lanes.len(), rr, "need one lane config per seed");
    let backend = batch_backend(base_config, lanes);
    let BatchArena {
        integrator: _,
        fx_integrator: _,
        rngs,
        configs,
        phases,
        fx_phases,
        groups,
        bits,
        stage_shils: _,
        ramped,
    } = arena;
    configs.clear();
    configs.extend(lanes.iter().map(|l| l.resolve(base_config)));
    let schedule_set = ScheduleSet::from_configs(configs);
    let schedule = schedule_set.lockstep();
    let k = configs[0].num_stages();
    let dt = configs[0].dt;
    let windows = schedule.windows().to_vec();

    rngs.clear();
    rngs.extend(seeds.iter().map(|&s| StdRng::seed_from_u64(s)));
    let needs_lane_nets = lanes
        .iter()
        .any(|l| l.coupling_strength.is_some() || l.noise.is_some());
    let lane_nets: Option<Vec<PhaseNetwork>> =
        needs_lane_nets.then(|| lanes.iter().map(|l| lane_network(network, l)).collect());
    let mut kernel = match (backend, &lane_nets) {
        (KernelBackend::F64, Some(nets)) => EngineKernel::F64(BatchKernel::from_lanes(nets)),
        (KernelBackend::F64, None) => EngineKernel::F64(BatchKernel::new(network, rr)),
        (KernelBackend::Fixed, Some(nets)) => EngineKernel::Fx(FxBatchKernel::from_lanes(nets, dt)),
        (KernelBackend::Fixed, None) => EngineKernel::Fx(FxBatchKernel::new(network, rr, dt)),
    };
    // Start-of-run control state, mirroring `Msropm::solve`: every P_EN
    // high, SHIL off.
    kernel.enable_all_edges();
    kernel.set_shil_enabled(false);

    // Runner semantics: frequency offsets are the replica's first draws.
    if sample_spread {
        for (r, rng) in rngs.iter_mut().enumerate() {
            if configs[r].frequency_spread > 0.0 {
                for i in 0..n {
                    kernel.set_bias(i, r, configs[r].frequency_spread * standard_normal(rng));
                }
            }
        }
    }

    // Startup randomization: i.i.d. uniform phases, per replica in node
    // order (the order `PhaseNetwork::random_phases` draws). Both
    // backends consume the identical uniform draws; the fixed-point
    // path quantizes each to the nearest of 2^32 turn counts.
    match backend {
        KernelBackend::F64 => {
            refill(phases, n * rr, 0.0);
            for (r, rng) in rngs.iter_mut().enumerate() {
                for i in 0..n {
                    phases[i * rr + r] = rng.gen::<f64>() * TAU;
                }
            }
        }
        KernelBackend::Fixed => {
            refill(fx_phases, n * rr, 0i32);
            for (r, rng) in rngs.iter_mut().enumerate() {
                for i in 0..n {
                    fx_phases[i * rr + r] = phase_to_turns(rng.gen::<f64>() * TAU);
                }
            }
        }
    }

    refill(groups, n * rr, 0usize);
    refill(bits, n * rr, false);
    ramped.clear();
    ramped.extend(configs.iter().map(|c| c.shil_ramp));
    // Stage records are the output payload (moved into the returned
    // solutions), so they are the one fresh allocation per solve.
    let stage_records: Vec<Vec<StageRecord>> = vec![Vec::with_capacity(k); rr];
    PreparedRange {
        kernel,
        stage_records,
        windows,
        k,
        dt,
    }
}

/// Advances one lane range through one full stage: Randomize → Anneal →
/// Lock → readout → transition. `stage_windows` is the stage's three
/// schedule windows in that order. This is *the* stage body — the
/// single-shard loop and every shard task call exactly this function,
/// so partitioning the lane range cannot change any lane's arithmetic.
/// One backend match here keeps both numeric bodies fully monomorphic.
fn run_one_stage(
    graph: &Graph,
    stage: usize,
    stage_windows: &[Window],
    dt: f64,
    kernel: &mut EngineKernel,
    arena: &mut BatchArena,
    stage_records: &mut [Vec<StageRecord>],
) {
    match kernel {
        EngineKernel::F64(k) => {
            run_one_stage_f64(graph, stage, stage_windows, dt, k, arena, stage_records)
        }
        EngineKernel::Fx(k) => {
            run_one_stage_fx(graph, stage, stage_windows, dt, k, arena, stage_records)
        }
    }
}

/// The IEEE-double stage body (the reference arithmetic every property
/// test is anchored to).
fn run_one_stage_f64(
    graph: &Graph,
    stage: usize,
    stage_windows: &[Window],
    dt: f64,
    kernel: &mut BatchKernel,
    arena: &mut BatchArena,
    stage_records: &mut [Vec<StageRecord>],
) {
    let n = graph.num_nodes();
    let BatchArena {
        integrator,
        fx_integrator: _,
        rngs,
        configs,
        phases,
        fx_phases: _,
        groups,
        bits,
        stage_shils,
        ramped,
    } = arena;
    let rr = configs.len();
    let num_groups = 1usize << (stage - 1);
    let any_ramped = ramped.iter().any(|&r| r);
    let [w_init, w_anneal, w_lock] = stage_windows else {
        panic!("stage {stage} must have exactly three windows");
    };

    // ---- Randomize window (couplings off, SHIL off) ----
    debug_assert_eq!(w_init.kind, WindowKind::Randomize);
    kernel.set_couplings_enabled(false);
    kernel.set_shil_enabled(false);
    let any_jitter = configs
        .iter()
        .any(|c| matches!(c.reinit, ReinitMode::JitterDrift { .. }));
    let any_uniform = configs
        .iter()
        .any(|c| c.reinit == ReinitMode::UniformRandom);
    if any_jitter && !any_uniform {
        // All lanes drift: run the kernel path with each lane's
        // drift σ, then restore the lanes' annealing σ.
        for (r, cfg) in configs.iter().enumerate() {
            let ReinitMode::JitterDrift { sigma } = cfg.reinit else {
                unreachable!("all lanes drift here")
            };
            kernel.set_lane_noise_amplitude(r, sigma);
        }
        integrator.integrate(kernel, phases, w_init.t_start, w_init.t_end(), dt, rngs);
        for (r, cfg) in configs.iter().enumerate() {
            kernel.set_lane_noise_amplitude(r, cfg.noise);
        }
    } else if any_jitter {
        // Mixed modes. Couplings and SHIL are off, so lanes are
        // fully independent: advance jitter lanes by the exact
        // bias + noise arithmetic of the kernel path (one deviate
        // per node per step, in node order — the solo stream),
        // while uniform lanes draw nothing until their redraw
        // below.
        let mut t = w_init.t_start;
        let t_end = w_init.t_end();
        while t < t_end {
            let h = dt.min(t_end - t);
            let sqrt_h = h.sqrt();
            for i in 0..n {
                let row = i * rr;
                for (r, rng) in rngs.iter_mut().enumerate() {
                    if let ReinitMode::JitterDrift { sigma } = configs[r].reinit {
                        let xi = standard_normal(rng);
                        let sig = if kernel.node_enabled(i) { sigma } else { 0.0 };
                        phases[row + r] += h * kernel.bias_of(i, r) + sqrt_h * sig * xi;
                    }
                }
            }
            t += h;
        }
    }
    for (r, rng) in rngs.iter_mut().enumerate() {
        if configs[r].reinit == ReinitMode::UniformRandom {
            for i in 0..n {
                phases[i * rr + r] = rng.gen::<f64>() * TAU;
            }
        }
    }

    // ---- Anneal window (couplings on, SHIL off) ----
    debug_assert_eq!(w_anneal.kind, WindowKind::Anneal);
    kernel.set_couplings_enabled(true);
    integrator.integrate(kernel, phases, w_anneal.t_start, w_anneal.t_end(), dt, rngs);

    // ---- Lock window (couplings on, SHIL on) ----
    debug_assert_eq!(w_lock.kind, WindowKind::Lock);
    stage_shils.clear();
    for cfg in configs.iter() {
        stage_shils.extend(
            (0..num_groups)
                .map(|g| Shil::order2(stage_shil_phase(g, num_groups), cfg.shil_strength)),
        );
    }
    let shil_of = |r: usize, g: usize| stage_shils[r * num_groups + g];
    for i in 0..n {
        for r in 0..rr {
            kernel.set_shil(i, r, Some(shil_of(r, groups[i * rr + r])));
        }
    }
    kernel.set_shil_enabled(true);
    if any_ramped {
        integrator.integrate_ramped_lanes(
            kernel,
            phases,
            w_lock.t_start,
            w_lock.t_end(),
            dt,
            rngs,
            |f| f,
            ramped,
        );
    } else {
        integrator.integrate(kernel, phases, w_lock.t_start, w_lock.t_end(), dt, rngs);
    }

    // ---- Readout (per replica) ----
    for i in 0..n {
        for r in 0..rr {
            let idx = i * rr + r;
            bits[idx] = phase_to_spin(phases[idx], &shil_of(r, groups[idx])) == 1;
        }
    }
    for r in 0..rr {
        let worst_lock = (0..n)
            .map(|i| lock_error(phases[i * rr + r], &shil_of(r, groups[i * rr + r])))
            .fold(0.0f64, f64::max);
        let replica_bits: Vec<bool> = (0..n).map(|i| bits[i * rr + r]).collect();
        let mut cut_value = 0usize;
        let mut active_edges = 0usize;
        for (e, u, v) in graph.edges() {
            if kernel.edge_enabled(e.index(), r) {
                active_edges += 1;
                if replica_bits[u.index()] != replica_bits[v.index()] {
                    cut_value += 1;
                }
            }
        }
        stage_records[r].push(StageRecord {
            stage,
            partition: Cut::new(replica_bits),
            cut_value,
            active_edges,
            max_lock_error: worst_lock,
        });
    }

    // ---- Stage transition: latch SHIL_SEL, cut crossing couplings.
    for idx in 0..n * rr {
        groups[idx] = groups[idx] * 2 + usize::from(bits[idx]);
    }
    for (e, u, v) in graph.edges() {
        let (u, v) = (u.index() * rr, v.index() * rr);
        for r in 0..rr {
            if groups[u + r] != groups[v + r] {
                kernel.set_edge_enabled(e.index(), r, false);
            }
        }
    }
    kernel.set_shil_enabled(false);
}

/// The fixed-point stage body: the same control flow as
/// [`run_one_stage_f64`] over `i32` binary-turn phases. The drift
/// windows run on the fx integrator's uniform step grid (every step a
/// full `dt`, the hardware clock); readout converts each phase word to
/// radians and reuses the exact `phase_to_spin`/`lock_error` decision
/// functions, so binarization and quality metrics are defined
/// identically across backends.
fn run_one_stage_fx(
    graph: &Graph,
    stage: usize,
    stage_windows: &[Window],
    dt: f64,
    kernel: &mut FxBatchKernel,
    arena: &mut BatchArena,
    stage_records: &mut [Vec<StageRecord>],
) {
    let n = graph.num_nodes();
    let BatchArena {
        integrator: _,
        fx_integrator: integrator,
        rngs,
        configs,
        phases: _,
        fx_phases: phases,
        groups,
        bits,
        stage_shils,
        ramped,
    } = arena;
    let rr = configs.len();
    let num_groups = 1usize << (stage - 1);
    let any_ramped = ramped.iter().any(|&r| r);
    let [w_init, w_anneal, w_lock] = stage_windows else {
        panic!("stage {stage} must have exactly three windows");
    };

    // ---- Randomize window (couplings off, SHIL off) ----
    debug_assert_eq!(w_init.kind, WindowKind::Randomize);
    kernel.set_couplings_enabled(false);
    kernel.set_shil_enabled(false);
    let any_jitter = configs
        .iter()
        .any(|c| matches!(c.reinit, ReinitMode::JitterDrift { .. }));
    let any_uniform = configs
        .iter()
        .any(|c| c.reinit == ReinitMode::UniformRandom);
    if any_jitter && !any_uniform {
        // All lanes drift: run the kernel path with each lane's drift
        // σ (as a quantized gain), then restore the annealing σ.
        for (r, cfg) in configs.iter().enumerate() {
            let ReinitMode::JitterDrift { sigma } = cfg.reinit else {
                unreachable!("all lanes drift here")
            };
            kernel.set_lane_noise_amplitude(r, sigma);
        }
        integrator.integrate(kernel, phases, w_init.t_start, w_init.t_end(), dt, rngs);
        for (r, cfg) in configs.iter().enumerate() {
            kernel.set_lane_noise_amplitude(r, cfg.noise);
        }
    } else if any_jitter {
        // Mixed modes. Couplings and SHIL are off, so lanes are fully
        // independent: advance jitter lanes by the exact bias + noise
        // arithmetic of the fx kernel path (one deviate per node per
        // step, in node order — the solo stream), while uniform lanes
        // draw nothing until their redraw below.
        let drift_gains: Vec<i64> = configs
            .iter()
            .map(|c| match c.reinit {
                ReinitMode::JitterDrift { sigma } => fxkernel::noise_gain(sigma, dt),
                ReinitMode::UniformRandom => 0,
            })
            .collect();
        for _ in 0..kernel.steps_for(w_init.t_start, w_init.t_end()) {
            for i in 0..n {
                let row = i * rr;
                for (r, rng) in rngs.iter_mut().enumerate() {
                    if matches!(configs[r].reinit, ReinitMode::JitterDrift { .. }) {
                        let xi = standard_normal(rng);
                        let gain = if kernel.node_enabled(i) {
                            drift_gains[r]
                        } else {
                            0
                        };
                        phases[row + r] = phases[row + r]
                            .wrapping_add(kernel.bias_step_of(i, r))
                            .wrapping_add(noise_increment(gain, xi));
                    }
                }
            }
        }
    }
    for (r, rng) in rngs.iter_mut().enumerate() {
        if configs[r].reinit == ReinitMode::UniformRandom {
            for i in 0..n {
                phases[i * rr + r] = phase_to_turns(rng.gen::<f64>() * TAU);
            }
        }
    }

    // ---- Anneal window (couplings on, SHIL off) ----
    debug_assert_eq!(w_anneal.kind, WindowKind::Anneal);
    kernel.set_couplings_enabled(true);
    integrator.integrate(kernel, phases, w_anneal.t_start, w_anneal.t_end(), dt, rngs);

    // ---- Lock window (couplings on, SHIL on) ----
    debug_assert_eq!(w_lock.kind, WindowKind::Lock);
    stage_shils.clear();
    for cfg in configs.iter() {
        stage_shils.extend(
            (0..num_groups)
                .map(|g| Shil::order2(stage_shil_phase(g, num_groups), cfg.shil_strength)),
        );
    }
    let shil_of = |r: usize, g: usize| stage_shils[r * num_groups + g];
    for i in 0..n {
        for r in 0..rr {
            kernel.set_shil(i, r, Some(shil_of(r, groups[i * rr + r])));
        }
    }
    kernel.set_shil_enabled(true);
    if any_ramped {
        integrator.integrate_ramped_lanes(
            kernel,
            phases,
            w_lock.t_start,
            w_lock.t_end(),
            dt,
            rngs,
            |f| f,
            ramped,
        );
    } else {
        integrator.integrate(kernel, phases, w_lock.t_start, w_lock.t_end(), dt, rngs);
    }

    // ---- Readout (per replica) ----
    for i in 0..n {
        for r in 0..rr {
            let idx = i * rr + r;
            bits[idx] = phase_to_spin(turns_to_phase(phases[idx]), &shil_of(r, groups[idx])) == 1;
        }
    }
    for r in 0..rr {
        let worst_lock = (0..n)
            .map(|i| {
                lock_error(
                    turns_to_phase(phases[i * rr + r]),
                    &shil_of(r, groups[i * rr + r]),
                )
            })
            .fold(0.0f64, f64::max);
        let replica_bits: Vec<bool> = (0..n).map(|i| bits[i * rr + r]).collect();
        let mut cut_value = 0usize;
        let mut active_edges = 0usize;
        for (e, u, v) in graph.edges() {
            if kernel.edge_enabled(e.index(), r) {
                active_edges += 1;
                if replica_bits[u.index()] != replica_bits[v.index()] {
                    cut_value += 1;
                }
            }
        }
        stage_records[r].push(StageRecord {
            stage,
            partition: Cut::new(replica_bits),
            cut_value,
            active_edges,
            max_lock_error: worst_lock,
        });
    }

    // ---- Stage transition: latch SHIL_SEL, cut crossing couplings.
    for idx in 0..n * rr {
        groups[idx] = groups[idx] * 2 + usize::from(bits[idx]);
    }
    for (e, u, v) in graph.edges() {
        let (u, v) = (u.index() * rr, v.index() * rr);
        for r in 0..rr {
            if groups[u + r] != groups[v + r] {
                kernel.set_edge_enabled(e.index(), r, false);
            }
        }
    }
    kernel.set_shil_enabled(false);
}

/// Builds the per-lane solutions from a finished range's final state.
/// Fixed-point phase words convert to radians in `[0, 2π)` — exactly
/// invertibly (see [`msropm_osc::fxkernel::phase_to_turns`]), so the
/// golden-hash tests can recover the raw words from a solution.
fn assemble_solutions(
    n: usize,
    kernel: &EngineKernel,
    arena: &BatchArena,
    stage_records: Vec<Vec<StageRecord>>,
    total_time_ns: f64,
) -> Vec<MsropmSolution> {
    let rr = stage_records.len();
    let groups = &arena.groups;
    stage_records
        .into_iter()
        .enumerate()
        .map(|(r, stages)| {
            let coloring: Coloring = (0..n).map(|i| Color(groups[i * rr + r] as u16)).collect();
            let final_phases = (0..n)
                .map(|i| match kernel {
                    EngineKernel::F64(_) => arena.phases[i * rr + r],
                    EngineKernel::Fx(_) => turns_to_phase(arena.fx_phases[i * rr + r]),
                })
                .collect();
            MsropmSolution {
                coloring,
                stages,
                final_phases,
                total_time_ns,
            }
        })
        .collect()
}

/// Runs one contiguous lane range as a single interleaved batch,
/// invoking `hook` at every non-final stage boundary (the population
/// restart and cooperative-cancellation entry point; see
/// [`StageBoundary`]). All per-run state lives in `arena`, so a caller
/// reusing one arena across solves allocates nothing here once the
/// buffers are warm.
///
/// Returns `None` when `hook` answers [`ControlFlow::Break`] — the run
/// is abandoned at that stage boundary and **no** solutions are
/// produced (the partially annealed state is discarded; the arena stays
/// reusable). A `Break` cannot change the trajectory of a run that
/// continues: the hook fires strictly between stages, after all RNG
/// draws of the finished stage and before any of the next.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_lane_range_hooked<F>(
    graph: &Graph,
    base_config: &MsropmConfig,
    network: &PhaseNetwork,
    lanes: &[LaneConfig],
    seeds: &[u64],
    sample_spread: bool,
    arena: &mut BatchArena,
    mut hook: F,
) -> Option<Vec<MsropmSolution>>
where
    F: FnMut(usize, &mut StageBoundary) -> ControlFlow<()>,
{
    let rr = seeds.len();
    let PreparedRange {
        mut kernel,
        mut stage_records,
        windows,
        k,
        dt,
    } = prepare_lane_range(
        graph,
        base_config,
        network,
        lanes,
        seeds,
        sample_spread,
        arena,
    );
    for stage in 1..=k {
        run_one_stage(
            graph,
            stage,
            &windows[3 * (stage - 1)..3 * stage],
            dt,
            &mut kernel,
            arena,
            &mut stage_records,
        );
        if stage < k {
            let phases = arena_phases(&kernel, &mut arena.phases, &mut arena.fx_phases);
            let mut boundary = StageBoundary {
                graph,
                shards: vec![ShardSlice {
                    kernel: &mut kernel,
                    phases,
                    groups: arena.groups.as_mut_slice(),
                    stage_records: stage_records.as_mut_slice(),
                    replicas: rr,
                }],
            };
            if hook(stage, &mut boundary).is_break() {
                return None;
            }
        }
    }
    let total_time_ns = windows.last().map_or(0.0, Window::t_end);
    Some(assemble_solutions(
        graph.num_nodes(),
        &kernel,
        arena,
        stage_records,
        total_time_ns,
    ))
}

/// One shard of a sharded solve: a contiguous lane range plus
/// everything its stage tasks need, fully owned so the whole struct can
/// move onto (and back off) the [`ShardPool`] between stage boundaries.
struct ShardRun {
    graph: Arc<Graph>,
    shard: usize,
    kernel: EngineKernel,
    arena: BatchArena,
    stage_records: Vec<Vec<StageRecord>>,
    windows: Vec<Window>,
    dt: f64,
}

impl ShardRun {
    #[allow(clippy::too_many_arguments)]
    fn init(
        graph: Arc<Graph>,
        base_config: MsropmConfig,
        network: Arc<PhaseNetwork>,
        lanes: Vec<LaneConfig>,
        seeds: Vec<u64>,
        sample_spread: bool,
        mut arena: BatchArena,
        shard: usize,
    ) -> Self {
        let prep = prepare_lane_range(
            &graph,
            &base_config,
            &network,
            &lanes,
            &seeds,
            sample_spread,
            &mut arena,
        );
        ShardRun {
            graph,
            shard,
            kernel: prep.kernel,
            arena,
            stage_records: prep.stage_records,
            windows: prep.windows,
            dt: prep.dt,
        }
    }

    fn run_stage(&mut self, stage: usize) {
        crate::pool::faultinject::maybe_panic_in_shard(self.shard);
        run_one_stage(
            &self.graph,
            stage,
            &self.windows[3 * (stage - 1)..3 * stage],
            self.dt,
            &mut self.kernel,
            &mut self.arena,
            &mut self.stage_records,
        );
    }

    fn boundary_slice(&mut self) -> ShardSlice<'_> {
        let phases = arena_phases(
            &self.kernel,
            &mut self.arena.phases,
            &mut self.arena.fx_phases,
        );
        ShardSlice {
            kernel: &mut self.kernel,
            phases,
            groups: self.arena.groups.as_mut_slice(),
            stage_records: self.stage_records.as_mut_slice(),
            replicas: self.arena.configs.len(),
        }
    }

    fn finish(self) -> (Vec<MsropmSolution>, BatchArena) {
        let total_time_ns = self.windows.last().map_or(0.0, Window::t_end);
        let sols = assemble_solutions(
            self.graph.num_nodes(),
            &self.kernel,
            &self.arena,
            self.stage_records,
            total_time_ns,
        );
        (sols, self.arena)
    }
}

/// What a shard task sends back: its run (moved through the pool) or
/// the payload of the panic that killed it.
type ShardResult = (usize, Result<ShardRun, Box<dyn Any + Send>>);

/// Waits for all `shards` stage tasks of the current stage, executing
/// pool tasks on this thread while waiting ([`ShardPool::help_while`]).
/// If any shard panicked, the panic resumes here — after every shard
/// has reported, so no task is left holding state.
fn collect_shards(
    pool: &ShardPool,
    rx: &mpsc::Receiver<ShardResult>,
    shards: usize,
) -> Vec<ShardRun> {
    let mut slots: Vec<Option<ShardRun>> = (0..shards).map(|_| None).collect();
    let mut received = 0usize;
    let mut panic: Option<Box<dyn Any + Send>> = None;
    pool.help_while(|| {
        while let Ok((idx, res)) = rx.try_recv() {
            received += 1;
            match res {
                Ok(run) => slots[idx] = Some(run),
                Err(payload) => {
                    if panic.is_none() {
                        panic = Some(payload);
                    }
                }
            }
        }
        received == shards
    });
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every shard reported"))
        .collect()
}

/// Runs one job's lane range sharded across the [`ShardPool`]: the
/// range splits into `shards` contiguous chunks; each chunk's current
/// stage runs as one owned task; the dispatching thread helps the pool
/// while waiting and fires `hook` over a cross-shard [`StageBoundary`]
/// at every non-final boundary. `shards == 1` (or a single-lane job)
/// delegates to [`solve_lane_range_hooked`] in shard slot 0 — the
/// sharded entry at width 1 *is* the unsharded entry.
///
/// Bit-identity across shard counts holds by construction (shared
/// [`prepare_lane_range`] + [`run_one_stage`], per-lane RNG streams, a
/// lane's arithmetic independent of its range) and is property-tested
/// at the core, server and wire layers.
///
/// A panic inside any shard task (e.g. a poisoned problem) is re-raised
/// on the calling thread once every shard has reported — the job
/// server's `catch_unwind` then maps it to a typed `Failed` completion.
/// The in-flight shard arenas are lost to the panic; rebuild the
/// [`ShardedArena`].
///
/// # Panics
///
/// Panics if `shards == 0`, `lanes.len() != seeds.len()`, any resolved
/// lane config is inconsistent, or a shard task panicked.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_lanes_sharded_hooked<F>(
    graph: &Graph,
    base_config: &MsropmConfig,
    network: &PhaseNetwork,
    lanes: &[LaneConfig],
    seeds: &[u64],
    sample_spread: bool,
    shards: usize,
    arena: &mut ShardedArena,
    pool: &ShardPool,
    mut hook: F,
) -> Option<Vec<MsropmSolution>>
where
    F: FnMut(usize, &mut StageBoundary) -> ControlFlow<()>,
{
    assert!(shards > 0, "need at least one shard");
    assert_eq!(lanes.len(), seeds.len(), "need one lane config per seed");
    base_config.validate();
    if seeds.is_empty() {
        return Some(Vec::new());
    }
    let shards = shards.min(seeds.len());
    if shards == 1 {
        return solve_lane_range_hooked(
            graph,
            base_config,
            network,
            lanes,
            seeds,
            sample_spread,
            arena.shard_slot(0),
            hook,
        );
    }
    // Lockstep (and backend agreement) must hold across the *whole*
    // batch, not just within each shard, so a cross-shard mismatch
    // fails exactly like it does on the single-shard path.
    let _ = batch_backend(base_config, lanes);
    let all_configs: Vec<MsropmConfig> = lanes.iter().map(|l| l.resolve(base_config)).collect();
    let _lockstep = ScheduleSet::from_configs(&all_configs);
    let k = all_configs[0].num_stages();
    drop(all_configs);

    let chunk_len = seeds.len().div_ceil(shards);
    // div_ceil chunking can yield fewer chunks than requested (6 lanes
    // at width 4 chunk as 2+2+2): recount so every join waits for
    // exactly the tasks dispatched.
    let shards = seeds.len().div_ceil(chunk_len);
    let graph_arc = Arc::new(graph.clone());
    let net_arc = Arc::new(network.clone());
    let base = *base_config;
    let (tx, rx) = mpsc::channel::<ShardResult>();

    // Stage 1 tasks carry shard init (kernel compilation, RNG seeding,
    // initial draws), so problem setup parallelizes too.
    for (idx, (seed_chunk, lane_chunk)) in seeds
        .chunks(chunk_len)
        .zip(lanes.chunks(chunk_len))
        .enumerate()
    {
        let tx = tx.clone();
        let task_graph = Arc::clone(&graph_arc);
        let task_net = Arc::clone(&net_arc);
        let task_lanes = lane_chunk.to_vec();
        let task_seeds = seed_chunk.to_vec();
        let shard_arena = std::mem::take(arena.shard_slot(idx));
        pool.submit(Box::new(move || {
            let out = catch_unwind(AssertUnwindSafe(move || {
                let mut run = ShardRun::init(
                    task_graph,
                    base,
                    task_net,
                    task_lanes,
                    task_seeds,
                    sample_spread,
                    shard_arena,
                    idx,
                );
                run.run_stage(1);
                run
            }));
            let _ = tx.send((idx, out));
        }));
    }
    let mut runs = collect_shards(pool, &rx, shards);

    for stage in 1..k {
        let slices: Vec<ShardSlice> = runs.iter_mut().map(ShardRun::boundary_slice).collect();
        let mut boundary = StageBoundary {
            graph,
            shards: slices,
        };
        if hook(stage, &mut boundary).is_break() {
            // Abandoned at the boundary, same as the single-shard path:
            // no solutions, arenas back in their slots for reuse.
            for (idx, run) in runs.into_iter().enumerate() {
                *arena.shard_slot(idx) = run.arena;
            }
            return None;
        }
        for (idx, mut run) in runs.into_iter().enumerate() {
            let tx = tx.clone();
            let next = stage + 1;
            pool.submit(Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(move || {
                    run.run_stage(next);
                    run
                }));
                let _ = tx.send((idx, out));
            }));
        }
        runs = collect_shards(pool, &rx, shards);
    }

    let mut out = Vec::with_capacity(seeds.len());
    for (idx, run) in runs.into_iter().enumerate() {
        let (sols, shard_arena) = run.finish();
        out.extend(sols);
        *arena.shard_slot(idx) = shard_arena;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Msropm;
    use msropm_graph::generators;

    fn fast_config() -> MsropmConfig {
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    #[test]
    fn batch_replicas_match_sequential_solves_bitwise() {
        let g = generators::kings_graph(4, 4);
        let machine = Msropm::new(&g, fast_config());
        let seeds: Vec<u64> = (100..108).collect();
        let batch = machine.solve_batch(&seeds, 1);
        assert_eq!(batch.len(), seeds.len());
        for (r, &seed) in seeds.iter().enumerate() {
            let mut solo_machine = machine.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = solo_machine.solve(&mut rng);
            assert_eq!(batch[r].coloring, solo.coloring, "replica {r} coloring");
            for (a, b) in batch[r].final_phases.iter().zip(&solo.final_phases) {
                assert_eq!(a.to_bits(), b.to_bits(), "replica {r} phases diverged");
            }
            assert_eq!(batch[r].stages.len(), solo.stages.len());
            for (sa, sb) in batch[r].stages.iter().zip(&solo.stages) {
                assert_eq!(sa.cut_value, sb.cut_value);
                assert_eq!(sa.active_edges, sb.active_edges);
                assert_eq!(sa.partition, sb.partition);
            }
        }
    }

    #[test]
    fn thread_count_is_invisible() {
        let g = generators::kings_graph(4, 4);
        let machine = Msropm::new(&g, fast_config());
        let seeds: Vec<u64> = (7..17).collect();
        let one = machine.solve_batch(&seeds, 1);
        let four = machine.solve_batch(&seeds, 4);
        let many = machine.solve_batch(&seeds, 64);
        for r in 0..seeds.len() {
            assert_eq!(one[r].coloring, four[r].coloring);
            assert_eq!(one[r].coloring, many[r].coloring);
            for (a, b) in one[r].final_phases.iter().zip(&four[r].final_phases) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn ramped_batch_matches_sequential() {
        let g = generators::kings_graph(3, 3);
        let machine = Msropm::new(&g, fast_config().with_shil_ramp(true));
        let seeds = [41u64, 42];
        let batch = machine.solve_batch(&seeds, 2);
        for (r, &seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = machine.clone().solve(&mut rng);
            assert_eq!(batch[r].coloring, solo.coloring, "ramped replica {r}");
        }
    }

    #[test]
    fn defective_oscillators_carry_into_batch() {
        let g = generators::kings_graph(3, 3);
        let mut machine = Msropm::new(&g, fast_config());
        machine.set_oscillator_enabled(4, false);
        let seeds = [9u64, 10];
        let batch = machine.solve_batch(&seeds, 1);
        for (r, &seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = machine.clone().solve(&mut rng);
            assert_eq!(
                batch[r].coloring, solo.coloring,
                "replica {r} with dead ring"
            );
        }
    }

    #[test]
    fn empty_seed_list_is_empty_batch() {
        let g = generators::path_graph(2);
        let machine = Msropm::new(&g, fast_config());
        assert!(machine.solve_batch(&[], 4).is_empty());
    }

    /// A lane's trajectory in a heterogeneous batch must be bit-identical
    /// to a sequential `Msropm::solve` over the lane's resolved config.
    fn assert_lane_matches_solo(
        g: &msropm_graph::Graph,
        base: &MsropmConfig,
        lanes: &[LaneConfig],
        seeds: &[u64],
    ) {
        let machine = Msropm::new(g, *base);
        let batch = machine.solve_batch_lanes(lanes, seeds, 1);
        for (r, (&seed, lane)) in seeds.iter().zip(lanes).enumerate() {
            let mut solo_machine = Msropm::new(g, lane.resolve(base));
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = solo_machine.solve(&mut rng);
            assert_eq!(batch[r].coloring, solo.coloring, "lane {r} coloring");
            for (a, b) in batch[r].final_phases.iter().zip(&solo.final_phases) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {r} phases diverged");
            }
        }
    }

    #[test]
    fn swept_lanes_match_their_standalone_machines() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let lanes = [
            LaneConfig::default(),
            LaneConfig::default().with_coupling_strength(0.6),
            LaneConfig::default()
                .with_noise(0.05)
                .with_shil_strength(1.2),
            LaneConfig::default()
                .with_coupling_strength(1.4)
                .with_noise(0.3),
        ];
        assert_lane_matches_solo(&g, &base, &lanes, &[31, 32, 33, 34]);
    }

    #[test]
    fn mixed_reinit_lanes_match_their_standalone_machines() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let lanes = [
            LaneConfig::default().with_reinit(ReinitMode::UniformRandom),
            LaneConfig::default(),
            LaneConfig::default().with_reinit(ReinitMode::JitterDrift { sigma: 0.4 }),
        ];
        assert_lane_matches_solo(&g, &base, &lanes, &[51, 52, 53]);
    }

    #[test]
    fn mixed_ramp_lanes_match_their_standalone_machines() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let lanes = [
            LaneConfig::default().with_shil_ramp(true),
            LaneConfig::default(),
            LaneConfig::default().with_shil_ramp(true).with_noise(0.1),
        ];
        assert_lane_matches_solo(&g, &base, &lanes, &[61, 62, 63]);
    }

    #[test]
    fn mixed_reinit_with_defective_ring_matches_solo() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let lanes = [
            LaneConfig::default().with_reinit(ReinitMode::UniformRandom),
            LaneConfig::default().with_reinit(ReinitMode::JitterDrift { sigma: 2.0 }),
        ];
        let seeds = [71u64, 72];
        let mut machine = Msropm::new(&g, base);
        machine.set_oscillator_enabled(2, false);
        let batch = machine.solve_batch_lanes(&lanes, &seeds, 1);
        for (r, (&seed, lane)) in seeds.iter().zip(&lanes).enumerate() {
            let mut solo_machine = Msropm::new(&g, lane.resolve(&base));
            solo_machine.set_oscillator_enabled(2, false);
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = solo_machine.solve(&mut rng);
            for (a, b) in batch[r].final_phases.iter().zip(&solo.final_phases) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {r} with dead ring");
            }
        }
    }

    #[test]
    fn reused_arena_matches_fresh_arena() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let net = base.build_network(&g);
        let jobs: [(&[LaneConfig], &[u64]); 3] = [
            (&[LaneConfig::default(); 4], &[1, 2, 3, 4]),
            (
                &[
                    LaneConfig::default().with_coupling_strength(0.7),
                    LaneConfig::default().with_noise(0.05),
                ],
                &[5, 6],
            ),
            (&[LaneConfig::default(); 2], &[7, 8]),
        ];
        // One arena reused across heterogeneously-shaped jobs vs a fresh
        // arena per job: bit-identical.
        let mut warm = BatchArena::new();
        for (lanes, seeds) in jobs {
            let reused = solve_lanes_arena(&g, &base, &net, lanes, seeds, false, &mut warm);
            let fresh =
                solve_lanes_arena(&g, &base, &net, lanes, seeds, false, &mut BatchArena::new());
            for (a, b) in reused.iter().zip(&fresh) {
                assert_eq!(a.coloring, b.coloring);
                for (x, y) in a.final_phases.iter().zip(&b.final_phases) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn heterogeneous_sharding_is_invisible() {
        let g = generators::kings_graph(3, 3);
        let machine = Msropm::new(&g, fast_config());
        let lanes: Vec<LaneConfig> = (0..6)
            .map(|i| LaneConfig::default().with_noise(0.05 + 0.05 * i as f64))
            .collect();
        let seeds: Vec<u64> = (90..96).collect();
        let one = machine.solve_batch_lanes(&lanes, &seeds, 1);
        let three = machine.solve_batch_lanes(&lanes, &seeds, 3);
        for r in 0..seeds.len() {
            assert_eq!(one[r].coloring, three[r].coloring, "lane {r}");
        }
    }

    #[test]
    fn stage_boundary_hook_fires_on_non_final_stages() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config(); // 4 colors => 2 stages => 1 boundary
        let net = base.build_network(&g);
        let lanes = vec![LaneConfig::default(); 3];
        let mut fired = Vec::new();
        let mut arena = BatchArena::new();
        let out = solve_lane_range_hooked(
            &g,
            &base,
            &net,
            &lanes,
            &[1, 2, 3],
            false,
            &mut arena,
            |stage, b| {
                fired.push((stage, b.num_lanes()));
                // Satisfied-edge counts are sane: between 0 and m.
                for r in 0..b.num_lanes() {
                    assert!(b.satisfied_edges(r) <= g.num_edges());
                }
                ControlFlow::Continue(())
            },
        );
        assert_eq!(out.expect("run completes").len(), 3);
        assert_eq!(fired, vec![(1, 3)]);
    }

    #[test]
    fn hook_break_abandons_the_run() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config(); // 2 stages => the one boundary aborts
        let net = base.build_network(&g);
        let lanes = vec![LaneConfig::default(); 2];
        let mut arena = BatchArena::new();
        let out = solve_lane_range_hooked(
            &g,
            &base,
            &net,
            &lanes,
            &[1, 2],
            false,
            &mut arena,
            |_, _: &mut StageBoundary| ControlFlow::Break(()),
        );
        assert!(out.is_none(), "broken run must yield no solutions");
        // The arena stays reusable and a subsequent full run is
        // bit-identical to one in a fresh arena.
        let resumed = solve_lanes_arena(&g, &base, &net, &lanes, &[1, 2], false, &mut arena);
        let fresh = solve_lanes_arena(
            &g,
            &base,
            &net,
            &lanes,
            &[1, 2],
            false,
            &mut BatchArena::new(),
        );
        for (a, b) in resumed.iter().zip(&fresh) {
            assert_eq!(a.coloring, b.coloring);
            for (x, y) in a.final_phases.iter().zip(&b.final_phases) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn copy_lane_transplants_partition_state() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let net = base.build_network(&g);
        let lanes = vec![LaneConfig::default(); 2];
        let mut arena = BatchArena::new();
        let sols = solve_lane_range_hooked(
            &g,
            &base,
            &net,
            &lanes,
            &[5, 6],
            false,
            &mut arena,
            |_, b| {
                b.copy_lane(0, 1);
                assert_eq!(b.satisfied_edges(0), b.satisfied_edges(1));
                ControlFlow::Continue(())
            },
        )
        .expect("uncancelled run completes");
        // After the copy both lanes share the stage-1 partition, so the
        // stage-1 group bit (the color MSB) must agree everywhere.
        let c0 = &sols[0].coloring;
        let c1 = &sols[1].coloring;
        for i in 0..g.num_nodes() {
            assert_eq!(
                c0.as_slice()[i].index() >> 1,
                c1.as_slice()[i].index() >> 1,
                "node {i} stage-1 bit"
            );
        }
    }

    // ---- Sharded-solve tests (PR 7) ----

    fn assert_solutions_bitwise_equal(a: &[MsropmSolution], b: &[MsropmSolution]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.coloring, y.coloring);
            for (p, q) in x.final_phases.iter().zip(&y.final_phases) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
            assert_eq!(x.stages.len(), y.stages.len());
            for (sa, sb) in x.stages.iter().zip(&y.stages) {
                assert_eq!(sa.partition, sb.partition);
                assert_eq!(sa.cut_value, sb.cut_value);
                assert_eq!(sa.active_edges, sb.active_edges);
            }
        }
    }

    #[test]
    fn shard_count_is_invisible() {
        let g = generators::kings_graph(4, 4);
        let base = fast_config();
        let net = base.build_network(&g);
        let lanes: Vec<LaneConfig> = (0..10)
            .map(|i| match i % 3 {
                0 => LaneConfig::default(),
                1 => LaneConfig::default().with_coupling_strength(0.8),
                _ => LaneConfig::default().with_noise(0.1),
            })
            .collect();
        let seeds: Vec<u64> = (300..310).collect();
        let pool = ShardPool::new(2);
        let reference = solve_lanes_arena(
            &g,
            &base,
            &net,
            &lanes,
            &seeds,
            false,
            &mut BatchArena::new(),
        );
        for shards in [1usize, 2, 3, 4, 64] {
            let mut arena = ShardedArena::new();
            let sharded = solve_lanes_sharded_hooked(
                &g,
                &base,
                &net,
                &lanes,
                &seeds,
                false,
                shards,
                &mut arena,
                &pool,
                |_, _: &mut StageBoundary| ControlFlow::Continue(()),
            )
            .expect("uncancelled run completes");
            assert_solutions_bitwise_equal(&reference, &sharded);
        }
    }

    #[test]
    fn sharded_reused_arena_matches_fresh() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let net = base.build_network(&g);
        let pool = ShardPool::new(2);
        let mut warm = ShardedArena::new();
        for round in 0..3u64 {
            let lanes = vec![LaneConfig::default(); 6];
            let seeds: Vec<u64> = (round * 10..round * 10 + 6).collect();
            let no_hook = |_: usize, _: &mut StageBoundary| ControlFlow::Continue(());
            let reused = solve_lanes_sharded_hooked(
                &g, &base, &net, &lanes, &seeds, false, 3, &mut warm, &pool, no_hook,
            )
            .expect("completes");
            let fresh = solve_lanes_sharded_hooked(
                &g,
                &base,
                &net,
                &lanes,
                &seeds,
                false,
                3,
                &mut ShardedArena::new(),
                &pool,
                no_hook,
            )
            .expect("completes");
            assert_solutions_bitwise_equal(&reused, &fresh);
        }
    }

    #[test]
    fn sharded_hook_sees_global_lane_order_and_copies_across_shards() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let net = base.build_network(&g);
        let lanes = vec![LaneConfig::default(); 6];
        let seeds: Vec<u64> = (40..46).collect();
        let pool = ShardPool::new(2);

        // Reference: single shard, hook copies lane 0 onto lane 5.
        let mut single = BatchArena::new();
        let reference = solve_lane_range_hooked(
            &g,
            &base,
            &net,
            &lanes,
            &seeds,
            false,
            &mut single,
            |_, b| {
                assert_eq!(b.num_lanes(), 6);
                b.copy_lane(0, 5);
                ControlFlow::Continue(())
            },
        )
        .expect("completes");

        // 3 shards of 2 lanes: the same copy crosses shard boundaries.
        let mut arena = ShardedArena::new();
        let mut satisfied = Vec::new();
        let sharded = solve_lanes_sharded_hooked(
            &g,
            &base,
            &net,
            &lanes,
            &seeds,
            false,
            3,
            &mut arena,
            &pool,
            |_, b| {
                assert_eq!(b.num_lanes(), 6);
                satisfied = (0..6).map(|r| b.satisfied_edges(r)).collect();
                b.copy_lane(0, 5);
                assert_eq!(b.satisfied_edges(0), b.satisfied_edges(5));
                ControlFlow::Continue(())
            },
        )
        .expect("completes");
        assert_solutions_bitwise_equal(&reference, &sharded);
        assert_eq!(satisfied.len(), 6);
    }

    #[test]
    fn sharded_hook_break_abandons_and_keeps_arena_reusable() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let net = base.build_network(&g);
        let lanes = vec![LaneConfig::default(); 4];
        let pool = ShardPool::new(2);
        let mut arena = ShardedArena::new();
        let out = solve_lanes_sharded_hooked(
            &g,
            &base,
            &net,
            &lanes,
            &[1, 2, 3, 4],
            false,
            2,
            &mut arena,
            &pool,
            |_, _: &mut StageBoundary| ControlFlow::Break(()),
        );
        assert!(out.is_none(), "broken run must yield no solutions");
        // The shard arenas came back and the next run is bit-identical
        // to a fresh-arena run.
        let no_hook = |_: usize, _: &mut StageBoundary| ControlFlow::Continue(());
        let resumed = solve_lanes_sharded_hooked(
            &g,
            &base,
            &net,
            &lanes,
            &[1, 2, 3, 4],
            false,
            2,
            &mut arena,
            &pool,
            no_hook,
        )
        .expect("completes");
        let fresh = solve_lanes_sharded_hooked(
            &g,
            &base,
            &net,
            &lanes,
            &[1, 2, 3, 4],
            false,
            2,
            &mut ShardedArena::new(),
            &pool,
            no_hook,
        )
        .expect("completes");
        assert_solutions_bitwise_equal(&resumed, &fresh);
    }

    #[test]
    fn empty_seed_list_is_empty_sharded_batch() {
        let g = generators::path_graph(2);
        let base = fast_config();
        let net = base.build_network(&g);
        let pool = ShardPool::new(1);
        let out = solve_lanes_sharded_hooked(
            &g,
            &base,
            &net,
            &[],
            &[],
            false,
            4,
            &mut ShardedArena::new(),
            &pool,
            |_, _: &mut StageBoundary| ControlFlow::Continue(()),
        );
        assert_eq!(out.expect("trivially completes").len(), 0);
    }

    #[test]
    fn shard_panic_unwinds_to_the_caller() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let net = base.build_network(&g);
        let lanes = vec![LaneConfig::default(); 4];
        let pool = ShardPool::new(2);
        crate::pool::faultinject::arm_panic_in_shard(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            solve_lanes_sharded_hooked(
                &g,
                &base,
                &net,
                &lanes,
                &[1, 2, 3, 4],
                false,
                2,
                &mut ShardedArena::new(),
                &pool,
                |_, _: &mut StageBoundary| ControlFlow::Continue(()),
            )
        }));
        crate::pool::faultinject::disarm();
        assert!(result.is_err(), "shard panic must unwind out of the solve");
        // The pool survives and a fresh solve matches the unsharded
        // reference.
        let sharded = solve_lanes_sharded_hooked(
            &g,
            &base,
            &net,
            &lanes,
            &[1, 2, 3, 4],
            false,
            2,
            &mut ShardedArena::new(),
            &pool,
            |_, _: &mut StageBoundary| ControlFlow::Continue(()),
        )
        .expect("completes");
        let reference = solve_lanes_arena(
            &g,
            &base,
            &net,
            &lanes,
            &[1, 2, 3, 4],
            false,
            &mut BatchArena::new(),
        );
        assert_solutions_bitwise_equal(&reference, &sharded);
    }
}
