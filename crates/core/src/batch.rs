//! Multi-replica batch execution of the divide-and-color schedule.
//!
//! The paper's experiments run 40 independent iterations per problem;
//! [`solve_batch_sharded`] advances all of them through the full
//! multi-stage schedule as one interleaved SoA sweep per thread (see
//! [`msropm_osc::batch`] for the kernel layout). Per-replica gating
//! (`P_EN` lanes) and `SHIL_SEL` assignments evolve independently across
//! stage transitions, exactly as `Msropm::solve` evolves them for a
//! single run.
//!
//! # Determinism contract
//!
//! Replica `i` performs bit-for-bit the floating-point operations and RNG
//! draws of a standalone `Msropm::solve` seeded with `seeds[i]`:
//!
//! - every replica draws noise, initial phases and (optionally) frequency
//!   offsets from its **own** `StdRng`, in the order a sequential run
//!   would;
//! - the interleaved drift sweep visits edges in the same (edge-id) order
//!   as the scalar compiled kernel, and gated lanes contribute exact
//!   IEEE `±0` terms;
//! - threads shard replicas into disjoint contiguous ranges, and a
//!   replica's trajectory never depends on its range.
//!
//! Hence colorings (and final phases) are identical across thread counts
//! and identical to a sequential iteration loop — property-tested in the
//! workspace root's `tests/batch_determinism.rs`.

use crate::config::{MsropmConfig, ReinitMode};
use crate::machine::{MsropmSolution, StageRecord};
use crate::schedule::{Schedule, WindowKind};
use msropm_graph::{Color, Coloring, Cut, Graph};
use msropm_osc::batch::{BatchIntegrator, BatchKernel};
use msropm_osc::lock::{lock_error, phase_to_spin};
use msropm_osc::shil::{stage_shil_phase, Shil};
use msropm_osc::PhaseNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// Runs one batch of replicas, sharded over at most `threads` OS threads
/// (disjoint contiguous seed ranges; the outputs are concatenated in seed
/// order). `sample_spread` reproduces `Msropm::with_frequency_spread`
/// semantics: each replica first draws per-oscillator frequency offsets
/// from its own RNG, before any phase draws.
///
/// # Panics
///
/// Panics if `threads == 0` or `config` is inconsistent.
pub(crate) fn solve_batch_sharded(
    graph: &Graph,
    config: &MsropmConfig,
    network: &PhaseNetwork,
    seeds: &[u64],
    sample_spread: bool,
    threads: usize,
) -> Vec<MsropmSolution> {
    assert!(threads > 0, "need at least one thread");
    config.validate();
    if seeds.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(seeds.len());
    if threads == 1 {
        return solve_batch_range(graph, config, network, seeds, sample_spread);
    }
    let chunk_len = seeds.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(chunk_len)
            .map(|chunk| {
                scope
                    .spawn(move |_| solve_batch_range(graph, config, network, chunk, sample_spread))
            })
            .collect();
        let mut out = Vec::with_capacity(seeds.len());
        for h in handles {
            out.extend(h.join().expect("batch worker thread panicked"));
        }
        out
    })
    .expect("crossbeam scope")
}

/// Runs one contiguous replica range as a single interleaved batch.
fn solve_batch_range(
    graph: &Graph,
    config: &MsropmConfig,
    network: &PhaseNetwork,
    seeds: &[u64],
    sample_spread: bool,
) -> Vec<MsropmSolution> {
    let n = graph.num_nodes();
    let rr = seeds.len();
    let k = config.num_stages();
    let dt = config.dt;
    let schedule = Schedule::from_config(config);

    let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
    let mut kernel = BatchKernel::new(network, rr);
    // Start-of-run control state, mirroring `Msropm::solve`: every P_EN
    // high, SHIL off.
    for e in 0..graph.num_edges() {
        for r in 0..rr {
            kernel.set_edge_enabled(e, r, true);
        }
    }
    kernel.set_shil_enabled(false);

    // Runner semantics: frequency offsets are the replica's first draws.
    if sample_spread && config.frequency_spread > 0.0 {
        for (r, rng) in rngs.iter_mut().enumerate() {
            for i in 0..n {
                kernel.set_bias(
                    i,
                    r,
                    config.frequency_spread * msropm_ode::sde::standard_normal(rng),
                );
            }
        }
    }

    // Startup randomization: i.i.d. uniform phases, per replica in node
    // order (the order `PhaseNetwork::random_phases` draws).
    let mut phases = vec![0.0; n * rr];
    for (r, rng) in rngs.iter_mut().enumerate() {
        for i in 0..n {
            phases[i * rr + r] = rng.gen::<f64>() * TAU;
        }
    }

    let mut groups = vec![0usize; n * rr];
    let mut bits = vec![false; n * rr];
    let mut stage_records: Vec<Vec<StageRecord>> = vec![Vec::with_capacity(k); rr];
    let mut stage_shils: Vec<Shil> = Vec::with_capacity(1 << (k - 1));
    let mut integrator = BatchIntegrator::new();
    let mut windows = schedule.windows().iter();

    for stage in 1..=k {
        let num_groups = 1usize << (stage - 1);

        // ---- Randomize window (couplings off, SHIL off) ----
        let w_init = windows.next().expect("schedule has init window");
        debug_assert_eq!(w_init.kind, WindowKind::Randomize);
        kernel.set_couplings_enabled(false);
        kernel.set_shil_enabled(false);
        match config.reinit {
            ReinitMode::UniformRandom => {
                for (r, rng) in rngs.iter_mut().enumerate() {
                    for i in 0..n {
                        phases[i * rr + r] = rng.gen::<f64>() * TAU;
                    }
                }
            }
            ReinitMode::JitterDrift { sigma } => {
                let saved = kernel.noise_amplitude();
                kernel.set_noise_amplitude(sigma);
                integrator.integrate(
                    &kernel,
                    &mut phases,
                    w_init.t_start,
                    w_init.t_end(),
                    dt,
                    &mut rngs,
                );
                kernel.set_noise_amplitude(saved);
            }
        }

        // ---- Anneal window (couplings on, SHIL off) ----
        let w_anneal = windows.next().expect("schedule has anneal window");
        debug_assert_eq!(w_anneal.kind, WindowKind::Anneal);
        kernel.set_couplings_enabled(true);
        integrator.integrate(
            &kernel,
            &mut phases,
            w_anneal.t_start,
            w_anneal.t_end(),
            dt,
            &mut rngs,
        );

        // ---- Lock window (couplings on, SHIL on) ----
        let w_lock = windows.next().expect("schedule has lock window");
        debug_assert_eq!(w_lock.kind, WindowKind::Lock);
        stage_shils.clear();
        stage_shils.extend(
            (0..num_groups)
                .map(|g| Shil::order2(stage_shil_phase(g, num_groups), config.shil_strength)),
        );
        for i in 0..n {
            for r in 0..rr {
                kernel.set_shil(i, r, Some(stage_shils[groups[i * rr + r]]));
            }
        }
        kernel.set_shil_enabled(true);
        if config.shil_ramp {
            integrator.integrate_ramped(
                &mut kernel,
                &mut phases,
                w_lock.t_start,
                w_lock.t_end(),
                dt,
                &mut rngs,
                |f| f,
            );
        } else {
            integrator.integrate(
                &kernel,
                &mut phases,
                w_lock.t_start,
                w_lock.t_end(),
                dt,
                &mut rngs,
            );
        }

        // ---- Readout (per replica) ----
        for idx in 0..n * rr {
            bits[idx] = phase_to_spin(phases[idx], &stage_shils[groups[idx]]) == 1;
        }
        for r in 0..rr {
            let worst_lock = (0..n)
                .map(|i| lock_error(phases[i * rr + r], &stage_shils[groups[i * rr + r]]))
                .fold(0.0f64, f64::max);
            let replica_bits: Vec<bool> = (0..n).map(|i| bits[i * rr + r]).collect();
            let mut cut_value = 0usize;
            let mut active_edges = 0usize;
            for (e, u, v) in graph.edges() {
                if kernel.edge_enabled(e.index(), r) {
                    active_edges += 1;
                    if replica_bits[u.index()] != replica_bits[v.index()] {
                        cut_value += 1;
                    }
                }
            }
            stage_records[r].push(StageRecord {
                stage,
                partition: Cut::new(replica_bits),
                cut_value,
                active_edges,
                max_lock_error: worst_lock,
            });
        }

        // ---- Stage transition: latch SHIL_SEL, cut crossing couplings.
        for idx in 0..n * rr {
            groups[idx] = groups[idx] * 2 + usize::from(bits[idx]);
        }
        for (e, u, v) in graph.edges() {
            let (u, v) = (u.index() * rr, v.index() * rr);
            for r in 0..rr {
                if groups[u + r] != groups[v + r] {
                    kernel.set_edge_enabled(e.index(), r, false);
                }
            }
        }
        kernel.set_shil_enabled(false);
    }

    stage_records
        .into_iter()
        .enumerate()
        .map(|(r, stages)| {
            let coloring: Coloring = (0..n).map(|i| Color(groups[i * rr + r] as u16)).collect();
            MsropmSolution {
                coloring,
                stages,
                final_phases: (0..n).map(|i| phases[i * rr + r]).collect(),
                total_time_ns: schedule.total_time_ns(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Msropm;
    use msropm_graph::generators;

    fn fast_config() -> MsropmConfig {
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    #[test]
    fn batch_replicas_match_sequential_solves_bitwise() {
        let g = generators::kings_graph(4, 4);
        let machine = Msropm::new(&g, fast_config());
        let seeds: Vec<u64> = (100..108).collect();
        let batch = machine.solve_batch(&seeds, 1);
        assert_eq!(batch.len(), seeds.len());
        for (r, &seed) in seeds.iter().enumerate() {
            let mut solo_machine = machine.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = solo_machine.solve(&mut rng);
            assert_eq!(batch[r].coloring, solo.coloring, "replica {r} coloring");
            for (a, b) in batch[r].final_phases.iter().zip(&solo.final_phases) {
                assert_eq!(a.to_bits(), b.to_bits(), "replica {r} phases diverged");
            }
            assert_eq!(batch[r].stages.len(), solo.stages.len());
            for (sa, sb) in batch[r].stages.iter().zip(&solo.stages) {
                assert_eq!(sa.cut_value, sb.cut_value);
                assert_eq!(sa.active_edges, sb.active_edges);
                assert_eq!(sa.partition, sb.partition);
            }
        }
    }

    #[test]
    fn thread_count_is_invisible() {
        let g = generators::kings_graph(4, 4);
        let machine = Msropm::new(&g, fast_config());
        let seeds: Vec<u64> = (7..17).collect();
        let one = machine.solve_batch(&seeds, 1);
        let four = machine.solve_batch(&seeds, 4);
        let many = machine.solve_batch(&seeds, 64);
        for r in 0..seeds.len() {
            assert_eq!(one[r].coloring, four[r].coloring);
            assert_eq!(one[r].coloring, many[r].coloring);
            for (a, b) in one[r].final_phases.iter().zip(&four[r].final_phases) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn ramped_batch_matches_sequential() {
        let g = generators::kings_graph(3, 3);
        let machine = Msropm::new(&g, fast_config().with_shil_ramp(true));
        let seeds = [41u64, 42];
        let batch = machine.solve_batch(&seeds, 2);
        for (r, &seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = machine.clone().solve(&mut rng);
            assert_eq!(batch[r].coloring, solo.coloring, "ramped replica {r}");
        }
    }

    #[test]
    fn defective_oscillators_carry_into_batch() {
        let g = generators::kings_graph(3, 3);
        let mut machine = Msropm::new(&g, fast_config());
        machine.set_oscillator_enabled(4, false);
        let seeds = [9u64, 10];
        let batch = machine.solve_batch(&seeds, 1);
        for (r, &seed) in seeds.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed);
            let solo = machine.clone().solve(&mut rng);
            assert_eq!(
                batch[r].coloring, solo.coloring,
                "replica {r} with dead ring"
            );
        }
    }

    #[test]
    fn empty_seed_list_is_empty_batch() {
        let g = generators::path_graph(2);
        let machine = Msropm::new(&g, fast_config());
        assert!(machine.solve_batch(&[], 4).is_empty());
    }
}
