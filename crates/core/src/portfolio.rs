//! Portfolio execution: heterogeneous lane sweeps with population
//! restarts.
//!
//! A [`PortfolioRunner`] runs `M` control lanes (a [`SweepSpec`] grid or
//! hand-picked [`LaneConfig`]s) through one interleaved batch and, at
//! every stage boundary, ranks the lanes by how many couplings earlier
//! stages already satisfied and **re-seeds the worst lanes from the best
//! survivors**: the restarted lane inherits the survivor's partition
//! state (phases, group latches, `P_EN` gating) but keeps its own
//! operating point and noise stream. This is the population-based
//! restart strategy the ROADMAP's "replica-parallel annealing schedules"
//! item calls for — the companion multi-phase OPM work shows solution
//! quality is sharply sensitive to the (K, σ) operating point, so a
//! portfolio amortizes the search for the right point *and* focuses the
//! later stages on the most promising stage-1 partitions.
//!
//! Everything is deterministic given the base seed: ranking ties break
//! by lane index and restarts copy state between lanes of one batch, so
//! a portfolio run is exactly reproducible.
//!
//! ```
//! use msropm_core::{MsropmConfig, PortfolioRunner, SweepParam, SweepSpec};
//! use msropm_graph::generators::kings_graph;
//!
//! let g = kings_graph(4, 4);
//! let sweep = SweepSpec::new()
//!     .logspace(SweepParam::CouplingStrength, 0.7, 1.4, 2)
//!     .linspace(SweepParam::Noise, 0.12, 0.24, 2);
//! let report = PortfolioRunner::from_sweep(MsropmConfig::paper_default(), &sweep)
//!     .base_seed(7)
//!     .restart_fraction(0.25)
//!     .run(&g);
//! assert_eq!(report.lanes.len(), 4);
//! assert!(report.best_accuracy() > 0.8);
//! ```

use crate::batch::{solve_lanes_sharded_hooked, StageBoundary};
use crate::config::{LaneConfig, MsropmConfig, SweepSpec};
use crate::machine::MsropmSolution;
use msropm_graph::Graph;
use std::ops::ControlFlow;

/// One population restart: at the boundary after `stage`, lane `dst`
/// was re-seeded from lane `src`'s partition state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartEvent {
    /// The completed stage (1-based) after which the restart fired.
    pub stage: usize,
    /// The surviving lane whose state was copied.
    pub src: usize,
    /// The lane that was re-seeded.
    pub dst: usize,
}

/// The outcome of one portfolio lane.
#[derive(Debug, Clone)]
pub struct LaneOutcome {
    /// Lane index (position in the sweep grid).
    pub lane: usize,
    /// RNG seed the lane ran with.
    pub seed: u64,
    /// The lane's overrides (the sweep grid point).
    pub overrides: LaneConfig,
    /// The lane's fully resolved configuration.
    pub config: MsropmConfig,
    /// The multi-stage solution the lane produced.
    pub solution: MsropmSolution,
    /// Edge-satisfaction accuracy of the lane's coloring.
    pub accuracy: f64,
}

/// Aggregate result of a portfolio run.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// Per-lane outcomes, in lane order.
    pub lanes: Vec<LaneOutcome>,
    /// Every population restart that fired, in firing order.
    pub restarts: Vec<RestartEvent>,
}

impl PortfolioReport {
    /// The best lane (ties broken by the earliest lane index).
    ///
    /// # Panics
    ///
    /// Panics if the report is empty (a runner never produces one).
    pub fn best(&self) -> &LaneOutcome {
        self.lanes
            .iter()
            .max_by(|a, b| {
                a.accuracy
                    .partial_cmp(&b.accuracy)
                    .expect("accuracies are finite")
                    .then(b.lane.cmp(&a.lane))
            })
            .expect("at least one lane")
    }

    /// Best edge-satisfaction accuracy across lanes.
    pub fn best_accuracy(&self) -> f64 {
        self.best().accuracy
    }

    /// The accuracy of every lane, in lane order.
    pub fn accuracies(&self) -> Vec<f64> {
        self.lanes.iter().map(|o| o.accuracy).collect()
    }
}

/// Runs a heterogeneous lane portfolio with optional population
/// restarts (see the module docs).
#[derive(Debug, Clone)]
pub struct PortfolioRunner {
    base: MsropmConfig,
    lanes: Vec<LaneConfig>,
    base_seed: u64,
    restart_fraction: f64,
    shards: usize,
}

impl PortfolioRunner {
    /// Creates a runner over explicit lane overrides (lane `i` seeds
    /// with `base_seed + i`). Restarts default to off.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty.
    pub fn new(base: MsropmConfig, lanes: Vec<LaneConfig>) -> Self {
        assert!(!lanes.is_empty(), "portfolio needs at least one lane");
        PortfolioRunner {
            base,
            lanes,
            base_seed: 0x1A5E5,
            restart_fraction: 0.0,
            shards: 1,
        }
    }

    /// Creates a runner over a sweep grid (one lane per grid point).
    pub fn from_sweep(base: MsropmConfig, sweep: &SweepSpec) -> Self {
        Self::new(base, sweep.lanes())
    }

    /// Sets the base RNG seed (lane `i` uses `base_seed + i`).
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the fraction of lanes re-seeded from survivors at each
    /// stage boundary. `0.0` (the default) disables restarts; the count
    /// is `floor(fraction · lanes)`, capped so at least one survivor
    /// remains.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn restart_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "restart fraction must be in [0, 1], got {fraction}"
        );
        self.restart_fraction = fraction;
        self
    }

    /// Sets the intra-run shard count: the lane range is split across
    /// `shards` tasks on the process-wide [`crate::pool`] during the
    /// stage windows, re-joining at every boundary so restarts see the
    /// whole population. Results are **bit-identical** at every width
    /// (the default, 1, runs the classic single-threaded path).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "portfolio needs at least one shard");
        self.shards = shards;
        self
    }

    /// The lane overrides this runner will execute.
    pub fn lanes(&self) -> &[LaneConfig] {
        &self.lanes
    }

    /// Runs the portfolio on `g`.
    ///
    /// The run is a single interleaved batch: restarts couple the lanes
    /// at stage boundaries, so it cannot split into *independent*
    /// batches — but within each stage the lanes can shard across the
    /// process-wide pool (see [`PortfolioRunner::shards`]), since the
    /// restart hook fires at the cross-shard join. Fully deterministic
    /// given the base seed, at any shard width.
    pub fn run(&self, g: &Graph) -> PortfolioReport {
        let seeds: Vec<u64> = (0..self.lanes.len())
            .map(|i| self.base_seed.wrapping_add(i as u64))
            .collect();
        let network = self.base.build_network(g);
        let mut restarts = Vec::new();
        let restart_fraction = self.restart_fraction;
        let mut arena = crate::batch::ShardedArena::new();
        let solutions = solve_lanes_sharded_hooked(
            g,
            &self.base,
            &network,
            &self.lanes,
            &seeds,
            false,
            self.shards,
            &mut arena,
            crate::pool::global(),
            |stage, boundary: &mut StageBoundary| {
                Self::restart_worst(stage, boundary, restart_fraction, &mut restarts);
                ControlFlow::Continue(())
            },
        )
        .expect("portfolio runs are never cancelled");
        let lanes = solutions
            .into_iter()
            .enumerate()
            .map(|(i, solution)| {
                let accuracy = solution.coloring.accuracy(g);
                LaneOutcome {
                    lane: i,
                    seed: seeds[i],
                    overrides: self.lanes[i],
                    config: self.lanes[i].resolve(&self.base),
                    solution,
                    accuracy,
                }
            })
            .collect();
        PortfolioReport { lanes, restarts }
    }

    /// Ranks lanes by satisfied couplings (descending, ties by lane
    /// index) and re-seeds the bottom `fraction` from the top survivors
    /// round-robin.
    fn restart_worst(
        stage: usize,
        boundary: &mut StageBoundary,
        fraction: f64,
        events: &mut Vec<RestartEvent>,
    ) {
        let m = boundary.num_lanes();
        let num_restart = ((m as f64 * fraction) as usize).min(m - 1);
        if num_restart == 0 {
            return;
        }
        // Score each lane once (satisfied_edges is an O(m) edge scan).
        let scores: Vec<usize> = (0..m).map(|r| boundary.satisfied_edges(r)).collect();
        let mut order: Vec<usize> = (0..m).collect();
        // Stable sort: equal scores keep ascending lane order, so the
        // ranking (and hence the whole run) is deterministic.
        order.sort_by_key(|&r| std::cmp::Reverse(scores[r]));
        let survivors = m - num_restart;
        for (j, &dst) in order[survivors..].iter().enumerate() {
            let src = order[j % survivors];
            boundary.copy_lane(src, dst);
            events.push(RestartEvent { stage, src, dst });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SweepParam;
    use msropm_graph::generators;

    fn fast_config() -> MsropmConfig {
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    #[test]
    fn portfolio_without_restarts_equals_lane_batch() {
        let g = generators::kings_graph(3, 3);
        let base = fast_config();
        let sweep = SweepSpec::new().grid(SweepParam::Noise, vec![0.1, 0.18, 0.3]);
        let report = PortfolioRunner::from_sweep(base, &sweep)
            .base_seed(40)
            .run(&g);
        assert!(report.restarts.is_empty());
        let machine = crate::machine::Msropm::new(&g, base);
        let batch = machine.solve_batch_lanes(&sweep.lanes(), &[40, 41, 42], 1);
        for (o, s) in report.lanes.iter().zip(&batch) {
            assert_eq!(o.solution.coloring, s.coloring);
        }
    }

    #[test]
    fn restarts_fire_and_are_logged() {
        let g = generators::kings_graph(4, 4);
        let report = PortfolioRunner::new(fast_config(), vec![LaneConfig::default(); 8])
            .base_seed(9)
            .restart_fraction(0.25)
            .run(&g);
        // 4 colors => 2 stages => exactly one boundary; 8 * 0.25 = 2
        // restarts at stage 1.
        assert_eq!(report.restarts.len(), 2);
        assert!(report.restarts.iter().all(|e| e.stage == 1));
        for e in &report.restarts {
            assert_ne!(e.src, e.dst);
            // A restarted lane is never also a survivor source.
            assert!(report.restarts.iter().all(|e2| e2.dst != e.src));
        }
    }

    #[test]
    fn restart_copies_survivor_partition() {
        let g = generators::kings_graph(4, 4);
        let report = PortfolioRunner::new(fast_config(), vec![LaneConfig::default(); 4])
            .base_seed(77)
            .restart_fraction(0.25)
            .run(&g);
        assert_eq!(report.restarts.len(), 1);
        let e = report.restarts[0];
        // dst inherited src's stage-1 history outright: its record is
        // the survivor's (the lineage its final coloring is built on),
        // and stage 2 ran on the same active-edge set.
        let src_sol = &report.lanes[e.src].solution;
        let dst_sol = &report.lanes[e.dst].solution;
        assert_eq!(src_sol.stages[0].partition, dst_sol.stages[0].partition);
        assert_eq!(src_sol.stages[0].cut_value, dst_sol.stages[0].cut_value);
        assert_eq!(
            src_sol.stages[1].active_edges,
            dst_sol.stages[1].active_edges
        );
        // And the final coloring's stage-1 bit really is that partition.
        let g_nodes = dst_sol.coloring.len();
        for i in 0..g_nodes {
            let bit = usize::from(
                dst_sol.stages[0]
                    .partition
                    .side(msropm_graph::NodeId::new(i)),
            );
            assert_eq!(dst_sol.coloring.as_slice()[i].index() >> 1, bit, "node {i}");
        }
    }

    #[test]
    fn portfolio_is_deterministic() {
        let g = generators::kings_graph(3, 3);
        let run = || {
            PortfolioRunner::new(fast_config(), vec![LaneConfig::default(); 5])
                .base_seed(3)
                .restart_fraction(0.4)
                .run(&g)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.accuracies(), b.accuracies());
        assert_eq!(a.restarts, b.restarts);
    }

    #[test]
    fn two_color_portfolio_has_no_boundaries() {
        let g = generators::grid_graph(3, 3);
        let base = fast_config().with_num_colors(2);
        let report = PortfolioRunner::new(base, vec![LaneConfig::default(); 3])
            .restart_fraction(0.5)
            .run(&g);
        assert!(report.restarts.is_empty(), "single stage, no boundary");
        assert_eq!(report.lanes.len(), 3);
    }

    #[test]
    fn best_lane_is_argmax() {
        let g = generators::kings_graph(4, 4);
        let sweep = SweepSpec::new().linspace(SweepParam::Noise, 0.05, 0.35, 4);
        let report = PortfolioRunner::from_sweep(fast_config(), &sweep)
            .base_seed(13)
            .run(&g);
        let best = report.best();
        assert!(report
            .accuracies()
            .iter()
            .all(|&a| a <= best.accuracy + 1e-12));
        assert_eq!(report.best_accuracy(), best.accuracy);
    }

    #[test]
    fn shard_width_is_invisible_to_restarting_portfolios() {
        // Restarts couple lanes across shard boundaries at every join;
        // the report (accuracies *and* the restart log) must not move
        // by a bit when the stage windows shard.
        let g = generators::kings_graph(4, 4);
        let run = |shards: usize| {
            PortfolioRunner::new(fast_config(), vec![LaneConfig::default(); 8])
                .base_seed(9)
                .restart_fraction(0.25)
                .shards(shards)
                .run(&g)
        };
        let one = run(1);
        assert!(!one.restarts.is_empty(), "restarts must fire");
        for shards in [2usize, 4] {
            let sharded = run(shards);
            assert_eq!(one.restarts, sharded.restarts, "{shards} shards");
            assert_eq!(one.accuracies(), sharded.accuracies(), "{shards} shards");
            for (a, b) in one.lanes.iter().zip(&sharded.lanes) {
                assert_eq!(a.solution.coloring, b.solution.coloring);
                for (p, q) in a.solution.final_phases.iter().zip(&b.solution.final_phases) {
                    assert_eq!(p.to_bits(), q.to_bits(), "lane {} phases", a.lane);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_portfolio_rejected() {
        PortfolioRunner::new(fast_config(), Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = PortfolioRunner::new(fast_config(), vec![LaneConfig::default()]).shards(0);
    }

    #[test]
    #[should_panic(expected = "restart fraction")]
    fn bad_restart_fraction_rejected() {
        let _ =
            PortfolioRunner::new(fast_config(), vec![LaneConfig::default()]).restart_fraction(1.5);
    }
}
