//! Problem cache: interned, compiled machines keyed by canonical graph
//! hash + config fingerprint.
//!
//! Compiling a problem (building the [`msropm_osc::PhaseNetwork`] from a
//! graph at an operating point) is pure overhead for repeat topologies —
//! a production front end sees the same benchmark boards and customer
//! graphs over and over. [`ProblemCache`] interns one [`Msropm`] per
//! `(graph, config)` pair behind an `Arc`, so concurrent workers share a
//! single compilation and a job can start integrating immediately on a
//! hit.
//!
//! Keys are `(`[`msropm_graph::io::graph_hash`]`, config fingerprint,
//! problem fingerprint)`. The problem fingerprint is `0` for plain
//! graph-coloring submissions; compiled [`ProblemSpec`] submissions
//! (see the `msropm-problems` crate) carry their own domain digest so
//! two different problems that *encode* onto the same graph and config
//! (e.g. MIS vs max-cut on one topology) occupy distinct slots and the
//! per-class hit statistics stay meaningful.
//! Because a 64-bit digest can collide in principle, every hit is
//! verified structurally against the resident machine's graph **and**
//! config (an `O(m)` edge compare — noise next to a solve); a verified
//! mismatch is compiled fresh and **not** cached, so a collision can
//! never produce a wrong answer, only a lost cache slot. Eviction is LRU
//! under a fixed entry cap. Cache hits are bit-identical to misses:
//! `Msropm::new` is deterministic, and the machine is immutable once
//! interned.

use crate::config::{KernelBackend, MsropmConfig, ReinitMode};
use crate::machine::Msropm;
use msropm_graph::{graph_hash, Graph};
use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a over the configuration's exact field encoding: two configs
/// share a fingerprint iff every dynamics/timing field is bit-identical
/// (f64 fields compare by `to_bits`, so `-0.0 != 0.0` — stricter than
/// `==`, never wrong).
fn config_fingerprint(c: &MsropmConfig) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(c.num_colors as u64);
    mix(c.coupling_strength.to_bits());
    mix(c.shil_strength.to_bits());
    mix(c.noise.to_bits());
    mix(c.frequency_spread.to_bits());
    mix(c.t_init.to_bits());
    mix(c.t_anneal.to_bits());
    mix(c.t_lock.to_bits());
    mix(c.dt.to_bits());
    match c.reinit {
        ReinitMode::UniformRandom => mix(1),
        ReinitMode::JitterDrift { sigma } => {
            mix(2);
            mix(sigma.to_bits());
        }
    }
    mix(u64::from(c.shil_ramp));
    // The numeric backend is part of the problem identity: a machine
    // compiled for one backend must never serve the other's lookups.
    mix(match c.backend {
        KernelBackend::F64 => 1,
        KernelBackend::Fixed => 2,
    });
    h
}

/// Same labelled topology? Cheap structural equality used to verify
/// hash hits (edge lists are canonical in a [`Graph`], so zip-compare
/// suffices).
fn same_graph(a: &Graph, b: &Graph) -> bool {
    a.num_nodes() == b.num_nodes()
        && a.num_edges() == b.num_edges()
        && a.edges()
            .zip(b.edges())
            .all(|((_, u1, v1), (_, u2, v2))| u1 == u2 && v1 == v2)
}

#[derive(Debug)]
struct Entry {
    machine: Arc<Msropm>,
    /// Monotone LRU stamp; the smallest stamp is evicted first.
    last_used: u64,
}

/// Running hit/miss/eviction counters of a [`ProblemCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a resident, verified entry.
    pub hits: u64,
    /// Lookups that compiled a fresh machine (and, capacity permitting,
    /// interned it).
    pub misses: u64,
    /// Entries evicted to respect the capacity cap.
    pub evictions: u64,
    /// Verified 64-bit digest collisions (compiled fresh, not cached).
    pub collisions: u64,
}

/// LRU-interning table of compiled machines; see the module docs.
///
/// The cache itself is not synchronized — `msropm-server` wraps one in a
/// mutex and clones the `Arc<Msropm>` out, so workers never solve while
/// holding the lock.
#[derive(Debug)]
pub struct ProblemCache {
    capacity: usize,
    entries: HashMap<(u64, u64, u64), Entry>,
    clock: u64,
    stats: CacheStats,
}

impl ProblemCache {
    /// Creates a cache holding at most `capacity` compiled machines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be at least 1");
        ProblemCache {
            capacity,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up the interned machine for `(graph, config)` without
    /// compiling. `None` means absent (counted as the start of a miss)
    /// *or* a verified digest collision (counted; such a problem is
    /// served uncached). On a hit the entry is verified structurally —
    /// graph **and** config — so a collision on either 64-bit digest can
    /// never hand back the wrong compilation.
    ///
    /// Use `lookup`/[`ProblemCache::intern`] around an unlocked compile
    /// when the cache sits behind a mutex; [`ProblemCache::get_or_compile`]
    /// is the single-threaded convenience.
    pub fn lookup(&mut self, graph: &Graph, config: &MsropmConfig) -> Option<Arc<Msropm>> {
        self.lookup_problem(graph, config, 0)
    }

    /// Like [`ProblemCache::lookup`], but scoped to one compiled
    /// problem: `problem_fingerprint` is the domain digest of the
    /// submitted [`ProblemSpec`] (`0` for plain graph submissions), so
    /// distinct problem classes sharing an encoding graph and config
    /// never alias each other's slots.
    pub fn lookup_problem(
        &mut self,
        graph: &Graph,
        config: &MsropmConfig,
        problem_fingerprint: u64,
    ) -> Option<Arc<Msropm>> {
        let key = (
            graph_hash(graph),
            config_fingerprint(config),
            problem_fingerprint,
        );
        self.clock += 1;
        match self.entries.get_mut(&key) {
            Some(entry)
                if same_graph(entry.machine.graph(), graph) && entry.machine.config() == config =>
            {
                entry.last_used = self.clock;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.machine))
            }
            Some(_) => {
                // True 64-bit collision: keep the resident entry; the
                // caller compiles fresh and `intern` will refuse to
                // displace the resident.
                self.stats.collisions += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Interns `machine` (compiled by the caller after a failed
    /// [`ProblemCache::lookup`]) and returns the canonical `Arc` for the
    /// problem: if another worker interned a verified entry for the same
    /// key in the meantime, *that* entry wins and `machine` is discarded
    /// (all compilations are bit-identical, so either answer is the
    /// same); on a digest collision the resident entry stays and
    /// `machine` is returned uncached. Evicts LRU beyond capacity.
    pub fn intern(&mut self, machine: Arc<Msropm>) -> Arc<Msropm> {
        self.intern_problem(machine, 0)
    }

    /// Like [`ProblemCache::intern`], but under the slot of one
    /// compiled problem (see [`ProblemCache::lookup_problem`]).
    pub fn intern_problem(
        &mut self,
        machine: Arc<Msropm>,
        problem_fingerprint: u64,
    ) -> Arc<Msropm> {
        let key = (
            graph_hash(machine.graph()),
            config_fingerprint(machine.config()),
            problem_fingerprint,
        );
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            if same_graph(entry.machine.graph(), machine.graph())
                && entry.machine.config() == machine.config()
            {
                entry.last_used = self.clock;
                return Arc::clone(&entry.machine);
            }
            return machine;
        }
        if self.entries.len() >= self.capacity {
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                machine: Arc::clone(&machine),
                last_used: self.clock,
            },
        );
        machine
    }

    /// Returns the interned machine for `(graph, config)`, compiling it
    /// on first sight. The returned `Arc` stays valid (and bit-identical)
    /// however the cache evolves afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`MsropmConfig::validate`]).
    pub fn get_or_compile(&mut self, graph: &Graph, config: &MsropmConfig) -> Arc<Msropm> {
        if let Some(machine) = self.lookup(graph, config) {
            return machine;
        }
        self.intern(Arc::new(Msropm::new(graph, *config)))
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry cap this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Running counters (hits, misses, evictions, collisions).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;

    fn fast_config() -> MsropmConfig {
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    #[test]
    fn repeat_topology_hits_and_interns() {
        let g = generators::kings_graph(4, 4);
        let mut cache = ProblemCache::new(4);
        let a = cache.get_or_compile(&g, &fast_config());
        let b = cache.get_or_compile(&g, &fast_config());
        assert!(Arc::ptr_eq(&a, &b), "hit must return the interned machine");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn config_changes_are_distinct_problems() {
        let g = generators::kings_graph(3, 3);
        let mut cache = ProblemCache::new(4);
        let a = cache.get_or_compile(&g, &fast_config());
        let hot = MsropmConfig {
            noise: 0.31,
            ..fast_config()
        };
        let b = cache.get_or_compile(&g, &hot);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_under_the_cap() {
        let mut cache = ProblemCache::new(2);
        let g1 = generators::kings_graph(3, 3);
        let g2 = generators::cycle_graph(10);
        let g3 = generators::path_graph(7);
        let cfg = fast_config();
        cache.get_or_compile(&g1, &cfg);
        cache.get_or_compile(&g2, &cfg);
        // Touch g1 so g2 becomes the LRU victim.
        cache.get_or_compile(&g1, &cfg);
        cache.get_or_compile(&g3, &cfg);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // g1 survived (hit), g2 was evicted (miss recompiles).
        let before = cache.stats().hits;
        cache.get_or_compile(&g1, &cfg);
        assert_eq!(cache.stats().hits, before + 1);
        let misses_before = cache.stats().misses;
        cache.get_or_compile(&g2, &cfg);
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn lookup_intern_double_checked_path() {
        let g = generators::kings_graph(3, 3);
        let cfg = fast_config();
        let mut cache = ProblemCache::new(2);
        // Absent: lookup misses, caller compiles unlocked.
        assert!(cache.lookup(&g, &cfg).is_none());
        let a = cache.intern(Arc::new(Msropm::new(&g, cfg)));
        // A racing worker's duplicate compilation loses to the resident.
        let b = cache.intern(Arc::new(Msropm::new(&g, cfg)));
        assert!(Arc::ptr_eq(&a, &b), "resident entry must win the race");
        let hit = cache.lookup(&g, &cfg).expect("now resident");
        assert!(Arc::ptr_eq(&a, &hit));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn problem_fingerprints_get_distinct_slots() {
        // Two problems encoding onto the same graph + config (e.g. MIS
        // vs max-cut) must not alias each other's cache slots, and the
        // plain graph path (fingerprint 0) is its own slot too.
        let g = generators::cycle_graph(8);
        let cfg = fast_config();
        let mut cache = ProblemCache::new(4);
        let plain = cache.get_or_compile(&g, &cfg);
        assert!(cache.lookup_problem(&g, &cfg, 0xfeed).is_none());
        let a = cache.intern_problem(Arc::new(Msropm::new(&g, cfg)), 0xfeed);
        let b = cache.intern_problem(Arc::new(Msropm::new(&g, cfg)), 0xbeef);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&plain, &a));
        assert_eq!(cache.len(), 3);
        let hit = cache.lookup_problem(&g, &cfg, 0xfeed).expect("resident");
        assert!(Arc::ptr_eq(&a, &hit));
        // The plain-key API still resolves to the fingerprint-0 slot.
        let hit0 = cache.lookup(&g, &cfg).expect("resident");
        assert!(Arc::ptr_eq(&plain, &hit0));
    }

    #[test]
    fn backend_never_aliases_a_cache_slot() {
        // Two configs identical except for the kernel backend must hash
        // to distinct fingerprints and occupy distinct slots: a machine
        // compiled for the f64 stack must never be served to a
        // fixed-point job or vice versa.
        let cfg_f64 = fast_config();
        let cfg_fx = fast_config().with_backend(KernelBackend::Fixed);
        assert_ne!(config_fingerprint(&cfg_f64), config_fingerprint(&cfg_fx));

        let g = generators::kings_graph(3, 3);
        let mut cache = ProblemCache::new(4);
        let a = cache.get_or_compile(&g, &cfg_f64);
        let b = cache.get_or_compile(&g, &cfg_fx);
        assert!(!Arc::ptr_eq(&a, &b), "cross-backend hit served");
        assert_eq!(cache.len(), 2, "backends must occupy distinct slots");
        assert_eq!(cache.stats().misses, 2);
        // Each backend's lookup resolves to its own machine.
        let hit_f64 = cache.lookup(&g, &cfg_f64).expect("f64 slot resident");
        let hit_fx = cache.lookup(&g, &cfg_fx).expect("fixed slot resident");
        assert!(Arc::ptr_eq(&a, &hit_f64));
        assert!(Arc::ptr_eq(&b, &hit_fx));
        assert_eq!(hit_f64.config().backend, KernelBackend::F64);
        assert_eq!(hit_fx.config().backend, KernelBackend::Fixed);
    }

    #[test]
    fn fingerprint_distinguishes_reinit_modes() {
        let uniform = MsropmConfig {
            reinit: ReinitMode::UniformRandom,
            ..fast_config()
        };
        let drift = MsropmConfig {
            reinit: ReinitMode::JitterDrift { sigma: 1.0 },
            ..fast_config()
        };
        assert_ne!(config_fingerprint(&uniform), config_fingerprint(&drift));
        assert_eq!(config_fingerprint(&uniform), config_fingerprint(&uniform));
    }
}
