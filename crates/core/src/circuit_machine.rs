//! The MSROPM executed end-to-end on the **behavioural circuit substrate**
//! — the closest analogue of the paper's transistor-level experiments.
//!
//! [`Msropm`](crate::Msropm) runs the divide-and-color schedule on the
//! phase macromodel, which scales to the 2116-node benchmarks.
//! [`CircuitMsropm`] runs the *same* control schedule on the
//! `msropm-circuit` array — real inverter rings, gated B2B couplings and
//! PMOS SHIL injectors — and reads colors out of relative waveform phases.
//! It is practical up to a few dozen rings (each ring is an 11-node ODE),
//! which is exactly how it is used: to validate that the macromodel's
//! algorithmic behaviour survives contact with the circuit.

use crate::config::MsropmConfig;
use crate::schedule::{Schedule, WindowKind};
use msropm_graph::{Color, Coloring, Cut, Graph};
use rand::Rng;
use std::f64::consts::TAU;

/// Configuration of the circuit-level machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitMsropmConfig {
    /// Stage timings and color count (the `dt` field is ignored; the
    /// circuit uses `dt_ps`).
    pub schedule: MsropmConfig,
    /// B2B coupling strength as a fraction of a unit inverter.
    pub b2b_strength: f64,
    /// SHIL PMOS injection conductance (siemens).
    pub shil_injection: f64,
    /// Transient step in picoseconds.
    pub dt_ps: f64,
    /// Time-scale multiplier applied to every window: the behavioural
    /// rings lock somewhat slower than the paper's SPICE devices, so the
    /// default stretches the 60 ns schedule by 2x.
    pub time_scale: f64,
}

impl Default for CircuitMsropmConfig {
    fn default() -> Self {
        CircuitMsropmConfig {
            schedule: MsropmConfig::paper_default(),
            b2b_strength: 0.18,
            shil_injection: 8e-4,
            dt_ps: 2.0,
            time_scale: 2.0,
        }
    }
}

/// Result of one circuit-level run.
#[derive(Debug, Clone)]
pub struct CircuitSolution {
    /// Final color per vertex, from waveform-phase quadrants.
    pub coloring: Coloring,
    /// The stage-1 partition readout.
    pub stage1: Cut,
    /// Total simulated time (ns).
    pub total_time_ns: f64,
}

/// The MSROPM on the behavioural circuit substrate.
#[derive(Debug, Clone)]
pub struct CircuitMsropm {
    graph: Graph,
    config: CircuitMsropmConfig,
}

impl CircuitMsropm {
    /// Maps `graph` onto a circuit array configuration.
    ///
    /// # Panics
    ///
    /// Panics if the schedule config is invalid, `num_colors != 4`
    /// (the circuit readout implements the paper's 2-stage/4-phase flow),
    /// or any circuit parameter is non-positive.
    pub fn new(graph: &Graph, config: CircuitMsropmConfig) -> Self {
        config.schedule.validate();
        assert_eq!(
            config.schedule.num_colors, 4,
            "circuit machine implements the paper's 4-color flow"
        );
        assert!(config.b2b_strength > 0.0, "B2B strength must be positive");
        assert!(config.shil_injection > 0.0, "injection must be positive");
        assert!(config.dt_ps > 0.0, "dt must be positive");
        assert!(config.time_scale > 0.0, "time scale must be positive");
        CircuitMsropm {
            graph: graph.clone(),
            config,
        }
    }

    /// The problem graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Total schedule duration in simulated ns (after time scaling).
    pub fn total_time_ns(&self) -> f64 {
        self.config.schedule.total_time_ns() * self.config.time_scale
    }

    /// Executes one complete two-stage run on the circuit.
    pub fn solve<R: Rng + ?Sized>(&self, rng: &mut R) -> CircuitSolution {
        let g = &self.graph;
        let n = g.num_nodes();
        let cfg = &self.config;
        let dt = cfg.dt_ps * 1e-3; // ps -> ns
        let mut array = msropm_circuit::CircuitArray::builder(g)
            .coupling_strength(cfg.b2b_strength)
            .shil_injection(cfg.shil_injection)
            .build();
        let mut state = array.random_state(rng);
        let schedule = Schedule::from_config(&cfg.schedule);

        let mut groups = vec![0usize; n];
        let mut stage1 = Cut::new(vec![false; n]);
        let mut t_abs = 0.0f64;

        for window in schedule.windows() {
            let duration = window.duration * cfg.time_scale;
            match window.kind {
                WindowKind::Randomize => {
                    array.set_all_edges_enabled(false);
                    array.set_shil_enabled(false);
                    // The paper re-randomizes through jitter; the
                    // behavioural model is noiseless, so re-randomize the
                    // state directly (same effect as the drift window).
                    state = array.random_state(rng);
                    // Brief free-run so rings re-establish oscillation.
                    array.run(&mut state, t_abs, duration, dt);
                }
                WindowKind::Anneal => {
                    for (e, u, v) in g.edges() {
                        array.set_edge_enabled(e.index(), groups[u.index()] == groups[v.index()]);
                    }
                    array.set_shil_enabled(false);
                    array.run(&mut state, t_abs, duration, dt);
                }
                WindowKind::Lock => {
                    for (i, &grp) in groups.iter().enumerate() {
                        array.set_shil_select(i, grp % 2);
                    }
                    array.set_shil_enabled(true);
                    array.run(&mut state, t_abs, duration, dt);
                }
            }
            t_abs += duration;

            if window.kind == WindowKind::Lock {
                let quad = self.read_quadrants(&array, &state, t_abs);
                if window.stage == 1 {
                    // Stage 1: bits from the half-period grid (quadrant 0/1
                    // vs 2/3 after rounding to the nearest half).
                    let bits: Vec<bool> = quad.iter().map(|&q| q == 2 || q == 3).collect();
                    stage1 = Cut::new(bits.clone());
                    for (grp, bit) in groups.iter_mut().zip(&bits) {
                        *grp = usize::from(*bit);
                    }
                }
            }
        }

        // Final readout: relative-phase quadrant = color.
        let quad = self.read_quadrants(&array, &state, t_abs);
        let coloring: Coloring = quad.iter().map(|&q| Color(q as u16)).collect();
        CircuitSolution {
            coloring,
            stage1,
            total_time_ns: t_abs,
        }
    }

    /// Runs `iterations` solves and keeps the best-accuracy coloring.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn solve_best_of<R: Rng + ?Sized>(
        &self,
        iterations: usize,
        rng: &mut R,
    ) -> CircuitSolution {
        assert!(iterations > 0, "need at least one iteration");
        let mut best: Option<(f64, CircuitSolution)> = None;
        for _ in 0..iterations {
            let sol = self.solve(rng);
            let acc = sol.coloring.accuracy(&self.graph);
            if best.as_ref().is_none_or(|(b, _)| acc > *b) {
                best = Some((acc, sol));
            }
        }
        best.expect("at least one iteration ran").1
    }

    /// Classifies each oscillator's phase relative to oscillator 0 into a
    /// quadrant of the oscillation cycle (the four Potts phases). This is
    /// the self-referenced equivalent of the DFF/reference-bank sampler —
    /// immune to the global lock-grid offset.
    fn read_quadrants(
        &self,
        array: &msropm_circuit::CircuitArray,
        state: &[f64],
        t_abs: f64,
    ) -> Vec<usize> {
        let n = self.graph.num_nodes();
        let window = 6.0 / array.f0_ghz().max(0.1);
        (0..n)
            .map(|i| {
                if i == 0 {
                    return 0;
                }
                let d = msropm_circuit::readout::measure_relative_phase(
                    array, state, i, 0, t_abs, window, 1e-3,
                )
                .unwrap_or(0.0);
                ((d / (TAU / 4.0)).round() as usize) % 4
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        let g = generators::path_graph(2);
        let cfg = CircuitMsropmConfig::default();
        let m = CircuitMsropm::new(&g, cfg);
        assert_eq!(m.graph().num_nodes(), 2);
        assert!(
            (m.total_time_ns() - 120.0).abs() < 1e-9,
            "2x-stretched 60 ns"
        );
    }

    #[test]
    #[should_panic(expected = "4-color flow")]
    fn rejects_other_color_counts() {
        let g = generators::path_graph(2);
        let cfg = CircuitMsropmConfig {
            schedule: MsropmConfig::paper_default().with_num_colors(8),
            ..Default::default()
        };
        CircuitMsropm::new(&g, cfg);
    }

    #[test]
    fn colors_a_single_edge() {
        let g = generators::path_graph(2);
        let m = CircuitMsropm::new(&g, CircuitMsropmConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let sol = m.solve_best_of(3, &mut rng);
        assert_eq!(sol.coloring.len(), 2);
        assert!(
            sol.coloring.is_proper(&g),
            "two coupled rings must take different colors: {:?}",
            sol.coloring
        );
    }

    #[test]
    fn four_colors_k4_at_circuit_level() {
        // The 2x2 King's graph is K4: a proper coloring uses all four
        // phases — the full multi-stage mechanism at transistor level.
        let g = generators::kings_graph(2, 2);
        let m = CircuitMsropm::new(&g, CircuitMsropmConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        let sol = m.solve_best_of(6, &mut rng);
        let acc = sol.coloring.accuracy(&g);
        assert!(
            acc >= 5.0 / 6.0,
            "circuit-level K4 accuracy {acc} (coloring {:?})",
            sol.coloring
        );
        assert_eq!(sol.total_time_ns, m.total_time_ns());
    }
}
