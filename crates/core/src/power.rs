//! Power estimation for experiment reports (Table 1's power column).

use msropm_circuit::{PowerBreakdown, PowerModel};
use msropm_graph::Graph;

/// Estimates the average power of running `g` on the MSROPM using the
/// Table-1-calibrated model (see
/// [`msropm_circuit::PowerModel::calibrated_to_paper`]).
pub fn paper_power_estimate(g: &Graph) -> PowerBreakdown {
    PowerModel::calibrated_to_paper().estimate(g.num_nodes(), g.num_edges())
}

/// Estimates average power from first principles (CV²f of the behavioural
/// technology), for comparison against the calibrated model.
pub fn physics_power_estimate(g: &Graph) -> PowerBreakdown {
    let tech = msropm_circuit::Technology::calibrated(11, 1.3);
    PowerModel::from_technology(&tech, 11, 1.3, 0.15).estimate(g.num_nodes(), g.num_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;

    #[test]
    fn paper_benchmark_power_estimates() {
        // The calibrated model must land near Table 1 for all four sizes.
        for (side, expected_mw) in [(7usize, 9.4f64), (20, 60.3), (32, 146.1), (46, 283.4)] {
            let g = generators::kings_graph_square(side);
            let est = paper_power_estimate(&g).total_mw();
            let rel = (est - expected_mw).abs() / expected_mw;
            assert!(
                rel < 0.06,
                "side {side}: estimated {est:.1} mW vs paper {expected_mw} mW"
            );
        }
    }

    #[test]
    fn power_scales_monotonically() {
        let small = paper_power_estimate(&generators::kings_graph_square(7)).total_mw();
        let large = paper_power_estimate(&generators::kings_graph_square(46)).total_mw();
        assert!(large > small * 10.0);
    }

    #[test]
    fn physics_estimate_positive() {
        let g = generators::kings_graph_square(7);
        let p = physics_power_estimate(&g);
        assert!(p.total_mw() > 0.0);
        assert!(p.oscillators_mw > 0.0);
        assert!(p.couplings_mw > 0.0);
    }
}
