//! # MSROPM — Multi-Stage coupled Ring-Oscillator Potts Machine
//!
//! This crate implements the primary contribution of the DATE 2025 paper
//! *"A Multi-Stage Potts Machine based on Coupled CMOS Ring Oscillators"*
//! (Gonul & Taskin): a Potts machine that represents N-valued spins with a
//! **single oscillator per vertex** by solving in multiple stages, each
//! stage binarizing oscillator phases with a differently phase-shifted
//! 2nd-order SHIL.
//!
//! ## The divide-and-color algorithm (paper §3.1–3.2)
//!
//! For 4-coloring (two stages):
//!
//! 1. **Self-anneal**: all couplings on, SHIL off — the coupled array
//!    descends the max-cut energy landscape under phase noise (20 ns).
//! 2. **Stage-1 lock**: SHIL 1 (ψ=0°) binarizes every phase to {0°, 180°};
//!    the readout of this state is a 2-partition (a max-cut solution).
//! 3. **Partition**: `P_EN` gates cut every coupling crossing the
//!    partition; `SHIL_SEL` latches which SHIL each oscillator will receive.
//! 4. **Re-randomize**: couplings and SHIL off; jitter drifts the phases
//!    apart (5 ns).
//! 5. **Second self-anneal**: intra-partition couplings on — two
//!    independent max-cuts run simultaneously (20 ns).
//! 6. **Stage-2 lock**: partition A receives SHIL 1 ({0°, 180°}),
//!    partition B receives SHIL 2 (ψ=180° → {90°, 270°}): four globally
//!    distinct phases = four colors, read out by the DFF bank (5 ns).
//!
//! [`Msropm`] generalizes this to `2^k` colors with `k` stages and
//! `2^(k−1)` phase-shifted SHILs (paper §3.2's extension).
//!
//! ## Example
//!
//! ```
//! use msropm_core::{Msropm, MsropmConfig};
//! use msropm_graph::generators::kings_graph;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = kings_graph(5, 5);
//! let mut machine = Msropm::new(&g, MsropmConfig::paper_default());
//! let mut rng = StdRng::seed_from_u64(7);
//! let solution = machine.solve(&mut rng);
//! let accuracy = solution.coloring.accuracy(&g);
//! assert!(accuracy > 0.8, "accuracy {accuracy}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baselines;
pub mod batch;
pub mod cache;
pub mod circuit_machine;
pub mod config;
pub mod job;
pub mod machine;
pub mod metrics;
pub mod pool;
pub mod portfolio;
pub mod power;
pub mod runner;
pub mod schedule;

pub use batch::{BatchArena, ShardedArena};
pub use cache::{CacheStats, ProblemCache};
pub use circuit_machine::{CircuitMsropm, CircuitMsropmConfig, CircuitSolution};
pub use config::{KernelBackend, LaneConfig, MsropmConfig, ReinitMode, SweepParam, SweepSpec};
pub use job::{BatchJob, CancelToken, JobReport, RankedLane};
pub use machine::{ArenaRef, Msropm, MsropmSolution, SolveOptions, SolveShardPolicy, StageRecord};
pub use metrics::{coloring_accuracy, max_cut_accuracy, search_space_label};
pub use pool::{num_cores, ShardPool};
pub use portfolio::{LaneOutcome, PortfolioReport, PortfolioRunner, RestartEvent};
pub use runner::{CutReference, ExperimentReport, ExperimentRunner, IterationOutcome};
pub use schedule::{ControlState, Schedule, ScheduleSet, Window, WindowKind};
