//! The intra-job shard pool: persistent work-stealing workers that
//! execute per-stage shard tasks for [`crate::batch`]'s sharded solve
//! path.
//!
//! A sharded solve splits a job's lane range into contiguous chunks and
//! runs each chunk's current stage as one owned task. Tasks enter the
//! pool through a global [`Injector`]; each worker drains its local
//! deque first, then rebalances from the injector, then steals from
//! sibling workers — the standard work-stealing discipline, built on the
//! `vendor/crossbeam` deque shim so the whole crate stays
//! `#![forbid(unsafe_code)]`. Because tasks are owned (`'static`)
//! run-to-completion closures and the dispatching coordinator *helps*
//! (steals and runs pool tasks while waiting for its own shards via
//! [`ShardPool::help_while`]), the pool cannot deadlock regardless of
//! how many concurrent jobs oversubscribe it: every queued task is
//! runnable by any thread that touches the pool.
//!
//! One process-wide pool ([`global`]) sized to [`num_cores`] backs the
//! job server and the portfolio runner; tests build private pools to
//! exercise width edge cases.

use crossbeam::deque::{Injector, Stealer, Worker};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Number of logical cores available to this process (1 when detection
/// fails). The single source of core-count truth for the workspace: the
/// pool's default width, `ExperimentRunner`'s default thread cap and
/// the bench bins all route here.
pub fn num_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// State the sleep condvar guards: nothing but the shutdown flag —
/// workers re-check the (externally locked) queues under this mutex
/// before sleeping, which is what makes wakeups impossible to lose.
struct SleepState {
    shutdown: bool,
}

struct PoolShared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    sleep: Mutex<SleepState>,
    wakeup: Condvar,
    tasks_run: AtomicU64,
}

impl PoolShared {
    fn lock_sleep(&self) -> std::sync::MutexGuard<'_, SleepState> {
        self.sleep.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Steals one task from the injector or any worker's deque (for
    /// helpers that have no local deque of their own).
    fn steal_task(&self) -> Option<Task> {
        if let Some(t) = self.injector.steal().success() {
            return Some(t);
        }
        self.stealers.iter().find_map(|s| s.steal().success())
    }

    /// `true` when any queue holds a task.
    fn has_work(&self) -> bool {
        !self.injector.is_empty() || self.stealers.iter().any(|s| !s.is_empty())
    }

    fn run(&self, task: Task) {
        // A task must never take a pool worker down with it. Shard tasks
        // catch their own panics and report them through their result
        // channel; this is the backstop for the backstop.
        let _ = catch_unwind(AssertUnwindSafe(task));
        self.tasks_run.fetch_add(1, Ordering::Relaxed);
    }
}

/// A persistent pool of work-stealing shard workers (see module docs).
///
/// Dropping a pool shuts its workers down after their in-flight task;
/// queued-but-unstarted tasks are dropped, so callers must collect every
/// outstanding result before letting a pool go (the solve path always
/// does — it blocks in [`ShardPool::help_while`] until all its shards
/// report).
pub struct ShardPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("width", &self.workers.len())
            .field("tasks_run", &self.tasks_run())
            .finish()
    }
}

impl ShardPool {
    /// Spawns a pool of `width` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "shard pool needs at least one worker");
        let locals: Vec<Worker<Task>> = (0..width).map(|_| Worker::new_fifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        let shared = Arc::new(PoolShared {
            injector: Injector::new(),
            stealers,
            sleep: Mutex::new(SleepState { shutdown: false }),
            wakeup: Condvar::new(),
            tasks_run: AtomicU64::new(0),
        });
        let workers = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("msropm-shard-{i}"))
                    .spawn(move || worker_loop(&shared, &local))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool { shared, workers }
    }

    /// Number of pool workers (excluding helping coordinators).
    pub fn width(&self) -> usize {
        self.workers.len()
    }

    /// Total tasks the pool has completed (workers and helpers).
    pub fn tasks_run(&self) -> u64 {
        self.shared.tasks_run.load(Ordering::Relaxed)
    }

    /// Submits one owned task for any worker (or helping coordinator)
    /// to execute.
    pub fn submit(&self, task: Task) {
        self.shared.injector.push(task);
        // Pairing the notify with the sleep lock closes the race against
        // a worker that just found the queues empty.
        drop(self.shared.lock_sleep());
        self.shared.wakeup.notify_all();
    }

    /// Runs pool tasks on the calling thread until `done()` answers
    /// `true` — the coordinator side of the bargain: a thread waiting on
    /// shard results works the queue instead of idling, so `shards >
    /// width` configurations (and a 1-core container) still make
    /// progress at full speed and concurrent coordinators can never
    /// deadlock each other.
    pub fn help_while<F: FnMut() -> bool>(&self, mut done: F) {
        let mut idle_spins = 0u32;
        while !done() {
            if let Some(task) = self.shared.steal_task() {
                self.shared.run(task);
                idle_spins = 0;
            } else {
                // Nothing stealable: the remaining shards are in flight
                // on workers. Back off briefly rather than spinning.
                idle_spins += 1;
                if idle_spins < 8 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shared.lock_sleep().shutdown = true;
        self.shared.wakeup.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, local: &Worker<Task>) {
    loop {
        let task = local
            .pop()
            .or_else(|| shared.injector.steal_batch_and_pop(local).success())
            .or_else(|| shared.stealers.iter().find_map(|s| s.steal().success()));
        if let Some(task) = task {
            shared.run(task);
            continue;
        }
        let guard = shared.lock_sleep();
        if guard.shutdown {
            return;
        }
        // Re-check under the lock: a submit that raced the scan above
        // will have taken this mutex before notifying, so either the
        // task is visible now or the notification is still to come.
        if shared.has_work() {
            continue;
        }
        let _unused = shared
            .wakeup
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// The process-wide shard pool, created on first use with
/// [`num_cores`] workers. The job server's workers and
/// [`crate::portfolio::PortfolioRunner`] share it, so intra-job
/// parallelism never oversubscribes the machine with per-job thread
/// armies.
pub fn global() -> &'static ShardPool {
    static GLOBAL: OnceLock<ShardPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ShardPool::new(num_cores()))
}

/// Runtime-armed fault injection for shard execution, mirroring the
/// server crate's `faultinject` idiom: the disarmed fast path is a
/// single relaxed atomic load, so production solves pay nothing.
pub mod faultinject {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// `u64::MAX` = disarmed; otherwise the shard index that panics at
    /// its next stage entry.
    static PANIC_SHARD: AtomicU64 = AtomicU64::new(u64::MAX);

    /// Arms a one-shot panic inside shard `shard`'s next stage task —
    /// on the pool worker (or helping coordinator) executing that
    /// shard, not on the thread that dispatched the job.
    pub fn arm_panic_in_shard(shard: usize) {
        PANIC_SHARD.store(shard as u64, Ordering::Release);
    }

    /// Disarms the shard panic (tests call this from a drop guard so a
    /// failing assertion cannot leak an armed fault).
    pub fn disarm() {
        PANIC_SHARD.store(u64::MAX, Ordering::Release);
    }

    /// Check point called by every shard stage task.
    ///
    /// # Panics
    ///
    /// Panics (once) when armed for `shard`.
    pub fn maybe_panic_in_shard(shard: usize) {
        if PANIC_SHARD.load(Ordering::Relaxed) == u64::MAX {
            return;
        }
        if PANIC_SHARD
            .compare_exchange(shard as u64, u64::MAX, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            panic!("injected shard panic (shard {shard})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn tasks_execute_and_results_come_back() {
        let pool = ShardPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..16u64 {
            let tx = tx.clone();
            pool.submit(Box::new(move || tx.send(i * i).expect("recv alive")));
        }
        let mut got: Vec<u64> = rx.iter().take(16).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).map(|i| i * i).collect::<Vec<_>>());
        assert!(pool.tasks_run() >= 16);
    }

    #[test]
    fn helping_coordinator_drains_an_oversubscribed_pool() {
        // 1 worker, 8 tasks: the coordinator must pick up the slack.
        let pool = ShardPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(2));
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let d = Arc::clone(&done);
        pool.help_while(move || d.load(Ordering::SeqCst) == 8);
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn a_panicking_task_does_not_kill_the_worker() {
        let pool = ShardPool::new(1);
        pool.submit(Box::new(|| panic!("task panic")));
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || tx.send(1u8).expect("recv alive")));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)).expect("survivor"),
            1
        );
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ShardPool::new(3);
        let (tx, rx) = mpsc::channel();
        for _ in 0..3 {
            let tx = tx.clone();
            pool.submit(Box::new(move || tx.send(()).expect("recv alive")));
        }
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_secs(10)).expect("task ran");
        }
        drop(pool); // must not hang
    }

    #[test]
    fn global_pool_matches_core_count() {
        assert_eq!(global().width(), num_cores());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_width_rejected() {
        let _ = ShardPool::new(0);
    }
}
