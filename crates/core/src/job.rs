//! Batch-solve jobs and ranked reports — the job-server unit of work.
//!
//! A [`BatchJob`] bundles what one tenant submits against one graph: the
//! base operating point ([`MsropmConfig`]), a set of control lanes (an
//! explicit [`LaneConfig`] list or a compiled [`SweepSpec`]) and a job
//! seed from which per-lane seeds are derived. Running a job yields a
//! [`JobReport`]: every lane's solution ranked best-first by conflict
//! count (ties broken by lane index, so the ranking is total and
//! deterministic).
//!
//! # Determinism contract
//!
//! `report = job.run(&machine, &mut arena)` is a pure function of
//! `(graph, job)`: per-lane seeds come from a SplitMix64 stream over the
//! job seed, each lane's trajectory is bit-identical to a standalone
//! `Msropm::solve` at the lane's resolved config (see [`crate::batch`]),
//! and the ranking is a stable sort on `(conflicts, lane)`. Neither the
//! arena's history nor which worker thread of a pool executes the job
//! can change a bit of the report — `msropm-server` property-tests this
//! across 1 vs 4 workers.

use crate::batch::BatchArena;
use crate::config::{LaneConfig, MsropmConfig, SweepSpec};
use crate::machine::{Msropm, MsropmSolution};
use msropm_graph::{graph_hash, Graph};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag for one in-flight job.
///
/// Cancellation is **cooperative**: the solver checks the token before
/// starting and at every non-final stage boundary (the instants the
/// paper's control sequencer could realistically intervene between SHIL
/// windows — see [`crate::batch`]'s stage hook). A cancelled run is
/// abandoned wholesale: it produces no report, and the check can never
/// perturb a run that completes, because it happens strictly between
/// stages (after all RNG draws of the finished stage, before any of the
/// next). Clones share the flag; cancelling any clone cancels the job.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; takes effect at the job's next
    /// cooperative check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// One batch-solve job: lanes + seed against a single (implied) graph.
///
/// The graph itself is *not* part of the job — callers pair a job with a
/// compiled machine (usually out of a [`crate::cache::ProblemCache`]),
/// which keeps repeat-topology submissions from recompiling anything.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Base operating point; per-lane overrides apply on top of this.
    pub config: MsropmConfig,
    /// One control lane per replica the job runs.
    pub lanes: Vec<LaneConfig>,
    /// Job seed; lane `i` is seeded with the `i`-th SplitMix64 output
    /// (see [`BatchJob::lane_seeds`]).
    pub seed: u64,
}

impl BatchJob {
    /// A homogeneous job: `replicas` lanes at the base config.
    pub fn uniform(config: MsropmConfig, replicas: usize, seed: u64) -> Self {
        BatchJob {
            config,
            lanes: vec![LaneConfig::default(); replicas],
            seed,
        }
    }

    /// A heterogeneous job whose lanes are the cartesian sweep grid of
    /// `sweep` (see [`SweepSpec::lanes`]).
    pub fn from_sweep(config: MsropmConfig, sweep: &SweepSpec, seed: u64) -> Self {
        BatchJob {
            config,
            lanes: sweep.lanes(),
            seed,
        }
    }

    /// Forces every lane of the job onto `backend`: sets the base
    /// config's backend and clears any per-lane backend pins, so the
    /// whole batch runs single-backend on `backend` no matter what the
    /// submitter asked for. This is the server-side override hook
    /// (`msropm_serve --backend`) — it must run **before** the job's
    /// config is used as a cache key, since the backend is part of the
    /// [`crate::cache::ProblemCache`] fingerprint.
    pub fn force_backend(&mut self, backend: crate::KernelBackend) {
        self.config.backend = backend;
        for lane in &mut self.lanes {
            lane.backend = None;
        }
    }

    /// Per-lane seeds: the first `lanes.len()` outputs of a SplitMix64
    /// generator seeded with the job seed. Distinct lanes get
    /// well-separated RNG streams even for adjacent job seeds, and the
    /// derivation is a stable part of the job format (changing it would
    /// change every report).
    pub fn lane_seeds(&self) -> Vec<u64> {
        let mut state = self.seed;
        (0..self.lanes.len())
            .map(|_| {
                // SplitMix64 (Steele et al., "Fast splittable pseudorandom
                // number generators").
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    /// Runs the job on `machine` (which must be compiled from the graph
    /// this job targets, at `self.config`) inside the caller's arena and
    /// returns the ranked report.
    ///
    /// # Panics
    ///
    /// Panics if `machine.config() != &self.config` (the pairing is the
    /// caller's responsibility — a mismatch means a cache-key bug) or if
    /// a resolved lane configuration is invalid.
    pub fn run(&self, machine: &Msropm, arena: &mut BatchArena) -> JobReport {
        self.run_cancellable(machine, arena, &CancelToken::new())
            .expect("a fresh token never cancels")
    }

    /// Like [`BatchJob::run`], but checking `cancel` before the first
    /// stage and at every non-final stage boundary. Returns `None` when
    /// the job was cancelled — no report exists, and none ever will for
    /// this run. A job that completes is **bit-identical** to an
    /// uncancellable [`BatchJob::run`]: the cooperative check happens
    /// strictly between stages and cannot perturb the trajectory.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BatchJob::run`].
    pub fn run_cancellable(
        &self,
        machine: &Msropm,
        arena: &mut BatchArena,
        cancel: &CancelToken,
    ) -> Option<JobReport> {
        self.run_cancellable_with(machine, arena, || cancel.is_cancelled())
    }

    /// Generalized cooperative abort: `abort` is polled before the first
    /// stage and at every non-final stage boundary; returning `true`
    /// abandons the run (→ `None`). This is the hook the job server's
    /// deadline enforcement rides on — a closure combining a
    /// [`CancelToken`] with a wall-clock deadline check slots in here
    /// without touching the solver. A run that completes is
    /// **bit-identical** to [`BatchJob::run`]: the check happens
    /// strictly between stages and cannot perturb the trajectory.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BatchJob::run`].
    pub fn run_cancellable_with<F>(
        &self,
        machine: &Msropm,
        arena: &mut BatchArena,
        mut abort: F,
    ) -> Option<JobReport>
    where
        F: FnMut() -> bool,
    {
        assert!(
            machine.config() == &self.config,
            "job config does not match the machine it is paired with"
        );
        if abort() {
            return None;
        }
        let seeds = self.lane_seeds();
        let solutions =
            machine.solve_batch_lanes_arena_cancellable_with(&self.lanes, &seeds, arena, abort)?;
        Some(JobReport::rank(machine.graph(), self, &seeds, solutions))
    }

    /// Like [`BatchJob::run_cancellable_with`], but sharding the lane
    /// range across `shards` tasks on `pool` (see
    /// [`crate::machine::Msropm::solve_batch_lanes_arena_sharded_cancellable_with`]).
    /// The report is **bit-identical** at every shard width, and abort
    /// checks fire at exactly the same cooperative points — this is the
    /// job-server solve path when intra-job parallelism is on.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BatchJob::run`], or if
    /// `shards == 0` or a shard task panicked.
    pub fn run_sharded_with<F>(
        &self,
        machine: &Msropm,
        shards: usize,
        arena: &mut crate::batch::ShardedArena,
        pool: &crate::pool::ShardPool,
        mut abort: F,
    ) -> Option<JobReport>
    where
        F: FnMut() -> bool,
    {
        assert!(
            machine.config() == &self.config,
            "job config does not match the machine it is paired with"
        );
        if abort() {
            return None;
        }
        let seeds = self.lane_seeds();
        let solutions = machine.solve_batch_lanes_arena_sharded_cancellable_with(
            &self.lanes,
            &seeds,
            shards,
            arena,
            pool,
            abort,
        )?;
        Some(JobReport::rank(machine.graph(), self, &seeds, solutions))
    }
}

/// One lane's entry in a [`JobReport`], in rank order.
#[derive(Debug, Clone)]
pub struct RankedLane {
    /// Index of this lane in the job's `lanes` list.
    pub lane: usize,
    /// The derived seed the lane ran with.
    pub seed: u64,
    /// Number of conflicting (same-color endpoint) edges — the ranking
    /// key, ascending.
    pub conflicts: usize,
    /// The paper's accuracy metric: fraction of properly colored edges.
    pub accuracy: f64,
    /// The lane's full multi-stage solution.
    pub solution: MsropmSolution,
}

/// The ranked outcome of one [`BatchJob`].
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Canonical hash of the graph the job ran against
    /// ([`msropm_graph::io::graph_hash`]).
    pub graph_hash: u64,
    /// The job seed (echoed back for correlation).
    pub seed: u64,
    /// Every lane's outcome, best first: ascending `(conflicts, lane)`.
    pub ranked: Vec<RankedLane>,
}

impl JobReport {
    fn rank(graph: &Graph, job: &BatchJob, seeds: &[u64], solutions: Vec<MsropmSolution>) -> Self {
        let m = graph.num_edges();
        let mut ranked: Vec<RankedLane> = solutions
            .into_iter()
            .enumerate()
            .map(|(lane, solution)| {
                let conflicts = solution.coloring.conflicts(graph);
                let accuracy = if m == 0 {
                    1.0
                } else {
                    (m - conflicts) as f64 / m as f64
                };
                RankedLane {
                    lane,
                    seed: seeds[lane],
                    conflicts,
                    accuracy,
                    solution,
                }
            })
            .collect();
        // Stable sort: equal conflict counts keep ascending lane order,
        // making the ranking (and hence the whole report) deterministic.
        ranked.sort_by_key(|r| r.conflicts);
        JobReport {
            graph_hash: graph_hash(graph),
            seed: job.seed,
            ranked,
        }
    }

    /// The best lane (fewest conflicts, lowest lane index among ties).
    ///
    /// # Panics
    ///
    /// Panics if the job had no lanes.
    pub fn best(&self) -> &RankedLane {
        &self.ranked[0]
    }

    /// `true` when the best lane is a proper coloring.
    pub fn solved(&self) -> bool {
        self.ranked.first().is_some_and(|r| r.conflicts == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msropm_graph::generators;

    fn fast_config() -> MsropmConfig {
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    #[test]
    fn lane_seeds_are_distinct_and_stable() {
        let job = BatchJob::uniform(fast_config(), 16, 42);
        let a = job.lane_seeds();
        let b = job.lane_seeds();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "lane seeds collided");
        // Nearby job seeds still give unrelated lane streams.
        let other = BatchJob::uniform(fast_config(), 16, 43).lane_seeds();
        assert!(a.iter().zip(&other).all(|(x, y)| x != y));
    }

    #[test]
    fn report_ranking_is_total_and_best_first() {
        let g = generators::kings_graph(4, 4);
        let machine = Msropm::new(&g, fast_config());
        let job = BatchJob::uniform(fast_config(), 8, 7);
        let report = job.run(&machine, &mut BatchArena::new());
        assert_eq!(report.graph_hash, msropm_graph::graph_hash(&g));
        assert_eq!(report.ranked.len(), 8);
        for pair in report.ranked.windows(2) {
            assert!(pair[0].conflicts <= pair[1].conflicts);
            if pair[0].conflicts == pair[1].conflicts {
                assert!(pair[0].lane < pair[1].lane, "tie-break must be by lane");
            }
        }
        assert_eq!(report.best().conflicts, report.ranked[0].conflicts);
        // Accuracy is consistent with the conflict count.
        for r in &report.ranked {
            let expect = (g.num_edges() - r.conflicts) as f64 / g.num_edges() as f64;
            assert!((r.accuracy - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_jobs_compile_their_grid() {
        use crate::config::SweepParam;
        let sweep = SweepSpec::new()
            .grid(SweepParam::CouplingStrength, vec![0.8, 1.0])
            .grid(SweepParam::Noise, vec![0.1, 0.2]);
        let job = BatchJob::from_sweep(fast_config(), &sweep, 1);
        assert_eq!(job.lanes.len(), 4);
        let g = generators::kings_graph(3, 3);
        let machine = Msropm::new(&g, fast_config());
        let report = job.run(&machine, &mut BatchArena::new());
        assert_eq!(report.ranked.len(), 4);
    }

    #[test]
    fn pre_cancelled_job_produces_no_report() {
        let g = generators::kings_graph(3, 3);
        let machine = Msropm::new(&g, fast_config());
        let job = BatchJob::uniform(fast_config(), 2, 5);
        let token = CancelToken::new();
        token.cancel();
        assert!(job
            .run_cancellable(&machine, &mut BatchArena::new(), &token)
            .is_none());
    }

    #[test]
    fn uncancelled_job_matches_solo_reference_solves_bitwise() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // The reference is the *independent* sequential scalar machine
        // (`Msropm::solve` per lane), not `BatchJob::run` — `run` now
        // delegates to `run_cancellable`, so comparing those two would
        // be vacuous. This pins the cancellable hooked path (boundary
        // check armed but never firing) to the gold trajectory.
        let g = generators::kings_graph(4, 4);
        let machine = Msropm::new(&g, fast_config());
        let job = BatchJob::uniform(fast_config(), 4, 11);
        let report = job
            .run_cancellable(&machine, &mut BatchArena::new(), &CancelToken::new())
            .expect("not cancelled");
        let seeds = job.lane_seeds();
        for entry in &report.ranked {
            let mut solo_machine = Msropm::new(&g, fast_config());
            let mut rng = StdRng::seed_from_u64(seeds[entry.lane]);
            let solo = solo_machine.solve(&mut rng);
            assert_eq!(
                entry.solution.coloring, solo.coloring,
                "lane {}",
                entry.lane
            );
            assert_eq!(entry.conflicts, solo.coloring.conflicts(&g));
            for (p, q) in entry.solution.final_phases.iter().zip(&solo.final_phases) {
                assert_eq!(p.to_bits(), q.to_bits(), "lane {} phases", entry.lane);
            }
        }
    }

    #[test]
    fn mid_run_cancel_lands_at_the_stage_boundary() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // 16 colors => 4 stages => 3 boundaries: cancel at the second
        // check deterministically (the token is flipped by the job's own
        // boundary observation via a countdown, no timing involved).
        let g = generators::kings_graph(3, 3);
        let config = fast_config().with_num_colors(16);
        let machine = Msropm::new(&g, config);
        let token = CancelToken::new();
        let countdown = AtomicUsize::new(2);
        // Flip the token from a helper thread once the run is underway:
        // here we emulate "cancel arrives mid-run" without wall-clock
        // dependence by cancelling after a fixed number of boundary
        // observations through the machine's own cancellable path.
        let lanes = vec![LaneConfig::default(); 2];
        let seeds = [3u64, 4];
        let out = machine.solve_batch_lanes_arena_cancellable_with(
            &lanes,
            &seeds,
            &mut BatchArena::new(),
            || {
                if countdown.fetch_sub(1, Ordering::Relaxed) == 1 {
                    token.cancel();
                }
                token.is_cancelled()
            },
        );
        assert!(out.is_none(), "cancel at the second boundary aborts");
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_machine_is_rejected() {
        let g = generators::kings_graph(3, 3);
        let machine = Msropm::new(&g, fast_config());
        let other = MsropmConfig {
            noise: 0.999,
            ..fast_config()
        };
        BatchJob::uniform(other, 2, 1).run(&machine, &mut BatchArena::new());
    }
}
