//! Machine configuration: dynamics parameters and stage timings.

use msropm_graph::Graph;
use msropm_osc::PhaseNetwork;
use rand::Rng;

/// How oscillator phases are (re-)randomized at startup and between stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReinitMode {
    /// Draw fresh uniform phases instantly (idealized; fast to simulate).
    UniformRandom,
    /// Keep current phases and let jitter of the given amplitude
    /// (rad/√ns) drift them apart for the init window — the paper's
    /// physical mechanism ("set free ... to randomly drift apart from each
    /// other through jitter", §4).
    JitterDrift {
        /// Noise amplitude during the drift window.
        sigma: f64,
    },
}

/// Which numeric stack integrates the phase dynamics.
///
/// Both backends implement the same gather → sin → scatter
/// `drift_into` contract and consume the same per-lane ziggurat
/// deviate streams, so a lane's seed means the same thing under
/// either; they differ in arithmetic:
///
/// - [`KernelBackend::F64`] runs the IEEE-double kernels
///   ([`msropm_osc::BatchKernel`]) — the reference-precision path every
///   property test is anchored to.
/// - [`KernelBackend::Fixed`] runs the fixed-point kernels
///   ([`msropm_osc::FxBatchKernel`]): phases as wrapping `i32` binary
///   turns, rates quantized to per-step turn counts at kernel build,
///   sine from a quarter-wave integer LUT — the hardware-faithful
///   ASIC-emulation model and the fastest RHS path (integer lanes
///   auto-vectorize wider than f64).
///
/// The backend is part of the problem identity: it enters the
/// [`ProblemCache`](crate::ProblemCache) fingerprint, so cached
/// machines are never shared across backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelBackend {
    /// IEEE `f64` kernels (reference precision; the default).
    #[default]
    F64,
    /// Q-format integer kernels (binary-turn phases, LUT sine).
    Fixed,
}

impl KernelBackend {
    /// Parses the CLI/wire spelling (`"f64"` or `"fixed"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "f64" => Some(KernelBackend::F64),
            "fixed" => Some(KernelBackend::Fixed),
            _ => None,
        }
    }

    /// The canonical CLI/wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::F64 => "f64",
            KernelBackend::Fixed => "fixed",
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full configuration of an [`crate::Msropm`] machine.
///
/// Defaults ([`MsropmConfig::paper_default`]) follow the paper's §4.1
/// schedule: 5 ns randomization, 20 ns coupled annealing and 5 ns SHIL
/// stabilization per stage — 60 ns total for 4-coloring. Dynamics
/// parameters (coupling, SHIL strength, noise) are the simulation-side
/// tuning knobs the paper describes qualitatively in §2.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsropmConfig {
    /// Number of colors; must be a power of two ≥ 2 (`2^k` ⇒ `k` stages).
    pub num_colors: usize,
    /// Coupling magnitude `K_c` (rad/ns), applied with B2B (negative) sign.
    pub coupling_strength: f64,
    /// SHIL injection strength `Ks` (rad/ns).
    pub shil_strength: f64,
    /// Annealing phase-noise amplitude (rad/√ns).
    pub noise: f64,
    /// Std-dev of per-oscillator free-running frequency offsets (rad/ns).
    pub frequency_spread: f64,
    /// Randomization window at startup and between stages (ns). Paper: 5.
    pub t_init: f64,
    /// Coupled self-annealing window per stage (ns). Paper: 20.
    pub t_anneal: f64,
    /// SHIL stabilization + readout window per stage (ns). Paper: 5.
    pub t_lock: f64,
    /// Integration step (ns).
    pub dt: f64,
    /// How phases are re-randomized.
    pub reinit: ReinitMode,
    /// If `true`, SHIL strength ramps linearly from 0 to `shil_strength`
    /// across each lock window instead of switching on abruptly — the OIM
    /// annealing refinement (beyond-paper knob; the paper's Fig. 3 gates
    /// SHIL hard, which is the default here).
    pub shil_ramp: bool,
    /// Numeric kernel stack: IEEE `f64` (default) or Q-format fixed
    /// point (see [`KernelBackend`]).
    pub backend: KernelBackend,
}

impl MsropmConfig {
    /// The paper's configuration: 4 colors, 5/20/5 ns windows, and dynamics
    /// constants tuned (as in the paper, "empirically") so that the
    /// accuracy bands of Fig. 5/Table 1 are reproduced.
    pub fn paper_default() -> Self {
        MsropmConfig {
            num_colors: 4,
            coupling_strength: 1.0,
            shil_strength: 2.5,
            noise: 0.18,
            frequency_spread: 0.02,
            t_init: 5.0,
            t_anneal: 20.0,
            t_lock: 5.0,
            dt: 0.01,
            reinit: ReinitMode::JitterDrift { sigma: 1.5 },
            shil_ramp: false,
            backend: KernelBackend::F64,
        }
    }

    /// Returns a copy with a different kernel backend.
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Returns a copy with the SHIL-strength ramp enabled/disabled.
    pub fn with_shil_ramp(mut self, ramp: bool) -> Self {
        self.shil_ramp = ramp;
        self
    }

    /// Number of solution stages (`log2(num_colors)`).
    ///
    /// # Panics
    ///
    /// Panics if `num_colors` is not a power of two ≥ 2.
    pub fn num_stages(&self) -> usize {
        self.validate();
        self.num_colors.trailing_zeros() as usize
    }

    /// Total schedule duration in ns: `stages × (t_init + t_anneal + t_lock)`.
    /// With paper defaults and 4 colors: 60 ns, matching §4.1.
    pub fn total_time_ns(&self) -> f64 {
        self.num_stages() as f64 * (self.t_init + self.t_anneal + self.t_lock)
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `num_colors` is not a power of two ≥ 2, any duration or
    /// strength is negative, or `dt` is not positive.
    pub fn validate(&self) {
        assert!(
            self.num_colors >= 2 && self.num_colors.is_power_of_two(),
            "num_colors must be a power of two >= 2, got {}",
            self.num_colors
        );
        assert!(self.coupling_strength >= 0.0, "coupling must be >= 0");
        assert!(self.shil_strength >= 0.0, "SHIL strength must be >= 0");
        assert!(self.noise >= 0.0, "noise must be >= 0");
        assert!(
            self.frequency_spread >= 0.0,
            "frequency spread must be >= 0"
        );
        assert!(
            self.t_init >= 0.0 && self.t_anneal >= 0.0 && self.t_lock >= 0.0,
            "window durations must be >= 0"
        );
        assert!(self.dt > 0.0, "dt must be positive");
    }

    /// Returns a copy with a different color count.
    pub fn with_num_colors(mut self, num_colors: usize) -> Self {
        self.num_colors = num_colors;
        self.validate();
        self
    }

    /// Returns a copy with a different coupling strength.
    pub fn with_coupling_strength(mut self, k: f64) -> Self {
        self.coupling_strength = k;
        self
    }

    /// Returns a copy with a different SHIL strength.
    pub fn with_shil_strength(mut self, ks: f64) -> Self {
        self.shil_strength = ks;
        self
    }

    /// Returns a copy with a different annealing noise amplitude.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise = sigma;
        self
    }

    /// Maps this config onto `g`'s base oscillator network, with no
    /// frequency spread. The single construction recipe shared by
    /// `Msropm::new` and the batched experiment runner, so the two can
    /// never drift apart.
    pub(crate) fn build_network(&self, g: &Graph) -> PhaseNetwork {
        PhaseNetwork::builder(g)
            .coupling_strength(self.coupling_strength)
            .noise(self.noise)
            .build()
    }

    /// Like [`MsropmConfig::build_network`] but samples per-oscillator
    /// frequency offsets (process variation) from `rng` — the recipe
    /// behind `Msropm::with_frequency_spread` and the sequential runner.
    pub(crate) fn build_network_with_spread<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        rng: &mut R,
    ) -> PhaseNetwork {
        PhaseNetwork::builder(g)
            .coupling_strength(self.coupling_strength)
            .noise(self.noise)
            .frequency_spread(self.frequency_spread)
            .build_with_spread(rng)
    }
}

impl Default for MsropmConfig {
    fn default() -> Self {
        MsropmConfig::paper_default()
    }
}

/// Per-replica ("lane") overrides of a base [`MsropmConfig`].
///
/// The batch engine runs `M` replicas through one lockstep schedule; a
/// `LaneConfig` describes how one of those replicas deviates from the
/// shared base — the parameters the paper tunes empirically (coupling
/// `K_c`, SHIL strength `K_s`, annealing noise σ, the OIM SHIL ramp and
/// the inter-stage re-randomization) can all differ per lane, while the
/// *timing* fields (`num_colors`, window durations, `dt`) stay global so
/// every lane shares the window boundaries and step grid.
///
/// `LaneConfig::default()` overrides nothing: a batch of default lanes
/// is exactly the homogeneous batch (bit-identical, property-tested in
/// `tests/lane_equivalence.rs`).
///
/// One caveat for heterogeneous *re-init modes*: a batch mixing
/// [`ReinitMode::UniformRandom`] and [`ReinitMode::JitterDrift`] lanes
/// is supported and each lane still reproduces its standalone run bit
/// for bit — jitter lanes draw one deviate per oscillator per drift
/// step, uniform lanes draw nothing until their end-of-window phase
/// redraw, exactly as their solo counterparts do.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LaneConfig {
    /// Override of [`MsropmConfig::coupling_strength`] (`K_c`).
    pub coupling_strength: Option<f64>,
    /// Override of [`MsropmConfig::shil_strength`] (`K_s`).
    pub shil_strength: Option<f64>,
    /// Override of [`MsropmConfig::noise`] (annealing σ).
    pub noise: Option<f64>,
    /// Override of [`MsropmConfig::shil_ramp`].
    pub shil_ramp: Option<bool>,
    /// Override of [`MsropmConfig::reinit`].
    pub reinit: Option<ReinitMode>,
    /// Override of [`MsropmConfig::backend`]. The batch engine runs one
    /// numeric stack per solve, so every lane of a batch must resolve
    /// to the **same** backend (mixed batches are rejected at prepare
    /// time); the override exists so sweep tooling can retarget a whole
    /// lane set without touching the base config.
    pub backend: Option<KernelBackend>,
}

impl LaneConfig {
    /// Returns a copy overriding the coupling strength.
    pub fn with_coupling_strength(mut self, k: f64) -> Self {
        self.coupling_strength = Some(k);
        self
    }

    /// Returns a copy overriding the SHIL strength.
    pub fn with_shil_strength(mut self, ks: f64) -> Self {
        self.shil_strength = Some(ks);
        self
    }

    /// Returns a copy overriding the annealing noise amplitude.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise = Some(sigma);
        self
    }

    /// Returns a copy overriding the SHIL-ramp flag.
    pub fn with_shil_ramp(mut self, ramp: bool) -> Self {
        self.shil_ramp = Some(ramp);
        self
    }

    /// Returns a copy overriding the re-randomization mode.
    pub fn with_reinit(mut self, reinit: ReinitMode) -> Self {
        self.reinit = Some(reinit);
        self
    }

    /// Returns a copy overriding the kernel backend (must agree across
    /// every lane of a batch).
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// `true` if this lane overrides nothing (runs the base config).
    pub fn is_default(&self) -> bool {
        *self == LaneConfig::default()
    }

    /// Applies the overrides to `base`, yielding the lane's effective
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the resolved configuration is inconsistent (see
    /// [`MsropmConfig::validate`]).
    pub fn resolve(&self, base: &MsropmConfig) -> MsropmConfig {
        let cfg = MsropmConfig {
            coupling_strength: self.coupling_strength.unwrap_or(base.coupling_strength),
            shil_strength: self.shil_strength.unwrap_or(base.shil_strength),
            noise: self.noise.unwrap_or(base.noise),
            shil_ramp: self.shil_ramp.unwrap_or(base.shil_ramp),
            reinit: self.reinit.unwrap_or(base.reinit),
            backend: self.backend.unwrap_or(base.backend),
            ..*base
        };
        cfg.validate();
        cfg
    }
}

/// A parameter axis a [`SweepSpec`] can vary across lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepParam {
    /// Coupling magnitude `K_c`.
    CouplingStrength,
    /// SHIL injection strength `K_s`.
    ShilStrength,
    /// Annealing noise amplitude σ.
    Noise,
    /// Jitter amplitude of the inter-stage drift window
    /// ([`ReinitMode::JitterDrift`]'s `sigma`).
    ReinitSigma,
}

/// A declarative multi-axis parameter sweep that expands into per-lane
/// overrides — the batch-engine analog of the per-run parameter
/// registers ASIC-emulated OIM/OPM machines expose.
///
/// Axes combine as a cartesian grid (later axes vary fastest); each
/// grid point becomes one [`LaneConfig`]. Values come from explicit
/// grids ([`SweepSpec::grid`]), linear ranges ([`SweepSpec::linspace`])
/// or log-spaced ranges ([`SweepSpec::logspace`] — the natural spacing
/// for coupling/noise operating-point searches).
///
/// ```
/// use msropm_core::{SweepParam, SweepSpec};
///
/// let lanes = SweepSpec::new()
///     .logspace(SweepParam::CouplingStrength, 0.5, 2.0, 4)
///     .linspace(SweepParam::Noise, 0.1, 0.3, 4)
///     .lanes();
/// assert_eq!(lanes.len(), 16);
/// assert_eq!(lanes[0].coupling_strength, Some(0.5));
/// assert_eq!(lanes[15].coupling_strength, Some(2.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    axes: Vec<(SweepParam, Vec<f64>)>,
}

impl SweepSpec {
    /// An empty sweep (expands to one all-default lane).
    pub fn new() -> Self {
        SweepSpec::default()
    }

    /// Adds an axis with an explicit value grid.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, contains a non-finite or negative
    /// value, or the axis was already added.
    pub fn grid(mut self, param: SweepParam, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "sweep axis needs at least one value");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "sweep values must be finite and non-negative"
        );
        assert!(
            self.axes.iter().all(|(p, _)| *p != param),
            "sweep axis {param:?} added twice"
        );
        self.axes.push((param, values));
        self
    }

    /// Adds an axis of `count` linearly spaced values over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `lo > hi`, or the bounds are invalid for
    /// [`SweepSpec::grid`].
    pub fn linspace(self, param: SweepParam, lo: f64, hi: f64, count: usize) -> Self {
        assert!(count > 0, "need at least one sweep value");
        assert!(lo <= hi, "linspace bounds out of order");
        let values = if count == 1 {
            vec![lo]
        } else {
            (0..count)
                .map(|i| lo + (hi - lo) * i as f64 / (count - 1) as f64)
                .collect()
        };
        self.grid(param, values)
    }

    /// Adds an axis of `count` log-spaced values over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `lo <= 0`, or `lo > hi`.
    pub fn logspace(self, param: SweepParam, lo: f64, hi: f64, count: usize) -> Self {
        assert!(count > 0, "need at least one sweep value");
        assert!(lo > 0.0, "logspace needs positive bounds");
        assert!(lo <= hi, "logspace bounds out of order");
        let (llo, lhi) = (lo.ln(), hi.ln());
        let values = if count == 1 {
            vec![lo]
        } else {
            (0..count)
                .map(|i| (llo + (lhi - llo) * i as f64 / (count - 1) as f64).exp())
                .collect()
        };
        self.grid(param, values)
    }

    /// Number of lanes the sweep expands to (product of axis lengths).
    pub fn num_lanes(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// Expands the cartesian grid into per-lane overrides, later axes
    /// varying fastest.
    pub fn lanes(&self) -> Vec<LaneConfig> {
        let mut lanes = vec![LaneConfig::default()];
        for (param, values) in &self.axes {
            let mut next = Vec::with_capacity(lanes.len() * values.len());
            for lane in &lanes {
                for &v in values {
                    let mut lane = *lane;
                    match param {
                        SweepParam::CouplingStrength => lane.coupling_strength = Some(v),
                        SweepParam::ShilStrength => lane.shil_strength = Some(v),
                        SweepParam::Noise => lane.noise = Some(v),
                        SweepParam::ReinitSigma => {
                            lane.reinit = Some(ReinitMode::JitterDrift { sigma: v });
                        }
                    }
                    next.push(lane);
                }
            }
            lanes = next;
        }
        lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_is_60ns() {
        let c = MsropmConfig::paper_default();
        assert_eq!(c.num_stages(), 2);
        assert!((c.total_time_ns() - 60.0).abs() < 1e-12, "paper sec 4.1");
    }

    #[test]
    fn stage_count_scales_with_colors() {
        let c = MsropmConfig::paper_default();
        assert_eq!(c.with_num_colors(2).num_stages(), 1);
        assert_eq!(c.with_num_colors(8).num_stages(), 3);
        assert_eq!(c.with_num_colors(16).num_stages(), 4);
        // 8 colors -> 90 ns with paper windows.
        assert!((c.with_num_colors(8).total_time_ns() - 90.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_color_count_rejected() {
        MsropmConfig::paper_default().with_num_colors(3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn one_color_rejected() {
        MsropmConfig::paper_default().with_num_colors(1);
    }

    #[test]
    fn builder_style_overrides() {
        let c = MsropmConfig::paper_default()
            .with_coupling_strength(0.5)
            .with_shil_strength(1.0)
            .with_noise(0.0);
        assert_eq!(c.coupling_strength, 0.5);
        assert_eq!(c.shil_strength, 1.0);
        assert_eq!(c.noise, 0.0);
        c.validate();
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(MsropmConfig::default(), MsropmConfig::paper_default());
    }

    #[test]
    fn default_lane_resolves_to_base() {
        let base = MsropmConfig::paper_default();
        assert!(LaneConfig::default().is_default());
        assert_eq!(LaneConfig::default().resolve(&base), base);
    }

    #[test]
    fn lane_overrides_apply_only_what_they_name() {
        let base = MsropmConfig::paper_default();
        let lane = LaneConfig::default()
            .with_coupling_strength(0.7)
            .with_noise(0.05)
            .with_shil_ramp(true);
        assert!(!lane.is_default());
        let cfg = lane.resolve(&base);
        assert_eq!(cfg.coupling_strength, 0.7);
        assert_eq!(cfg.noise, 0.05);
        assert!(cfg.shil_ramp);
        // Untouched fields stay at base values.
        assert_eq!(cfg.shil_strength, base.shil_strength);
        assert_eq!(cfg.reinit, base.reinit);
        assert_eq!(cfg.num_colors, base.num_colors);
        assert_eq!(cfg.dt, base.dt);
    }

    #[test]
    #[should_panic(expected = "coupling must be >= 0")]
    fn lane_resolution_validates() {
        LaneConfig::default()
            .with_coupling_strength(-1.0)
            .resolve(&MsropmConfig::paper_default());
    }

    #[test]
    fn sweep_grid_is_cartesian_later_axes_fastest() {
        let lanes = SweepSpec::new()
            .grid(SweepParam::CouplingStrength, vec![1.0, 2.0])
            .grid(SweepParam::Noise, vec![0.1, 0.2, 0.3])
            .lanes();
        assert_eq!(lanes.len(), 6);
        assert_eq!(lanes[0].coupling_strength, Some(1.0));
        assert_eq!(lanes[0].noise, Some(0.1));
        assert_eq!(lanes[2].noise, Some(0.3));
        assert_eq!(lanes[3].coupling_strength, Some(2.0));
        assert_eq!(lanes[3].noise, Some(0.1));
        // Axes not swept stay un-overridden.
        assert!(lanes.iter().all(|l| l.shil_strength.is_none()));
    }

    #[test]
    fn sweep_spacings() {
        let spec = SweepSpec::new()
            .linspace(SweepParam::ShilStrength, 1.0, 3.0, 5)
            .logspace(SweepParam::CouplingStrength, 0.25, 4.0, 5);
        assert_eq!(spec.num_lanes(), 25);
        let lanes = spec.lanes();
        // linspace endpoints and midpoint.
        assert_eq!(lanes[0].shil_strength, Some(1.0));
        assert_eq!(lanes[24].shil_strength, Some(3.0));
        assert_eq!(lanes[10].shil_strength, Some(2.0));
        // logspace endpoints exact-ish, midpoint = geometric mean.
        let ks: Vec<f64> = lanes[..5]
            .iter()
            .map(|l| l.coupling_strength.unwrap())
            .collect();
        assert!((ks[0] - 0.25).abs() < 1e-12);
        assert!((ks[4] - 4.0).abs() < 1e-12);
        assert!((ks[2] - 1.0).abs() < 1e-12);
        assert!(ks.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn reinit_sigma_sweep_sets_jitter_mode() {
        let lanes = SweepSpec::new()
            .grid(SweepParam::ReinitSigma, vec![0.5, 1.5])
            .lanes();
        assert_eq!(
            lanes[0].reinit,
            Some(ReinitMode::JitterDrift { sigma: 0.5 })
        );
        assert_eq!(
            lanes[1].reinit,
            Some(ReinitMode::JitterDrift { sigma: 1.5 })
        );
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_sweep_axis_rejected() {
        let _ = SweepSpec::new()
            .grid(SweepParam::Noise, vec![0.1])
            .grid(SweepParam::Noise, vec![0.2]);
    }

    #[test]
    fn empty_sweep_is_one_default_lane() {
        let lanes = SweepSpec::new().lanes();
        assert_eq!(lanes.len(), 1);
        assert!(lanes[0].is_default());
    }
}
