//! Machine configuration: dynamics parameters and stage timings.

use msropm_graph::Graph;
use msropm_osc::PhaseNetwork;
use rand::Rng;

/// How oscillator phases are (re-)randomized at startup and between stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReinitMode {
    /// Draw fresh uniform phases instantly (idealized; fast to simulate).
    UniformRandom,
    /// Keep current phases and let jitter of the given amplitude
    /// (rad/√ns) drift them apart for the init window — the paper's
    /// physical mechanism ("set free ... to randomly drift apart from each
    /// other through jitter", §4).
    JitterDrift {
        /// Noise amplitude during the drift window.
        sigma: f64,
    },
}

/// Full configuration of an [`crate::Msropm`] machine.
///
/// Defaults ([`MsropmConfig::paper_default`]) follow the paper's §4.1
/// schedule: 5 ns randomization, 20 ns coupled annealing and 5 ns SHIL
/// stabilization per stage — 60 ns total for 4-coloring. Dynamics
/// parameters (coupling, SHIL strength, noise) are the simulation-side
/// tuning knobs the paper describes qualitatively in §2.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsropmConfig {
    /// Number of colors; must be a power of two ≥ 2 (`2^k` ⇒ `k` stages).
    pub num_colors: usize,
    /// Coupling magnitude `K_c` (rad/ns), applied with B2B (negative) sign.
    pub coupling_strength: f64,
    /// SHIL injection strength `Ks` (rad/ns).
    pub shil_strength: f64,
    /// Annealing phase-noise amplitude (rad/√ns).
    pub noise: f64,
    /// Std-dev of per-oscillator free-running frequency offsets (rad/ns).
    pub frequency_spread: f64,
    /// Randomization window at startup and between stages (ns). Paper: 5.
    pub t_init: f64,
    /// Coupled self-annealing window per stage (ns). Paper: 20.
    pub t_anneal: f64,
    /// SHIL stabilization + readout window per stage (ns). Paper: 5.
    pub t_lock: f64,
    /// Integration step (ns).
    pub dt: f64,
    /// How phases are re-randomized.
    pub reinit: ReinitMode,
    /// If `true`, SHIL strength ramps linearly from 0 to `shil_strength`
    /// across each lock window instead of switching on abruptly — the OIM
    /// annealing refinement (beyond-paper knob; the paper's Fig. 3 gates
    /// SHIL hard, which is the default here).
    pub shil_ramp: bool,
}

impl MsropmConfig {
    /// The paper's configuration: 4 colors, 5/20/5 ns windows, and dynamics
    /// constants tuned (as in the paper, "empirically") so that the
    /// accuracy bands of Fig. 5/Table 1 are reproduced.
    pub fn paper_default() -> Self {
        MsropmConfig {
            num_colors: 4,
            coupling_strength: 1.0,
            shil_strength: 2.5,
            noise: 0.18,
            frequency_spread: 0.02,
            t_init: 5.0,
            t_anneal: 20.0,
            t_lock: 5.0,
            dt: 0.01,
            reinit: ReinitMode::JitterDrift { sigma: 1.5 },
            shil_ramp: false,
        }
    }

    /// Returns a copy with the SHIL-strength ramp enabled/disabled.
    pub fn with_shil_ramp(mut self, ramp: bool) -> Self {
        self.shil_ramp = ramp;
        self
    }

    /// Number of solution stages (`log2(num_colors)`).
    ///
    /// # Panics
    ///
    /// Panics if `num_colors` is not a power of two ≥ 2.
    pub fn num_stages(&self) -> usize {
        self.validate();
        self.num_colors.trailing_zeros() as usize
    }

    /// Total schedule duration in ns: `stages × (t_init + t_anneal + t_lock)`.
    /// With paper defaults and 4 colors: 60 ns, matching §4.1.
    pub fn total_time_ns(&self) -> f64 {
        self.num_stages() as f64 * (self.t_init + self.t_anneal + self.t_lock)
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `num_colors` is not a power of two ≥ 2, any duration or
    /// strength is negative, or `dt` is not positive.
    pub fn validate(&self) {
        assert!(
            self.num_colors >= 2 && self.num_colors.is_power_of_two(),
            "num_colors must be a power of two >= 2, got {}",
            self.num_colors
        );
        assert!(self.coupling_strength >= 0.0, "coupling must be >= 0");
        assert!(self.shil_strength >= 0.0, "SHIL strength must be >= 0");
        assert!(self.noise >= 0.0, "noise must be >= 0");
        assert!(
            self.frequency_spread >= 0.0,
            "frequency spread must be >= 0"
        );
        assert!(
            self.t_init >= 0.0 && self.t_anneal >= 0.0 && self.t_lock >= 0.0,
            "window durations must be >= 0"
        );
        assert!(self.dt > 0.0, "dt must be positive");
    }

    /// Returns a copy with a different color count.
    pub fn with_num_colors(mut self, num_colors: usize) -> Self {
        self.num_colors = num_colors;
        self.validate();
        self
    }

    /// Returns a copy with a different coupling strength.
    pub fn with_coupling_strength(mut self, k: f64) -> Self {
        self.coupling_strength = k;
        self
    }

    /// Returns a copy with a different SHIL strength.
    pub fn with_shil_strength(mut self, ks: f64) -> Self {
        self.shil_strength = ks;
        self
    }

    /// Returns a copy with a different annealing noise amplitude.
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise = sigma;
        self
    }

    /// Maps this config onto `g`'s base oscillator network, with no
    /// frequency spread. The single construction recipe shared by
    /// `Msropm::new` and the batched experiment runner, so the two can
    /// never drift apart.
    pub(crate) fn build_network(&self, g: &Graph) -> PhaseNetwork {
        PhaseNetwork::builder(g)
            .coupling_strength(self.coupling_strength)
            .noise(self.noise)
            .build()
    }

    /// Like [`MsropmConfig::build_network`] but samples per-oscillator
    /// frequency offsets (process variation) from `rng` — the recipe
    /// behind `Msropm::with_frequency_spread` and the sequential runner.
    pub(crate) fn build_network_with_spread<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        rng: &mut R,
    ) -> PhaseNetwork {
        PhaseNetwork::builder(g)
            .coupling_strength(self.coupling_strength)
            .noise(self.noise)
            .frequency_spread(self.frequency_spread)
            .build_with_spread(rng)
    }
}

impl Default for MsropmConfig {
    fn default() -> Self {
        MsropmConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_is_60ns() {
        let c = MsropmConfig::paper_default();
        assert_eq!(c.num_stages(), 2);
        assert!((c.total_time_ns() - 60.0).abs() < 1e-12, "paper sec 4.1");
    }

    #[test]
    fn stage_count_scales_with_colors() {
        let c = MsropmConfig::paper_default();
        assert_eq!(c.with_num_colors(2).num_stages(), 1);
        assert_eq!(c.with_num_colors(8).num_stages(), 3);
        assert_eq!(c.with_num_colors(16).num_stages(), 4);
        // 8 colors -> 90 ns with paper windows.
        assert!((c.with_num_colors(8).total_time_ns() - 90.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_color_count_rejected() {
        MsropmConfig::paper_default().with_num_colors(3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn one_color_rejected() {
        MsropmConfig::paper_default().with_num_colors(1);
    }

    #[test]
    fn builder_style_overrides() {
        let c = MsropmConfig::paper_default()
            .with_coupling_strength(0.5)
            .with_shil_strength(1.0)
            .with_noise(0.0);
        assert_eq!(c.coupling_strength, 0.5);
        assert_eq!(c.shil_strength, 1.0);
        assert_eq!(c.noise, 0.0);
        c.validate();
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(MsropmConfig::default(), MsropmConfig::paper_default());
    }
}
