//! Property-based tests of the integrators on randomly parameterized
//! systems with known closed-form solutions.

use msropm_ode::adaptive::{DormandPrince54, Tolerances};
use msropm_ode::fixed::{Euler, FixedStepper, Heun, Rk4};
use msropm_ode::sde::{EulerMaruyama, SdeStepper};
use msropm_ode::system::{FnSystem, OdeSystem, SdeSystem};
use proptest::prelude::*;

/// Diagonal linear system dy_i/dt = -a_i y_i with exact solution
/// y_i(t) = y_i(0) exp(-a_i t).
struct Diagonal {
    rates: Vec<f64>,
    noise: f64,
}

impl OdeSystem for Diagonal {
    fn dim(&self) -> usize {
        self.rates.len()
    }
    fn eval(&self, _t: f64, y: &[f64], dydt: &mut [f64]) {
        for (d, (&a, &yi)) in dydt.iter_mut().zip(self.rates.iter().zip(y)) {
            *d = -a * yi;
        }
    }
}

impl SdeSystem for Diagonal {
    fn diffusion(&self, _t: f64, _y: &[f64], g: &mut [f64]) {
        for gi in g.iter_mut() {
            *gi = self.noise;
        }
    }
}

proptest! {
    #[test]
    fn rk4_matches_exponential_decay(
        rates in proptest::collection::vec(0.05f64..2.0, 1..6),
        y0 in proptest::collection::vec(-3.0f64..3.0, 6),
    ) {
        let n = rates.len();
        let sys = Diagonal { rates: rates.clone(), noise: 0.0 };
        let mut y = y0[..n].to_vec();
        let initial = y.clone();
        Rk4::new().integrate(&sys, &mut y, 0.0, 2.0, 1e-3);
        for i in 0..n {
            let exact = initial[i] * (-rates[i] * 2.0).exp();
            prop_assert!((y[i] - exact).abs() < 1e-8, "component {i}: {} vs {exact}", y[i]);
        }
    }

    #[test]
    fn higher_order_methods_are_more_accurate(rate in 0.2f64..2.0) {
        let sys = Diagonal { rates: vec![rate], noise: 0.0 };
        let exact = (-rate * 1.0f64).exp();
        let dt = 0.05;
        let mut err = Vec::new();
        let run = |stepper: &mut dyn FnMut(&Diagonal, &mut Vec<f64>)| {
            let mut y = vec![1.0];
            stepper(&sys, &mut y);
            (y[0] - exact).abs()
        };
        err.push(run(&mut |s, y| Euler::new().integrate(s, y, 0.0, 1.0, dt)));
        err.push(run(&mut |s, y| Heun::new().integrate(s, y, 0.0, 1.0, dt)));
        err.push(run(&mut |s, y| Rk4::new().integrate(s, y, 0.0, 1.0, dt)));
        prop_assert!(err[1] <= err[0] * 1.05, "Heun {} vs Euler {}", err[1], err[0]);
        prop_assert!(err[2] <= err[1] * 1.05, "RK4 {} vs Heun {}", err[2], err[1]);
    }

    #[test]
    fn adaptive_agrees_with_fine_rk4(
        omega in 0.3f64..3.0,
        t_end in 0.5f64..6.0,
    ) {
        // Harmonic oscillator with random frequency: DOPRI5 vs fine RK4.
        let sys = FnSystem::new(2, move |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -omega * omega * y[0];
        });
        let mut y_ref = vec![1.0, 0.0];
        Rk4::new().integrate(&sys, &mut y_ref, 0.0, t_end, 1e-4);
        let mut y_adp = vec![1.0, 0.0];
        DormandPrince54::new(Tolerances { abs: 1e-10, rel: 1e-9 })
            .integrate(&sys, &mut y_adp, 0.0, t_end)
            .expect("smooth system integrates");
        prop_assert!((y_ref[0] - y_adp[0]).abs() < 1e-6);
        prop_assert!((y_ref[1] - y_adp[1]).abs() < 1e-6);
    }

    #[test]
    fn sde_with_zero_noise_is_deterministic(
        rate in 0.1f64..2.0,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let sys = Diagonal { rates: vec![rate], noise: 0.0 };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut y = vec![1.0];
        EulerMaruyama::new().integrate(&sys, &mut y, 0.0, 1.0, 1e-3, &mut rng);
        let exact = (-rate * 1.0f64).exp();
        prop_assert!((y[0] - exact).abs() < 2e-3, "{} vs {exact}", y[0]);
    }

    #[test]
    fn integration_is_time_additive(rate in 0.1f64..1.5) {
        // Integrating [0, 2] equals integrating [0, 1] then [1, 2].
        let sys = Diagonal { rates: vec![rate], noise: 0.0 };
        let mut whole = vec![1.0];
        Rk4::new().integrate(&sys, &mut whole, 0.0, 2.0, 1e-3);
        let mut split = vec![1.0];
        let mut stepper = Rk4::new();
        stepper.integrate(&sys, &mut split, 0.0, 1.0, 1e-3);
        stepper.integrate(&sys, &mut split, 1.0, 2.0, 1e-3);
        prop_assert!((whole[0] - split[0]).abs() < 1e-12);
    }
}
