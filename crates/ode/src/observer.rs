//! Waveform recording utilities for transient simulations.

/// Records `(t, y)` samples during integration, optionally decimated, and
/// optionally restricted to a subset of state indices (e.g. only the output
/// node of each ring oscillator).
///
/// # Example
///
/// ```
/// use msropm_ode::observer::Recorder;
///
/// let mut rec = Recorder::new().with_stride(2);
/// for step in 0..5 {
///     rec.record(step as f64, &[step as f64 * 10.0]);
/// }
/// assert_eq!(rec.times(), &[0.0, 2.0, 4.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    times: Vec<f64>,
    samples: Vec<Vec<f64>>,
    stride: usize,
    counter: usize,
    channels: Option<Vec<usize>>,
}

impl Recorder {
    /// Creates a recorder capturing every sample of every channel.
    pub fn new() -> Self {
        Recorder {
            stride: 1,
            ..Default::default()
        }
    }

    /// Keeps only every `stride`-th sample (decimation).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Restricts recording to the given state indices.
    pub fn with_channels(mut self, channels: Vec<usize>) -> Self {
        self.channels = Some(channels);
        self
    }

    /// Offers a sample to the recorder (call from the integration observer).
    pub fn record(&mut self, t: f64, y: &[f64]) {
        if self.counter.is_multiple_of(self.stride) {
            self.times.push(t);
            let row = match &self.channels {
                Some(ch) => ch.iter().map(|&i| y[i]).collect(),
                None => y.to_vec(),
            };
            self.samples.push(row);
        }
        self.counter += 1;
    }

    /// Recorded time stamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Recorded sample rows (one per time stamp).
    pub fn samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Extracts one channel as a `(t, value)` series.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range for the recorded rows.
    pub fn channel(&self, channel: usize) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .zip(&self.samples)
            .map(|(&t, row)| (t, row[channel]))
            .collect()
    }

    /// Writes the recording as CSV (`t,ch0,ch1,...`) to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        for (t, row) in self.times.iter().zip(&self.samples) {
            write!(writer, "{t}")?;
            for v in row {
                write!(writer, ",{v}")?;
            }
            writeln!(writer)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_everything_by_default() {
        let mut r = Recorder::new();
        r.record(0.0, &[1.0, 2.0]);
        r.record(1.0, &[3.0, 4.0]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.samples()[1], vec![3.0, 4.0]);
        assert_eq!(r.channel(1), vec![(0.0, 2.0), (1.0, 4.0)]);
    }

    #[test]
    fn stride_decimates() {
        let mut r = Recorder::new().with_stride(3);
        for i in 0..10 {
            r.record(i as f64, &[0.0]);
        }
        assert_eq!(r.times(), &[0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn channel_selection() {
        let mut r = Recorder::new().with_channels(vec![2]);
        r.record(0.0, &[1.0, 2.0, 3.0]);
        assert_eq!(r.samples()[0], vec![3.0]);
    }

    #[test]
    fn csv_output() {
        let mut r = Recorder::new();
        r.record(0.5, &[1.0, 2.0]);
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0.5,1,2\n");
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = Recorder::new().with_stride(0);
    }
}
