//! Numerical substrate for the MSROPM reproduction.
//!
//! The paper's experiments are transistor-level/phase-level *transient
//! simulations*; reproducing them in Rust requires an ODE/SDE toolbox, which
//! the thin scientific-Rust ecosystem (and this project's offline dependency
//! policy) does not provide. This crate implements the required integrators
//! from scratch:
//!
//! - [`fixed`]: explicit fixed-step methods (Euler, Heun, classic RK4) used
//!   by the circuit-level waveform simulator, where the time step is pinned
//!   to a fraction of the ring-oscillator period.
//! - [`adaptive`]: Dormand–Prince 5(4) with a PI step-size controller for
//!   stiff-ish validation runs and convergence studies.
//! - [`sde`]: Euler–Maruyama and stochastic Heun integrators with diagonal
//!   additive noise, used for oscillator phase noise (jitter) — the physical
//!   mechanism the paper uses to randomize initial phases.
//! - [`observer`]: waveform recorders used to produce Fig. 3-style traces.
//!
//! State vectors are plain `&[f64]` slices: every system in this workspace
//! is dense, real and first-order.
//!
//! # Example
//!
//! ```
//! use msropm_ode::{fixed::{FixedStepper, Rk4}, system::OdeSystem};
//!
//! /// dy/dt = -y, y(0) = 1  =>  y(t) = exp(-t).
//! struct Decay;
//! impl OdeSystem for Decay {
//!     fn dim(&self) -> usize { 1 }
//!     fn eval(&self, _t: f64, y: &[f64], dydt: &mut [f64]) { dydt[0] = -y[0]; }
//! }
//!
//! let mut y = vec![1.0];
//! Rk4::new().integrate(&Decay, &mut y, 0.0, 1.0, 1e-3);
//! assert!((y[0] - (-1.0f64).exp()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod fixed;
pub mod observer;
pub mod sde;
pub mod system;

pub use adaptive::{AdaptiveResult, DormandPrince54, OdeError, Tolerances};
pub use fixed::{Euler, FixedStepper, Heun, Rk4};
pub use observer::Recorder;
pub use sde::{EulerMaruyama, SdeStepper, StochasticHeun};
pub use system::{OdeSystem, SdeSystem};
