//! Dormand–Prince 5(4) adaptive integrator with a PI step-size controller.
//!
//! Used for validation/convergence studies of the oscillator models where a
//! pinned step would either waste work or hide error; the embedded 4th-order
//! solution provides the local error estimate.

use crate::system::OdeSystem;
use std::error::Error;
use std::fmt;

/// Absolute/relative error tolerances for adaptive integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Absolute tolerance (per component).
    pub abs: f64,
    /// Relative tolerance (per component).
    pub rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            abs: 1e-9,
            rel: 1e-7,
        }
    }
}

/// Failure modes of adaptive integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OdeError {
    /// The controller shrank the step below the floating-point resolution of
    /// the current time — the system is too stiff for an explicit method.
    StepSizeUnderflow {
        /// Time at which the underflow occurred.
        at_step: u64,
    },
    /// The step budget was exhausted before reaching `t1`.
    MaxStepsExceeded,
    /// The right-hand side produced a non-finite derivative.
    NonFiniteDerivative,
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::StepSizeUnderflow { at_step } => {
                write!(f, "step size underflow at step {at_step}")
            }
            OdeError::MaxStepsExceeded => write!(f, "maximum step count exceeded"),
            OdeError::NonFiniteDerivative => write!(f, "non-finite derivative encountered"),
        }
    }
}

impl Error for OdeError {}

/// Statistics returned by a successful adaptive integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdaptiveResult {
    /// Accepted steps.
    pub accepted: u64,
    /// Rejected (retried) steps.
    pub rejected: u64,
    /// Right-hand-side evaluations.
    pub evals: u64,
}

/// The Dormand–Prince 5(4) embedded Runge–Kutta pair (`ode45`).
#[derive(Debug, Clone)]
pub struct DormandPrince54 {
    tol: Tolerances,
    max_steps: u64,
    /// Safety factor for the step controller (classically 0.9).
    safety: f64,
    k: [Vec<f64>; 7],
    ytmp: Vec<f64>,
    yerr: Vec<f64>,
    ynew: Vec<f64>,
}

impl Default for DormandPrince54 {
    fn default() -> Self {
        Self::new(Tolerances::default())
    }
}

// Butcher tableau of DOPRI5.
const A: [[f64; 6]; 6] = [
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [
        19372.0 / 6561.0,
        -25360.0 / 2187.0,
        64448.0 / 6561.0,
        -212.0 / 729.0,
        0.0,
        0.0,
    ],
    [
        9017.0 / 3168.0,
        -355.0 / 33.0,
        46732.0 / 5247.0,
        49.0 / 176.0,
        -5103.0 / 18656.0,
        0.0,
    ],
    [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
    ],
];
const C: [f64; 6] = [1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
/// 5th-order weights (same as last row of A — FSAL property).
const B5: [f64; 7] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
    0.0,
];
/// 4th-order (embedded) weights.
const B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

impl DormandPrince54 {
    /// Creates a solver with the given tolerances and a default step budget
    /// of 10 million.
    pub fn new(tol: Tolerances) -> Self {
        DormandPrince54 {
            tol,
            max_steps: 10_000_000,
            safety: 0.9,
            k: Default::default(),
            ytmp: Vec::new(),
            yerr: Vec::new(),
            ynew: Vec::new(),
        }
    }

    /// Overrides the maximum number of accepted+rejected steps.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Integrates `y` from `t0` to `t1`.
    ///
    /// # Errors
    ///
    /// See [`OdeError`].
    ///
    /// # Panics
    ///
    /// Panics if `t1 < t0` or `y.len() != sys.dim()`.
    pub fn integrate<S: OdeSystem>(
        &mut self,
        sys: &S,
        y: &mut [f64],
        t0: f64,
        t1: f64,
    ) -> Result<AdaptiveResult, OdeError> {
        self.integrate_observed(sys, y, t0, t1, |_, _| {})
    }

    /// Integrates with an observer invoked after every accepted step.
    ///
    /// # Errors
    ///
    /// See [`OdeError`].
    ///
    /// # Panics
    ///
    /// Panics if `t1 < t0` or `y.len() != sys.dim()`.
    pub fn integrate_observed<S: OdeSystem>(
        &mut self,
        sys: &S,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        mut observe: impl FnMut(f64, &[f64]),
    ) -> Result<AdaptiveResult, OdeError> {
        assert!(t1 >= t0, "t1 must be >= t0");
        let n = sys.dim();
        assert_eq!(y.len(), n, "state dimension mismatch");
        for k in &mut self.k {
            k.resize(n, 0.0);
        }
        self.ytmp.resize(n, 0.0);
        self.yerr.resize(n, 0.0);
        self.ynew.resize(n, 0.0);

        let mut stats = AdaptiveResult::default();
        if t0 == t1 {
            return Ok(stats);
        }

        let mut t = t0;
        let mut h = ((t1 - t0) / 100.0).clamp(f64::EPSILON * 16.0, 1e-2);
        // Gustafsson PI exponents for a 5(4) pair: factor =
        // safety * err^(-0.7/5) * prev_err^(0.4/5); net exponent negative so
        // the controller is stable and small errors grow the step.
        let alpha = 0.7 / 5.0;
        let beta = 0.4 / 5.0;
        let mut prev_err = 1.0f64;

        sys.eval(t, y, &mut self.k[0]);
        stats.evals += 1;
        observe(t, y);

        while t < t1 {
            if stats.accepted + stats.rejected >= self.max_steps {
                return Err(OdeError::MaxStepsExceeded);
            }
            h = h.min(t1 - t);
            if h <= f64::EPSILON * t.abs().max(1.0) {
                return Err(OdeError::StepSizeUnderflow {
                    at_step: stats.accepted + stats.rejected,
                });
            }

            // Stage evaluations (k[0] already holds f(t, y) via FSAL).
            for s in 1..7 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, kj) in self.k.iter().enumerate().take(s) {
                        let a = A[s - 1][j];
                        if a != 0.0 {
                            acc += a * kj[i];
                        }
                    }
                    self.ytmp[i] = y[i] + h * acc;
                }
                let ts = t + C[s - 1] * h;
                // Stage 7's ytmp is the 5th-order solution itself (FSAL).
                let (head, tail) = self.k.split_at_mut(s);
                let _ = head;
                sys.eval(ts, &self.ytmp, &mut tail[0]);
                stats.evals += 1;
                if s == 6 {
                    self.ynew.copy_from_slice(&self.ytmp);
                }
            }

            // Error estimate: difference of the two embedded solutions.
            let mut err_norm = 0.0f64;
            for i in 0..n {
                let mut e = 0.0;
                for (j, kj) in self.k.iter().enumerate() {
                    let db = B5[j] - B4[j];
                    if db != 0.0 {
                        e += db * kj[i];
                    }
                }
                let e = h * e;
                if !e.is_finite() {
                    return Err(OdeError::NonFiniteDerivative);
                }
                let scale = self.tol.abs + self.tol.rel * y[i].abs().max(self.ynew[i].abs());
                let r = e / scale;
                err_norm += r * r;
            }
            let err = (err_norm / n as f64).sqrt().max(1e-16);

            if err <= 1.0 {
                // Accept.
                t += h;
                y.copy_from_slice(&self.ynew);
                // FSAL: k7 is f(t+h, ynew).
                let last = self.k[6].clone();
                self.k[0].copy_from_slice(&last);
                stats.accepted += 1;
                observe(t, y);
                let factor = self.safety * err.powf(-alpha) * prev_err.powf(beta);
                h *= factor.clamp(0.2, 5.0);
                prev_err = err;
            } else {
                stats.rejected += 1;
                h *= (self.safety * err.powf(-0.2)).clamp(0.1, 1.0);
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FnSystem;

    #[test]
    fn decay_to_tolerance() {
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
        let mut y = vec![1.0];
        let mut solver = DormandPrince54::new(Tolerances {
            abs: 1e-12,
            rel: 1e-10,
        });
        let stats = solver.integrate(&sys, &mut y, 0.0, 5.0).unwrap();
        assert!((y[0] - (-5.0f64).exp()).abs() < 1e-9);
        assert!(stats.accepted > 0);
        assert!(stats.evals >= stats.accepted * 6);
    }

    #[test]
    fn harmonic_long_horizon() {
        let sys = FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let mut y = vec![1.0, 0.0];
        let mut solver = DormandPrince54::default();
        solver
            .integrate(&sys, &mut y, 0.0, 10.0 * std::f64::consts::PI)
            .unwrap();
        // After 5 full periods the state returns to (1, 0).
        assert!((y[0] - 1.0).abs() < 1e-4, "y0 = {}", y[0]);
        assert!(y[1].abs() < 1e-4, "y1 = {}", y[1]);
    }

    #[test]
    fn adapts_step_to_sharp_feature() {
        // y' = -1000 (y - sin t) + cos t: fast transient onto sin(t).
        let sys = FnSystem::new(1, |t, y: &[f64], d: &mut [f64]| {
            d[0] = -1000.0 * (y[0] - t.sin()) + t.cos();
        });
        let mut y = vec![1.0];
        let mut solver = DormandPrince54::default();
        let stats = solver.integrate(&sys, &mut y, 0.0, 1.0).unwrap();
        assert!((y[0] - 1.0f64.sin()).abs() < 1e-5);
        // Stiff transient should force rejections or many small steps.
        assert!(stats.accepted > 100);
    }

    #[test]
    fn zero_interval_noop() {
        let sys = FnSystem::new(1, |_t, _y: &[f64], d: &mut [f64]| d[0] = 1.0);
        let mut y = vec![2.0];
        let stats = DormandPrince54::default()
            .integrate(&sys, &mut y, 3.0, 3.0)
            .unwrap();
        assert_eq!(y[0], 2.0);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn max_steps_errors_out() {
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
        let mut y = vec![1.0];
        let mut solver = DormandPrince54::default().with_max_steps(3);
        assert_eq!(
            solver.integrate(&sys, &mut y, 0.0, 100.0),
            Err(OdeError::MaxStepsExceeded)
        );
    }

    #[test]
    fn nonfinite_rhs_detected() {
        let sys = FnSystem::new(1, |_t, _y: &[f64], d: &mut [f64]| d[0] = f64::NAN);
        let mut y = vec![1.0];
        let err = DormandPrince54::default()
            .integrate(&sys, &mut y, 0.0, 1.0)
            .unwrap_err();
        // NaN propagates into either error branch depending on controller path.
        assert!(matches!(
            err,
            OdeError::NonFiniteDerivative | OdeError::StepSizeUnderflow { .. }
        ));
    }

    #[test]
    fn observer_sees_monotone_time() {
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
        let mut y = vec![1.0];
        let mut last = -1.0;
        DormandPrince54::default()
            .integrate_observed(&sys, &mut y, 0.0, 1.0, |t, _| {
                assert!(t > last || (t == 0.0 && last == -1.0));
                last = t;
            })
            .unwrap();
        assert_eq!(last, 1.0);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            OdeError::MaxStepsExceeded.to_string(),
            "maximum step count exceeded"
        );
        assert!(OdeError::StepSizeUnderflow { at_step: 7 }
            .to_string()
            .contains("step 7"));
    }
}
