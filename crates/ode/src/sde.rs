//! Stochastic integrators with diagonal additive noise.
//!
//! Oscillator jitter — the mechanism the paper uses both to randomize
//! initial phases ("ROSCs are initially turned on at random time instances
//! and set free ... to randomly drift apart from each other through jitter",
//! §4) and to keep the annealing stochastic — is white phase noise. The
//! standard model is the Itô SDE `dθ = f(θ)dt + σ dW`, which Euler–Maruyama
//! integrates at strong order 1/2 (order 1 for additive noise).

use crate::system::SdeSystem;
use rand::Rng;

/// Draws a standard normal via the Box–Muller transform.
///
/// The approved offline dependency set includes `rand` but not `rand_distr`,
/// so the Gaussian sampler lives here. Box–Muller is exact (not an
/// approximation) and fast enough for phase-noise injection.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0): gen() yields [0, 1), so flip to (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills `out` with standard normals for a **multi-replica** SDE step.
///
/// `out` is laid out node-major, replica-minor (`out[i*R + r]` is node `i`
/// of replica `r`, with `R = rngs.len()`). Each replica draws from its own
/// generator, and — the property batch solvers rely on — replica `r`'s
/// deviates appear in exactly the order a *sequential* per-replica
/// integration drawing one deviate per node would produce. Replacing a
/// loop of independent runs with one interleaved batch therefore consumes
/// identical per-replica RNG streams and reproduces results bit for bit.
///
/// # Panics
///
/// Panics if `rngs` is empty or `out.len()` is not a multiple of
/// `rngs.len()`.
pub fn fill_normal_batch<R: Rng>(out: &mut [f64], rngs: &mut [R]) {
    let replicas = rngs.len();
    assert!(replicas > 0, "need at least one replica RNG");
    assert_eq!(
        out.len() % replicas,
        0,
        "buffer length {} not a multiple of replica count {replicas}",
        out.len()
    );
    for node_chunk in out.chunks_mut(replicas) {
        for (slot, rng) in node_chunk.iter_mut().zip(rngs.iter_mut()) {
            *slot = standard_normal(rng);
        }
    }
}

/// A one-step SDE integrator with diagonal noise.
pub trait SdeStepper {
    /// Advances `y` in place by one step `dt` at time `t`, drawing Wiener
    /// increments from `rng`.
    fn step<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        t: f64,
        y: &mut [f64],
        dt: f64,
        rng: &mut R,
    );

    /// Integrates from `t0` to `t1` with steps of at most `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    fn integrate<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rng: &mut R,
    ) {
        assert!(dt > 0.0, "step size must be positive");
        assert!(t1 >= t0, "t1 must be >= t0");
        let mut t = t0;
        while t < t1 {
            let h = dt.min(t1 - t);
            self.step(sys, t, y, h, rng);
            t += h;
        }
    }

    /// Like [`SdeStepper::integrate`] with an observer after every step (and
    /// once at `t0`).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    #[allow(clippy::too_many_arguments)]
    fn integrate_observed<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rng: &mut R,
        mut observe: impl FnMut(f64, &[f64]),
    ) {
        assert!(dt > 0.0, "step size must be positive");
        assert!(t1 >= t0, "t1 must be >= t0");
        observe(t0, y);
        let mut t = t0;
        while t < t1 {
            let h = dt.min(t1 - t);
            self.step(sys, t, y, h, rng);
            t += h;
            observe(t, y);
        }
    }
}

/// Euler–Maruyama: `y += f dt + g √dt ξ`, `ξ ~ N(0, 1)`.
#[derive(Debug, Clone, Default)]
pub struct EulerMaruyama {
    drift: Vec<f64>,
    diff: Vec<f64>,
}

impl EulerMaruyama {
    /// Creates an Euler–Maruyama stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SdeStepper for EulerMaruyama {
    #[allow(clippy::needless_range_loop)] // lockstep walk over drift/diff/y
    fn step<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        t: f64,
        y: &mut [f64],
        dt: f64,
        rng: &mut R,
    ) {
        let n = sys.dim();
        self.drift.resize(n, 0.0);
        self.diff.resize(n, 0.0);
        sys.eval(t, y, &mut self.drift);
        sys.diffusion(t, y, &mut self.diff);
        let sqrt_dt = dt.sqrt();
        for i in 0..n {
            let xi = standard_normal(rng);
            y[i] += dt * self.drift[i] + sqrt_dt * self.diff[i] * xi;
        }
    }
}

/// Stochastic Heun (improved Euler for the drift; additive-noise exact
/// treatment of the diffusion). Weak order 2 for additive noise.
#[derive(Debug, Clone, Default)]
pub struct StochasticHeun {
    k1: Vec<f64>,
    k2: Vec<f64>,
    diff: Vec<f64>,
    ytmp: Vec<f64>,
    noise: Vec<f64>,
}

impl StochasticHeun {
    /// Creates a stochastic Heun stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SdeStepper for StochasticHeun {
    #[allow(clippy::needless_range_loop)] // lockstep walk over k1/k2/noise/y
    fn step<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        t: f64,
        y: &mut [f64],
        dt: f64,
        rng: &mut R,
    ) {
        let n = sys.dim();
        self.k1.resize(n, 0.0);
        self.k2.resize(n, 0.0);
        self.diff.resize(n, 0.0);
        self.ytmp.resize(n, 0.0);
        self.noise.resize(n, 0.0);

        sys.eval(t, y, &mut self.k1);
        sys.diffusion(t, y, &mut self.diff);
        let sqrt_dt = dt.sqrt();
        for i in 0..n {
            let xi = standard_normal(rng);
            self.noise[i] = sqrt_dt * self.diff[i] * xi;
            self.ytmp[i] = y[i] + dt * self.k1[i] + self.noise[i];
        }
        sys.eval(t + dt, &self.ytmp, &mut self.k2);
        for i in 0..n {
            y[i] += 0.5 * dt * (self.k1[i] + self.k2[i]) + self.noise[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{OdeSystem, SdeSystem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Ornstein–Uhlenbeck process dx = -a x dt + s dW with known stationary
    /// variance s^2 / (2a).
    struct Ou {
        a: f64,
        s: f64,
    }

    impl OdeSystem for Ou {
        fn dim(&self) -> usize {
            1
        }
        fn eval(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            d[0] = -self.a * y[0];
        }
    }

    impl SdeSystem for Ou {
        fn diffusion(&self, _t: f64, _y: &[f64], g: &mut [f64]) {
            g[0] = self.s;
        }
    }

    fn stationary_variance<M: SdeStepper + Default>(seed: u64) -> f64 {
        let sys = Ou { a: 1.0, s: 0.5 };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stepper = M::default();
        let mut sum_sq = 0.0;
        let trials = 400;
        for _ in 0..trials {
            let mut y = vec![0.0];
            stepper.integrate(&sys, &mut y, 0.0, 8.0, 1e-2, &mut rng);
            sum_sq += y[0] * y[0];
        }
        sum_sq / trials as f64
    }

    #[test]
    fn euler_maruyama_ou_variance() {
        let v = stationary_variance::<EulerMaruyama>(1);
        let exact = 0.25 / 2.0; // s^2/(2a) = 0.125
        assert!((v - exact).abs() < 0.03, "variance {v} vs {exact}");
    }

    #[test]
    fn heun_ou_variance() {
        let v = stationary_variance::<StochasticHeun>(2);
        let exact = 0.125;
        assert!((v - exact).abs() < 0.03, "variance {v} vs {exact}");
    }

    #[test]
    fn zero_noise_matches_deterministic() {
        let sys = Ou { a: 1.0, s: 0.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut y = vec![1.0];
        StochasticHeun::new().integrate(&sys, &mut y, 0.0, 1.0, 1e-3, &mut rng);
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-5);
    }

    #[test]
    fn pure_diffusion_variance_grows_linearly() {
        let sys = Ou { a: 0.0, s: 1.0 };
        let mut rng = StdRng::seed_from_u64(4);
        let mut stepper = EulerMaruyama::new();
        let trials = 500;
        let mut sum_sq = 0.0;
        for _ in 0..trials {
            let mut y = vec![0.0];
            stepper.integrate(&sys, &mut y, 0.0, 2.0, 1e-2, &mut rng);
            sum_sq += y[0] * y[0];
        }
        let v = sum_sq / trials as f64;
        assert!((v - 2.0).abs() < 0.3, "Var[W(2)] = 2, got {v}");
    }

    #[test]
    fn observed_integration_endpoints() {
        let sys = Ou { a: 1.0, s: 0.1 };
        let mut rng = StdRng::seed_from_u64(5);
        let mut y = vec![0.0];
        let mut count = 0;
        EulerMaruyama::new()
            .integrate_observed(&sys, &mut y, 0.0, 0.5, 0.1, &mut rng, |_, _| count += 1);
        assert_eq!(count, 6); // t0 plus 5 steps
    }

    #[test]
    fn batch_normals_match_sequential_per_replica_streams() {
        // Replica r of the batch must see exactly the deviates a
        // standalone run with the same seed would draw, in the same order.
        let n = 5;
        let replicas = 3;
        let mut rngs: Vec<StdRng> = (0..replicas)
            .map(|r| StdRng::seed_from_u64(100 + r as u64))
            .collect();
        let mut batch = vec![0.0; n * replicas];
        fill_normal_batch(&mut batch, &mut rngs);
        for r in 0..replicas {
            let mut solo = StdRng::seed_from_u64(100 + r as u64);
            for i in 0..n {
                let expect = standard_normal(&mut solo);
                assert_eq!(batch[i * replicas + r].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn batch_normals_reject_ragged_buffer() {
        let mut rngs = vec![StdRng::seed_from_u64(0), StdRng::seed_from_u64(1)];
        fill_normal_batch(&mut [0.0; 5], &mut rngs);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let sys = Ou { a: 1.0, s: 0.5 };
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut y = vec![0.3];
            EulerMaruyama::new().integrate(&sys, &mut y, 0.0, 1.0, 1e-2, &mut rng);
            y[0]
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
