//! Stochastic integrators with diagonal additive noise.
//!
//! Oscillator jitter — the mechanism the paper uses both to randomize
//! initial phases ("ROSCs are initially turned on at random time instances
//! and set free ... to randomly drift apart from each other through jitter",
//! §4) and to keep the annealing stochastic — is white phase noise. The
//! standard model is the Itô SDE `dθ = f(θ)dt + σ dW`, which Euler–Maruyama
//! integrates at strong order 1/2 (order 1 for additive noise).

use crate::system::SdeSystem;
use rand::Rng;

/// Draws a standard normal deviate.
///
/// This is the single Gaussian choke point of the workspace: every noise
/// consumer (scalar steppers, the compiled kernels, the multi-replica
/// batch fill, frequency-spread sampling) draws through it, so swapping
/// the sampler can never desynchronize the solo and batch RNG streams
/// that the bit-identity contracts compare.
///
/// By default this is the rejection-free-in-the-common-case ziggurat
/// sampler ([`ziggurat_normal`]), which skips the `ln`/`cos` pair on
/// ~98.8% of draws. The `boxmuller` compat feature restores the
/// original Box–Muller transform ([`box_muller_normal`]). The two
/// samplers consume *different* amounts of RNG state per deviate, so
/// toggling the feature shifts every seeded trajectory (the
/// distributions agree; the streams do not) — the committed golden
/// baselines are recorded with the default (ziggurat) sampler.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    #[cfg(feature = "boxmuller")]
    {
        box_muller_normal(rng)
    }
    #[cfg(not(feature = "boxmuller"))]
    {
        ziggurat_normal(rng)
    }
}

/// Draws a standard normal via the Box–Muller transform.
///
/// The approved offline dependency set includes `rand` but not `rand_distr`,
/// so the Gaussian sampler lives here. Box–Muller is exact (not an
/// approximation); it was the default sampler before the ziggurat flip
/// and remains selectable via the `boxmuller` compat feature (always
/// compiled so its statistics stay under test either way).
pub fn box_muller_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0): gen() yields [0, 1), so flip to (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The ziggurat tables for the standard normal (Marsaglia & Tsang
/// layout, 256 layers): `x[i]` are the layer abscissae in decreasing
/// order (`x[0]` spans the base layer including the tail beyond
/// `ZIGGURAT_R`; `x[256] = 0`), `f[i] = exp(-x[i]²/2)`.
struct ZigguratTables {
    x: [f64; 257],
    f: [f64; 257],
}

/// Tail boundary `r` for 256 layers.
const ZIGGURAT_R: f64 = 3.654_152_885_361_009;
/// Common layer area `v` (the base layer's rectangle + tail both equal
/// it).
const ZIGGURAT_V: f64 = 0.004_928_673_233_992_336;

fn ziggurat_tables() -> &'static ZigguratTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<ZigguratTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0; 257];
        let mut f = [0.0; 257];
        // Base layer: its rectangle [0, x0] × [0, f(r)] plus the tail
        // beyond r carries area v, so x0 = v / f(r) > r.
        x[0] = ZIGGURAT_V / pdf(ZIGGURAT_R);
        x[1] = ZIGGURAT_R;
        for i in 2..256 {
            // Each layer i has area x[i-1] · (f(x[i]) − f(x[i-1])) = v.
            let fx = pdf(x[i - 1]) + ZIGGURAT_V / x[i - 1];
            x[i] = (-2.0 * fx.ln()).sqrt();
        }
        x[256] = 0.0;
        for i in 0..257 {
            f[i] = pdf(x[i]);
        }
        ZigguratTables { x, f }
    })
}

/// Draws a standard normal via the 256-layer ziggurat method (Marsaglia
/// & Tsang). One `u64` resolves the layer, the sign and a 53-bit
/// uniform; ~98.8% of draws accept immediately with a single multiply
/// and compare. Rejections fall through to the exact wedge test
/// (`exp`), and the base layer samples the tail beyond
/// `r ≈ 3.654` with Marsaglia's exponential method — the distribution
/// is exact, not truncated.
///
/// The default sampler behind [`standard_normal`] (see the ROADMAP's
/// "Faster Gaussian noise" item); the `boxmuller` compat feature swaps
/// it back out.
pub fn ziggurat_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let tables = ziggurat_tables();
    loop {
        let bits = rng.gen::<u64>();
        let i = (bits & 0xFF) as usize;
        let sign = if bits & 0x100 != 0 { -1.0 } else { 1.0 };
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = u * tables.x[i];
        if x < tables.x[i + 1] {
            // Inside the strictly-under-the-curve rectangle of layer i.
            return sign * x;
        }
        if i == 0 {
            // Base layer miss: sample the tail x > r exactly.
            loop {
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = 1.0 - rng.gen::<f64>();
                let xt = -u1.ln() / ZIGGURAT_R;
                let yt = -u2.ln();
                if 2.0 * yt > xt * xt {
                    return sign * (xt + ZIGGURAT_R);
                }
            }
        }
        // Wedge: uniform y between the layer's bounding ordinates,
        // accept under the true pdf.
        let y = tables.f[i + 1] + (tables.f[i] - tables.f[i + 1]) * rng.gen::<f64>();
        if y < (-0.5 * x * x).exp() {
            return sign * x;
        }
    }
}

/// Fills `out` with standard normals for a **multi-replica** SDE step.
///
/// `out` is laid out node-major, replica-minor (`out[i*R + r]` is node `i`
/// of replica `r`, with `R = rngs.len()`). Each replica draws from its own
/// generator, and — the property batch solvers rely on — replica `r`'s
/// deviates appear in exactly the order a *sequential* per-replica
/// integration drawing one deviate per node would produce. Replacing a
/// loop of independent runs with one interleaved batch therefore consumes
/// identical per-replica RNG streams and reproduces results bit for bit.
///
/// # Panics
///
/// Panics if `rngs` is empty or `out.len()` is not a multiple of
/// `rngs.len()`.
pub fn fill_normal_batch<R: Rng>(out: &mut [f64], rngs: &mut [R]) {
    let replicas = rngs.len();
    assert!(replicas > 0, "need at least one replica RNG");
    assert_eq!(
        out.len() % replicas,
        0,
        "buffer length {} not a multiple of replica count {replicas}",
        out.len()
    );
    for node_chunk in out.chunks_mut(replicas) {
        for (slot, rng) in node_chunk.iter_mut().zip(rngs.iter_mut()) {
            *slot = standard_normal(rng);
        }
    }
}

/// A one-step SDE integrator with diagonal noise.
pub trait SdeStepper {
    /// Advances `y` in place by one step `dt` at time `t`, drawing Wiener
    /// increments from `rng`.
    fn step<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        t: f64,
        y: &mut [f64],
        dt: f64,
        rng: &mut R,
    );

    /// Integrates from `t0` to `t1` with steps of at most `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    fn integrate<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rng: &mut R,
    ) {
        assert!(dt > 0.0, "step size must be positive");
        assert!(t1 >= t0, "t1 must be >= t0");
        let mut t = t0;
        while t < t1 {
            let h = dt.min(t1 - t);
            self.step(sys, t, y, h, rng);
            t += h;
        }
    }

    /// Like [`SdeStepper::integrate`] with an observer after every step (and
    /// once at `t0`).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    #[allow(clippy::too_many_arguments)]
    fn integrate_observed<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        rng: &mut R,
        mut observe: impl FnMut(f64, &[f64]),
    ) {
        assert!(dt > 0.0, "step size must be positive");
        assert!(t1 >= t0, "t1 must be >= t0");
        observe(t0, y);
        let mut t = t0;
        while t < t1 {
            let h = dt.min(t1 - t);
            self.step(sys, t, y, h, rng);
            t += h;
            observe(t, y);
        }
    }
}

/// Euler–Maruyama: `y += f dt + g √dt ξ`, `ξ ~ N(0, 1)`.
#[derive(Debug, Clone, Default)]
pub struct EulerMaruyama {
    drift: Vec<f64>,
    diff: Vec<f64>,
}

impl EulerMaruyama {
    /// Creates an Euler–Maruyama stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SdeStepper for EulerMaruyama {
    #[allow(clippy::needless_range_loop)] // lockstep walk over drift/diff/y
    fn step<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        t: f64,
        y: &mut [f64],
        dt: f64,
        rng: &mut R,
    ) {
        let n = sys.dim();
        self.drift.resize(n, 0.0);
        self.diff.resize(n, 0.0);
        sys.eval(t, y, &mut self.drift);
        sys.diffusion(t, y, &mut self.diff);
        let sqrt_dt = dt.sqrt();
        for i in 0..n {
            let xi = standard_normal(rng);
            y[i] += dt * self.drift[i] + sqrt_dt * self.diff[i] * xi;
        }
    }
}

/// Stochastic Heun (improved Euler for the drift; additive-noise exact
/// treatment of the diffusion). Weak order 2 for additive noise.
#[derive(Debug, Clone, Default)]
pub struct StochasticHeun {
    k1: Vec<f64>,
    k2: Vec<f64>,
    diff: Vec<f64>,
    ytmp: Vec<f64>,
    noise: Vec<f64>,
}

impl StochasticHeun {
    /// Creates a stochastic Heun stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SdeStepper for StochasticHeun {
    #[allow(clippy::needless_range_loop)] // lockstep walk over k1/k2/noise/y
    fn step<S: SdeSystem, R: Rng + ?Sized>(
        &mut self,
        sys: &S,
        t: f64,
        y: &mut [f64],
        dt: f64,
        rng: &mut R,
    ) {
        let n = sys.dim();
        self.k1.resize(n, 0.0);
        self.k2.resize(n, 0.0);
        self.diff.resize(n, 0.0);
        self.ytmp.resize(n, 0.0);
        self.noise.resize(n, 0.0);

        sys.eval(t, y, &mut self.k1);
        sys.diffusion(t, y, &mut self.diff);
        let sqrt_dt = dt.sqrt();
        for i in 0..n {
            let xi = standard_normal(rng);
            self.noise[i] = sqrt_dt * self.diff[i] * xi;
            self.ytmp[i] = y[i] + dt * self.k1[i] + self.noise[i];
        }
        sys.eval(t + dt, &self.ytmp, &mut self.k2);
        for i in 0..n {
            y[i] += 0.5 * dt * (self.k1[i] + self.k2[i]) + self.noise[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{OdeSystem, SdeSystem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Ornstein–Uhlenbeck process dx = -a x dt + s dW with known stationary
    /// variance s^2 / (2a).
    struct Ou {
        a: f64,
        s: f64,
    }

    impl OdeSystem for Ou {
        fn dim(&self) -> usize {
            1
        }
        fn eval(&self, _t: f64, y: &[f64], d: &mut [f64]) {
            d[0] = -self.a * y[0];
        }
    }

    impl SdeSystem for Ou {
        fn diffusion(&self, _t: f64, _y: &[f64], g: &mut [f64]) {
            g[0] = self.s;
        }
    }

    fn stationary_variance<M: SdeStepper + Default>(seed: u64) -> f64 {
        let sys = Ou { a: 1.0, s: 0.5 };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stepper = M::default();
        let mut sum_sq = 0.0;
        let trials = 400;
        for _ in 0..trials {
            let mut y = vec![0.0];
            stepper.integrate(&sys, &mut y, 0.0, 8.0, 1e-2, &mut rng);
            sum_sq += y[0] * y[0];
        }
        sum_sq / trials as f64
    }

    #[test]
    fn euler_maruyama_ou_variance() {
        let v = stationary_variance::<EulerMaruyama>(1);
        let exact = 0.25 / 2.0; // s^2/(2a) = 0.125
        assert!((v - exact).abs() < 0.03, "variance {v} vs {exact}");
    }

    #[test]
    fn heun_ou_variance() {
        let v = stationary_variance::<StochasticHeun>(2);
        let exact = 0.125;
        assert!((v - exact).abs() < 0.03, "variance {v} vs {exact}");
    }

    #[test]
    fn zero_noise_matches_deterministic() {
        let sys = Ou { a: 1.0, s: 0.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut y = vec![1.0];
        StochasticHeun::new().integrate(&sys, &mut y, 0.0, 1.0, 1e-3, &mut rng);
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-5);
    }

    #[test]
    fn pure_diffusion_variance_grows_linearly() {
        let sys = Ou { a: 0.0, s: 1.0 };
        let mut rng = StdRng::seed_from_u64(4);
        let mut stepper = EulerMaruyama::new();
        let trials = 500;
        let mut sum_sq = 0.0;
        for _ in 0..trials {
            let mut y = vec![0.0];
            stepper.integrate(&sys, &mut y, 0.0, 2.0, 1e-2, &mut rng);
            sum_sq += y[0] * y[0];
        }
        let v = sum_sq / trials as f64;
        assert!((v - 2.0).abs() < 0.3, "Var[W(2)] = 2, got {v}");
    }

    #[test]
    fn observed_integration_endpoints() {
        let sys = Ou { a: 1.0, s: 0.1 };
        let mut rng = StdRng::seed_from_u64(5);
        let mut y = vec![0.0];
        let mut count = 0;
        EulerMaruyama::new()
            .integrate_observed(&sys, &mut y, 0.0, 0.5, 0.1, &mut rng, |_, _| count += 1);
        assert_eq!(count, 6); // t0 plus 5 steps
    }

    #[test]
    fn batch_normals_match_sequential_per_replica_streams() {
        // Replica r of the batch must see exactly the deviates a
        // standalone run with the same seed would draw, in the same order.
        let n = 5;
        let replicas = 3;
        let mut rngs: Vec<StdRng> = (0..replicas)
            .map(|r| StdRng::seed_from_u64(100 + r as u64))
            .collect();
        let mut batch = vec![0.0; n * replicas];
        fill_normal_batch(&mut batch, &mut rngs);
        for r in 0..replicas {
            let mut solo = StdRng::seed_from_u64(100 + r as u64);
            for i in 0..n {
                let expect = standard_normal(&mut solo);
                assert_eq!(batch[i * replicas + r].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn batch_normals_reject_ragged_buffer() {
        let mut rngs = vec![StdRng::seed_from_u64(0), StdRng::seed_from_u64(1)];
        fill_normal_batch(&mut [0.0; 5], &mut rngs);
    }

    /// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
    /// approximation (|err| < 1.5e-7 — far below the KS tolerances
    /// below).
    fn normal_cdf(x: f64) -> f64 {
        let z = x / std::f64::consts::SQRT_2;
        let t = 1.0 / (1.0 + 0.327_591_1 * z.abs());
        let poly = t
            * (0.254_829_592
                + t * (-0.284_496_736
                    + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
        let erf = 1.0 - poly * (-z * z).exp();
        let erf = if z < 0.0 { -erf } else { erf };
        0.5 * (1.0 + erf)
    }

    /// Moment + Kolmogorov–Smirnov sanity check shared by both samplers.
    fn check_normal_sampler(mut draw: impl FnMut(&mut StdRng) -> f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 100_000;
        let mut xs: Vec<f64> = (0..n).map(|_| draw(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let skew = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
        assert!(skew.abs() < 0.05, "skewness {skew}");
        // KS distance against Φ. For n = 1e5 the 0.1% critical value is
        // ~1.95/√n ≈ 0.0062; 0.01 leaves generous headroom while still
        // catching any mis-built table layer (a single wrong layer
        // shifts ~0.4% of the mass).
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite deviate"));
        let mut d = 0.0f64;
        for (i, &x) in xs.iter().enumerate() {
            let cdf = normal_cdf(x);
            d = d.max((cdf - i as f64 / n as f64).abs());
            d = d.max(((i + 1) as f64 / n as f64 - cdf).abs());
        }
        assert!(d < 0.01, "KS distance {d}");
    }

    #[test]
    fn box_muller_moments_and_ks() {
        check_normal_sampler(box_muller_normal, 11);
    }

    #[test]
    fn ziggurat_moments_and_ks() {
        check_normal_sampler(ziggurat_normal, 12);
    }

    #[test]
    fn ziggurat_tail_is_exercised_and_unbounded_ish() {
        // The tail branch (|x| > r) carries ~2.6e-4 of the mass: 1e5
        // draws should produce a handful of tail deviates and no
        // truncation artifacts at r.
        let mut rng = StdRng::seed_from_u64(13);
        let tail = (0..100_000)
            .filter(|_| ziggurat_normal(&mut rng).abs() > ZIGGURAT_R)
            .count();
        assert!((5..200).contains(&tail), "tail draws {tail}");
    }

    #[test]
    fn standard_normal_matches_selected_sampler() {
        // Whatever the feature selects, the choke point must agree with
        // the sampler it claims to dispatch to, draw for draw.
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        for _ in 0..64 {
            let via_choke = standard_normal(&mut a);
            #[cfg(feature = "boxmuller")]
            let direct = box_muller_normal(&mut b);
            #[cfg(not(feature = "boxmuller"))]
            let direct = ziggurat_normal(&mut b);
            assert_eq!(via_choke.to_bits(), direct.to_bits());
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let sys = Ou { a: 1.0, s: 0.5 };
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut y = vec![0.3];
            EulerMaruyama::new().integrate(&sys, &mut y, 0.0, 1.0, 1e-2, &mut rng);
            y[0]
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
