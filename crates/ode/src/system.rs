//! System traits: what an ODE/SDE right-hand side looks like.

/// A first-order ODE system `dy/dt = f(t, y)` with dense real state.
///
/// Implementors write the derivative into a caller-provided buffer so that
/// per-step integration performs no allocation — essential when stepping
/// 2116-oscillator arrays tens of thousands of times.
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Writes `f(t, y)` into `dydt`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `y.len() != self.dim()` or
    /// `dydt.len() != self.dim()`.
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

/// A stochastic system `dy = f(t, y)·dt + g(t, y)·dW` with *diagonal*
/// noise: each state component receives an independent Wiener increment
/// scaled by its own diffusion coefficient.
///
/// Diagonal additive noise is exactly the phase-noise (jitter) model used
/// for oscillator networks; nothing richer is needed in this workspace.
pub trait SdeSystem: OdeSystem {
    /// Writes the per-component diffusion coefficients `g(t, y)` into `g_out`.
    fn diffusion(&self, t: f64, y: &[f64], g_out: &mut [f64]);
}

/// Blanket implementation so `&S` can be passed wherever `S: OdeSystem` is
/// expected (mirrors the std `Read`/`Write` by-reference impls).
impl<S: OdeSystem + ?Sized> OdeSystem for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (**self).eval(t, y, dydt)
    }
}

impl<S: SdeSystem + ?Sized> SdeSystem for &S {
    fn diffusion(&self, t: f64, y: &[f64], g_out: &mut [f64]) {
        (**self).diffusion(t, y, g_out)
    }
}

/// An [`OdeSystem`] defined by a closure; convenient in tests and examples.
///
/// # Example
///
/// ```
/// use msropm_ode::system::{FnSystem, OdeSystem};
///
/// let sys = FnSystem::new(2, |_t, y: &[f64], dydt: &mut [f64]| {
///     dydt[0] = y[1];
///     dydt[1] = -y[0];
/// });
/// let mut out = [0.0; 2];
/// sys.eval(0.0, &[1.0, 0.0], &mut out);
/// assert_eq!(out, [0.0, -1.0]);
/// ```
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps a closure as an ODE system of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (self.f)(t, y, dydt)
    }
}

impl<F> std::fmt::Debug for FnSystem<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSystem").field("dim", &self.dim).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_system_evaluates() {
        let sys = FnSystem::new(1, |t, _y: &[f64], d: &mut [f64]| d[0] = t);
        let mut out = [0.0];
        sys.eval(3.0, &[0.0], &mut out);
        assert_eq!(out[0], 3.0);
        assert_eq!(sys.dim(), 1);
    }

    #[test]
    fn reference_forwarding() {
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = 2.0 * y[0]);
        let by_ref: &dyn OdeSystem = &sys;
        let mut out = [0.0];
        (&by_ref).eval(0.0, &[1.5], &mut out);
        assert_eq!(out[0], 3.0);
    }

    #[test]
    fn debug_nonempty() {
        let sys = FnSystem::new(3, |_t, _y: &[f64], _d: &mut [f64]| {});
        assert_eq!(format!("{sys:?}"), "FnSystem { dim: 3 }");
    }
}
