//! Explicit fixed-step integrators: Euler, Heun, classic RK4.
//!
//! The circuit simulator steps ring-oscillator node voltages with a time
//! step pinned well below the oscillation period, so fixed-step explicit
//! methods are the right tool (and keep the hot loop allocation-free).

use crate::system::OdeSystem;

/// A fixed-step explicit one-step method.
///
/// This trait is sealed in spirit: the workspace's solvers are generic over
/// it, but downstream implementations are also fine — the contract is just
/// "advance `y` from `t` to `t + dt`".
pub trait FixedStepper {
    /// Advances `y` in place by one step `dt` starting at time `t`.
    fn step<S: OdeSystem>(&mut self, sys: &S, t: f64, y: &mut [f64], dt: f64);

    /// Classical convergence order of the method (1 for Euler, 2 for Heun,
    /// 4 for RK4); exposed so tests can verify observed order.
    fn order(&self) -> usize;

    /// Integrates from `t0` to `t1` with steps of at most `dt`, shrinking
    /// the final step to land exactly on `t1`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    fn integrate<S: OdeSystem>(&mut self, sys: &S, y: &mut [f64], t0: f64, t1: f64, dt: f64) {
        assert!(dt > 0.0, "step size must be positive");
        assert!(t1 >= t0, "t1 must be >= t0");
        let mut t = t0;
        while t < t1 {
            let h = dt.min(t1 - t);
            self.step(sys, t, y, h);
            t += h;
        }
    }

    /// Like [`FixedStepper::integrate`] but invokes `observe(t, y)` after
    /// every step (and once at `t0` before stepping).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `t1 < t0`.
    fn integrate_observed<S: OdeSystem>(
        &mut self,
        sys: &S,
        y: &mut [f64],
        t0: f64,
        t1: f64,
        dt: f64,
        mut observe: impl FnMut(f64, &[f64]),
    ) {
        assert!(dt > 0.0, "step size must be positive");
        assert!(t1 >= t0, "t1 must be >= t0");
        observe(t0, y);
        let mut t = t0;
        while t < t1 {
            let h = dt.min(t1 - t);
            self.step(sys, t, y, h);
            t += h;
            observe(t, y);
        }
    }
}

/// Forward Euler (order 1). Kept for convergence baselines and SDE parity.
#[derive(Debug, Clone, Default)]
pub struct Euler {
    k: Vec<f64>,
}

impl Euler {
    /// Creates an Euler stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FixedStepper for Euler {
    fn step<S: OdeSystem>(&mut self, sys: &S, t: f64, y: &mut [f64], dt: f64) {
        self.k.resize(sys.dim(), 0.0);
        sys.eval(t, y, &mut self.k);
        for (yi, ki) in y.iter_mut().zip(&self.k) {
            *yi += dt * ki;
        }
    }

    fn order(&self) -> usize {
        1
    }
}

/// Heun's method (explicit trapezoidal, order 2).
#[derive(Debug, Clone, Default)]
pub struct Heun {
    k1: Vec<f64>,
    k2: Vec<f64>,
    ytmp: Vec<f64>,
}

impl Heun {
    /// Creates a Heun stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FixedStepper for Heun {
    #[allow(clippy::needless_range_loop)] // lockstep walk over k1/k2/ytmp/y
    fn step<S: OdeSystem>(&mut self, sys: &S, t: f64, y: &mut [f64], dt: f64) {
        let n = sys.dim();
        self.k1.resize(n, 0.0);
        self.k2.resize(n, 0.0);
        self.ytmp.resize(n, 0.0);
        sys.eval(t, y, &mut self.k1);
        for i in 0..n {
            self.ytmp[i] = y[i] + dt * self.k1[i];
        }
        sys.eval(t + dt, &self.ytmp, &mut self.k2);
        for i in 0..n {
            y[i] += 0.5 * dt * (self.k1[i] + self.k2[i]);
        }
    }

    fn order(&self) -> usize {
        2
    }
}

/// The classic fourth-order Runge–Kutta method — the workhorse for the
/// circuit-level waveform simulations.
#[derive(Debug, Clone, Default)]
pub struct Rk4 {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    ytmp: Vec<f64>,
}

impl Rk4 {
    /// Creates an RK4 stepper.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FixedStepper for Rk4 {
    #[allow(clippy::needless_range_loop)] // lockstep walk over k1..k4/ytmp/y
    fn step<S: OdeSystem>(&mut self, sys: &S, t: f64, y: &mut [f64], dt: f64) {
        let n = sys.dim();
        self.k1.resize(n, 0.0);
        self.k2.resize(n, 0.0);
        self.k3.resize(n, 0.0);
        self.k4.resize(n, 0.0);
        self.ytmp.resize(n, 0.0);

        sys.eval(t, y, &mut self.k1);
        for i in 0..n {
            self.ytmp[i] = y[i] + 0.5 * dt * self.k1[i];
        }
        sys.eval(t + 0.5 * dt, &self.ytmp, &mut self.k2);
        for i in 0..n {
            self.ytmp[i] = y[i] + 0.5 * dt * self.k2[i];
        }
        sys.eval(t + 0.5 * dt, &self.ytmp, &mut self.k3);
        for i in 0..n {
            self.ytmp[i] = y[i] + dt * self.k3[i];
        }
        sys.eval(t + dt, &self.ytmp, &mut self.k4);
        for i in 0..n {
            y[i] += dt / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
    }

    fn order(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FnSystem;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0])
    }

    fn harmonic() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        })
    }

    /// Integrate decay over [0,1] at two step sizes and estimate the observed
    /// convergence order from the error ratio.
    fn observed_order<M: FixedStepper>(mut m: M) -> f64 {
        let sys = decay();
        let exact = (-1.0f64).exp();
        let mut err = [0.0f64; 2];
        for (i, &dt) in [1e-2, 5e-3].iter().enumerate() {
            let mut y = vec![1.0];
            m.integrate(&sys, &mut y, 0.0, 1.0, dt);
            err[i] = (y[0] - exact).abs();
        }
        (err[0] / err[1]).log2()
    }

    #[test]
    fn euler_first_order() {
        let p = observed_order(Euler::new());
        assert!((p - 1.0).abs() < 0.1, "observed order {p}");
        assert_eq!(Euler::new().order(), 1);
    }

    #[test]
    fn heun_second_order() {
        let p = observed_order(Heun::new());
        assert!((p - 2.0).abs() < 0.1, "observed order {p}");
        assert_eq!(Heun::new().order(), 2);
    }

    #[test]
    fn rk4_fourth_order() {
        let p = observed_order(Rk4::new());
        assert!((p - 4.0).abs() < 0.2, "observed order {p}");
        assert_eq!(Rk4::new().order(), 4);
    }

    #[test]
    fn rk4_energy_conservation_harmonic() {
        // RK4 on the harmonic oscillator keeps energy to ~1e-10 over 10 periods.
        let sys = harmonic();
        let mut y = vec![1.0, 0.0];
        Rk4::new().integrate(&sys, &mut y, 0.0, 20.0 * std::f64::consts::PI, 1e-3);
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-9, "energy drift {energy}");
    }

    #[test]
    fn integrate_lands_exactly_on_t1() {
        let sys = decay();
        let mut y = vec![1.0];
        // dt = 0.3 does not divide 1.0: the last step must shrink. Were the
        // integrator to overshoot to t = 1.2, the error would be ~0.07;
        // RK4's own global error at dt = 0.3 is only ~1e-4.
        Rk4::new().integrate(&sys, &mut y, 0.0, 1.0, 0.3);
        assert!((y[0] - (-1.0f64).exp()).abs() < 1e-3);
    }

    #[test]
    fn observed_integration_samples_endpoints() {
        let sys = decay();
        let mut y = vec![1.0];
        let mut ts = Vec::new();
        Rk4::new().integrate_observed(&sys, &mut y, 0.0, 1.0, 0.25, |t, _| ts.push(t));
        assert_eq!(ts.first(), Some(&0.0));
        assert_eq!(ts.last(), Some(&1.0));
        assert_eq!(ts.len(), 5);
    }

    #[test]
    fn zero_length_interval_is_noop() {
        let sys = decay();
        let mut y = vec![1.0];
        Euler::new().integrate(&sys, &mut y, 1.0, 1.0, 0.1);
        assert_eq!(y[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "step size must be positive")]
    fn rejects_nonpositive_dt() {
        let sys = decay();
        let mut y = vec![1.0];
        Euler::new().integrate(&sys, &mut y, 0.0, 1.0, 0.0);
    }
}
