//! A small bounded MPMC queue on `Mutex` + `Condvar`.
//!
//! This is the server's admission-control point: `push` blocks once
//! `capacity` jobs are waiting (backpressure on producers instead of
//! unbounded memory growth), `pop` blocks until work or shutdown. The
//! queue is deliberately tiny and dependency-free — the vendored
//! `crossbeam` shim only provides scoped threads, and `std::sync::mpsc`
//! is single-consumer, so neither fits a pool of competing workers.

use crate::lock_unpoisoned;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Condvar wait with poison recovery (see [`crate::lock_unpoisoned`]):
/// queue state mutations are single `VecDeque` operations, so a guard
/// recovered mid-unwind is always consistent.
fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why [`BoundedQueue::try_push`] handed the item back.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity; retry after a consumer makes room.
    Full(T),
    /// The queue is closed; the item can never be enqueued.
    Closed(T),
}

/// Bounded multi-producer/multi-consumer FIFO channel.
///
/// All methods take `&self`; share the queue behind an `Arc`.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` waiting items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns
    /// `Err(item)` (giving the item back) if the queue was closed before
    /// space became available.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = wait_unpoisoned(&self.not_full, state);
        }
    }

    /// Non-blocking [`BoundedQueue::push`]: enqueues only if space is
    /// free right now, giving the item back (tagged with why) otherwise.
    /// The reactor front end uses this so a full queue parks the job
    /// instead of stalling the event loop.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Full`] when the queue is at capacity,
    /// [`TryPushError::Closed`] when it has been closed.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = lock_unpoisoned(&self.state);
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() < self.capacity {
            state.items.push_back(item);
            self.not_empty.notify_one();
            Ok(())
        } else {
            Err(TryPushError::Full(item))
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed **and** drained — the
    /// consumer's shutdown signal (items enqueued before `close` are
    /// still delivered).
    pub fn pop(&self) -> Option<T> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = wait_unpoisoned(&self.not_empty, state);
        }
    }

    /// Closes the queue: subsequent `push`es fail fast, and `pop`
    /// returns `None` once the backlog drains. Idempotent.
    pub fn close(&self) {
        let mut state = lock_unpoisoned(&self.state);
        state.closed = true;
        // Wake everyone: blocked producers must fail, idle consumers
        // must observe the drain-and-exit condition.
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// `true` once [`BoundedQueue::close`] has been called (the backlog
    /// may still be draining). The supervisor polls this to tell a
    /// worker's natural shutdown exit from a death worth respawning.
    pub fn is_closed(&self) -> bool {
        lock_unpoisoned(&self.state).closed
    }

    /// Number of items currently waiting.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).items.len()
    }

    /// `true` when no item is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_blocks_until_space_then_succeeds() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(1).is_ok());
        // Give the producer a moment to block on the full queue.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn try_push_reports_full_and_closed_without_blocking() {
        let q = BoundedQueue::new(1);
        q.try_push(1u8).unwrap();
        match q.try_push(2) {
            Err(TryPushError::Full(v)) => assert_eq!(v, 2),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.close();
        match q.try_push(4) {
            Err(TryPushError::Closed(v)) => assert_eq!(v, 4),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Items admitted before close still drain.
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_drains_backlog_then_signals_consumers() {
        let q = BoundedQueue::new(4);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.close();
        assert_eq!(q.push('c'), Err('c'));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    /// The close-while-parked path the reactor's parked submits lean
    /// on: producers blocked in `push` on a full queue must wake
    /// promptly on `close` and get their item handed back — never lost,
    /// never enqueued past the close.
    #[test]
    fn close_wakes_parked_producers_with_their_items() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let parked: Vec<_> = (1..=3u32)
            .map(|v| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push(v))
            })
            .collect();
        // Let all three park on the full queue.
        thread::sleep(Duration::from_millis(20));
        q.close();
        let mut given_back: Vec<u32> = parked
            .into_iter()
            .map(|h| h.join().unwrap().expect_err("closed: item handed back"))
            .collect();
        given_back.sort_unstable();
        assert_eq!(given_back, vec![1, 2, 3]);
        // The pre-close item still drains; nothing snuck in after close.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    /// Stress the close / `try_push` give-back / `pop` interplay: under
    /// concurrent close, every item is either delivered exactly once or
    /// handed back to its producer — none lost, none duplicated.
    #[test]
    fn concurrent_close_never_loses_or_duplicates_items() {
        for round in 0..20u32 {
            let q = Arc::new(BoundedQueue::new(2));
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = q.pop() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let producers: Vec<_> = (0..3u32)
                .map(|p| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || {
                        let mut kept = Vec::new();
                        for i in 0..40u32 {
                            let v = p * 1000 + i;
                            match q.try_push(v) {
                                Ok(()) => {}
                                Err(TryPushError::Full(v)) | Err(TryPushError::Closed(v)) => {
                                    kept.push(v)
                                }
                            }
                        }
                        kept
                    })
                })
                .collect();
            // Close mid-flight: producers racing the close must all get
            // a definite verdict per item.
            thread::sleep(Duration::from_micros(u64::from(round) * 50));
            q.close();
            let mut all: Vec<u32> = Vec::new();
            for p in producers {
                all.extend(p.join().unwrap());
            }
            for c in consumers {
                all.extend(c.join().unwrap());
            }
            all.sort_unstable();
            let mut expect: Vec<u32> = (0..3)
                .flat_map(|p| (0..40).map(move |i| p * 1000 + i))
                .collect();
            expect.sort_unstable();
            assert_eq!(all, expect, "round {round}: items lost or duplicated");
        }
    }

    #[test]
    fn is_closed_flips_on_close() {
        let q = BoundedQueue::<u8>::new(1);
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
        assert!(q.is_closed(), "close is idempotent");
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..50u32 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u32> = (0..50).chain(1000..1050).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
