//! TCP front end for the job server: acceptor, per-tenant quotas,
//! cooperative cancellation, graceful drain.
//!
//! This is the ROADMAP's "socket protocol over `JobServer::submit`"
//! rung: a [`std::net::TcpListener`] acceptor plus per-connection
//! handler threads drive the existing [`crate::queue::BoundedQueue`] /
//! [`crate::JobTicket`] machinery directly — the wire layer owns no
//! solver state of its own, only the **job registry** (id → status
//! cell, cancel token, tenant accounting). Framing and message layout
//! live in [`crate::proto`].
//!
//! # Connection model
//!
//! Each accepted connection gets a reader thread (this thread parses
//! request frames and answers control verbs inline) and a writer thread
//! draining a FIFO channel of encoded frames — so a slow solve never
//! blocks `status`/`cancel` on the same connection, and report frames
//! from many in-flight jobs interleave safely with verb replies. A
//! per-job *completion waiter* thread redeems the [`crate::JobTicket`]
//! and pushes the report frame (cancelled jobs push **nothing**: no
//! report exists, and `status` answers `cancelled`).
//!
//! # Quotas
//!
//! Two per-tenant limits, both enforced at admission under the registry
//! lock and released when a job reaches a terminal state:
//!
//! - **max in-flight jobs** ([`WireConfig::max_inflight_jobs`]): jobs
//!   submitted and not yet done/cancelled/failed;
//! - **max queued lanes** ([`WireConfig::max_queued_lanes`]): the sum of
//!   `lanes.len()` over those jobs — a tenant cannot buy extra
//!   parallelism by packing thousand-lane sweeps into few jobs.
//!
//! Violations are rejected with a typed error frame
//! ([`crate::proto::ErrorCode::QuotaInFlight`] /
//! [`crate::proto::ErrorCode::QuotaLanes`]) and leave other tenants
//! untouched.
//!
//! # Shutdown
//!
//! [`WireServer::shutdown`] drains gracefully: new submits are rejected
//! with `shutting_down`, the acceptor stops, every in-flight job runs
//! to its terminal state, all pending report frames are flushed to
//! their connections, and only then are connections and the worker pool
//! torn down.

use crate::proto::{self, ErrorCode, ProtoError, Request, Response, WireReport, WireStats};
use crate::{JobServer, JobState, JobStatusCell, ServerConfig, ServerError};
use msropm_core::{BatchJob, CancelToken};
use msropm_graph::Graph;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Sizing and policy knobs of a [`WireServer`].
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// The backing job-server pool (workers, queue, cache).
    pub server: ServerConfig,
    /// Per-tenant cap on jobs submitted and not yet terminal.
    pub max_inflight_jobs: usize,
    /// Per-tenant cap on the summed lane count of non-terminal jobs.
    pub max_queued_lanes: usize,
    /// Cap on concurrently served connections; excess connects receive
    /// a `busy` error frame and are closed.
    pub max_connections: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            server: ServerConfig::default(),
            max_inflight_jobs: 16,
            max_queued_lanes: 1024,
            max_connections: 64,
        }
    }
}

/// Per-tenant admission counters (covering non-terminal jobs only).
#[derive(Debug, Default, Clone, Copy)]
struct TenantUsage {
    inflight: usize,
    queued_lanes: usize,
}

/// Registry entry for one submitted job; lives past the terminal state
/// so late `status` queries still resolve.
struct JobEntry {
    tenant: String,
    lanes: usize,
    status: Arc<JobStatusCell>,
    cancel: CancelToken,
}

/// Terminal jobs retained for late `status` queries before the oldest
/// are evicted (a bounded memory footprint for a long-lived daemon; an
/// evicted id answers `UnknownJob`).
const TERMINAL_JOBS_RETAINED: usize = 4096;

#[derive(Default)]
struct Registry {
    next_job_id: u64,
    jobs: HashMap<u64, JobEntry>,
    tenants: HashMap<String, TenantUsage>,
    /// Terminal job ids in completion order, oldest first (the eviction
    /// queue bounding `jobs`).
    terminal_order: std::collections::VecDeque<u64>,
    /// Jobs not yet terminal (drain waits for this to hit zero).
    active_jobs: usize,
}

struct WireShared {
    jobs: JobServer,
    config: WireConfig,
    registry: Mutex<Registry>,
    /// Signalled whenever a job reaches a terminal state.
    drained: Condvar,
    shutting_down: AtomicBool,
    live_connections: AtomicUsize,
    reports_streamed: AtomicU64,
}

/// The TCP front end; see the module docs.
pub struct WireServer {
    shared: Arc<WireShared>,
    local_addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
    connections: ConnectionList,
    waiters: WaiterList,
    down: bool,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor; the backing worker pool boots immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: WireConfig) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept + poll keeps shutdown portable (no
        // self-connect tricks): the loop notices `shutting_down` within
        // one poll interval.
        listener.set_nonblocking(true)?;
        let shared = Arc::new(WireShared {
            jobs: JobServer::start(config.server),
            config,
            registry: Mutex::new(Registry::default()),
            drained: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            reports_streamed: AtomicU64::new(0),
        });
        let connections = Arc::new(Mutex::new(Vec::new()));
        let waiters = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            let waiters = Arc::clone(&waiters);
            thread::Builder::new()
                .name("msropm-wire-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &connections, &waiters))
                .expect("spawn acceptor")
        };
        Ok(WireServer {
            shared,
            local_addr,
            accept: Some(accept),
            connections,
            waiters,
            down: false,
        })
    }

    /// The bound address (reports the ephemeral port after `bind(":0")`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current server-wide counters (the `stats` verb's payload).
    pub fn stats(&self) -> WireStats {
        wire_stats(&self.shared)
    }

    /// Report frames actually handed to a connection writer.
    pub fn reports_streamed(&self) -> u64 {
        self.shared.reports_streamed.load(Ordering::Relaxed)
    }

    /// Graceful drain: rejects new submits, stops accepting, lets every
    /// in-flight job reach a terminal state, flushes pending report
    /// frames, then closes connections and the worker pool.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.shared.shutting_down.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Wait for every admitted job to reach a terminal state. Workers
        // keep draining the queue (cancelled jobs fly through), so this
        // terminates as long as the pool is alive.
        {
            let mut reg = self.shared.registry.lock().expect("registry mutex");
            while reg.active_jobs > 0 {
                reg = self
                    .shared
                    .drained
                    .wait(reg)
                    .expect("registry mutex poisoned");
            }
        }
        // Completion waiters have now all been unblocked; joining them
        // guarantees every report frame is in its connection's writer
        // queue before we start closing read sides.
        for h in self.waiters.lock().expect("waiters mutex").drain(..) {
            let _ = h.join();
        }
        // Closing the read side ends each reader loop; readers drop
        // their writer senders, writers flush the queued frames (reports
        // included) and exit.
        let mut conns = self.connections.lock().expect("connections mutex");
        for (stream, _) in conns.iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, handle) in conns.drain(..) {
            let _ = handle.join();
        }
        // The JobServer itself drains and joins its workers when the
        // last Arc drops (WireShared owns it).
    }
}

impl Drop for WireServer {
    /// Dropping the front end performs the same graceful drain as
    /// [`WireServer::shutdown`].
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

type ConnectionList = Arc<Mutex<Vec<(TcpStream, thread::JoinHandle<()>)>>>;
type WaiterList = Arc<Mutex<Vec<thread::JoinHandle<()>>>>;

/// Reaps entries whose handler thread has exited: joins the (finished)
/// thread and drops the retained stream clone, releasing its fd. Called
/// from the accept loop so a daemon serving churning short-lived
/// connections never accumulates dead sockets.
fn sweep_connections(connections: &ConnectionList) {
    let mut conns = connections.lock().expect("connections mutex");
    let mut i = 0;
    while i < conns.len() {
        if conns[i].1.is_finished() {
            let (_stream, handle) = conns.swap_remove(i);
            let _ = handle.join();
        } else {
            i += 1;
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<WireShared>,
    connections: &ConnectionList,
    waiters: &WaiterList,
) {
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        sweep_connections(connections);
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.live_connections.load(Ordering::Acquire) >= shared.config.max_connections
                {
                    // Over the cap: one typed error frame, then close.
                    let mut w = BufWriter::new(&stream);
                    let frame = proto::encode_response(&Response::Error {
                        code: ErrorCode::Busy,
                        message: "connection cap reached".into(),
                    });
                    let _ = proto::write_frame(&mut w, &frame);
                    let _ = w.flush();
                    continue;
                }
                stream.set_nonblocking(false).expect("stream mode");
                let _ = stream.set_nodelay(true);
                let reader_stream = match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                shared.live_connections.fetch_add(1, Ordering::AcqRel);
                let shared2 = Arc::clone(shared);
                let waiters2 = Arc::clone(waiters);
                let handle = thread::Builder::new()
                    .name("msropm-wire-conn".into())
                    .spawn(move || {
                        connection_loop(reader_stream, &shared2, &waiters2);
                        shared2.live_connections.fetch_sub(1, Ordering::AcqRel);
                    })
                    .expect("spawn connection thread");
                connections
                    .lock()
                    .expect("connections mutex")
                    .push((stream, handle));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Runs one connection: parse frames, answer verbs, spawn completion
/// waiters. Returns when the peer closes, the framing desyncs, or
/// shutdown closes the read side.
fn connection_loop(stream: TcpStream, shared: &Arc<WireShared>, waiters: &WaiterList) {
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer = thread::Builder::new()
        .name("msropm-wire-writer".into())
        .spawn(move || {
            let mut out = BufWriter::new(write_stream);
            while let Ok(frame) = rx.recv() {
                if proto::write_frame(&mut out, &frame).is_err() || out.flush().is_err() {
                    // Peer gone: drain silently so senders never block.
                    for _ in rx.iter() {}
                    return;
                }
            }
        })
        .expect("spawn writer thread");

    let mut reader = BufReader::new(stream);
    loop {
        let payload = match proto::read_frame(&mut reader) {
            Ok(p) => p,
            Err(e) => {
                if !proto::is_clean_close(&e) {
                    send(
                        &tx,
                        &Response::Error {
                            code: ErrorCode::Malformed,
                            message: e.to_string(),
                        },
                    );
                }
                break;
            }
        };
        match proto::decode_request(&payload) {
            Ok(req) => handle_request(req, shared, &tx, waiters),
            Err(ProtoError::BadTag(t)) => send(
                &tx,
                &Response::Error {
                    code: ErrorCode::UnsupportedVerb,
                    message: format!("unknown frame type 0x{t:02X}"),
                },
            ),
            Err(e) => send(
                &tx,
                &Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                },
            ),
        }
    }
    drop(tx);
    let _ = writer.join();
}

fn send(tx: &mpsc::Sender<Vec<u8>>, resp: &Response) {
    let _ = tx.send(proto::encode_response(resp));
}

/// The one place [`WireStats`] is assembled from the shared counters
/// (serves both [`WireServer::stats`] and the `stats` verb).
fn wire_stats(shared: &WireShared) -> WireStats {
    let cache = shared.jobs.cache_stats();
    WireStats {
        jobs_completed: shared.jobs.jobs_completed(),
        jobs_cancelled: shared.jobs.jobs_cancelled(),
        backlog: shared.jobs.backlog() as u64,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
    }
}

fn handle_request(
    req: Request,
    shared: &Arc<WireShared>,
    tx: &mpsc::Sender<Vec<u8>>,
    waiters: &WaiterList,
) {
    match req {
        Request::Submit { tenant, graph, job } => {
            handle_submit(tenant, graph, job, shared, tx, waiters)
        }
        Request::Status { tenant, job_id } => {
            let reg = shared.registry.lock().expect("registry mutex");
            match reg.jobs.get(&job_id) {
                None => send(
                    tx,
                    &Response::Error {
                        code: ErrorCode::UnknownJob,
                        message: format!("no job {job_id}"),
                    },
                ),
                Some(entry) if entry.tenant != tenant => send(
                    tx,
                    &Response::Error {
                        code: ErrorCode::Forbidden,
                        message: format!("job {job_id} belongs to another tenant"),
                    },
                ),
                Some(entry) => send(
                    tx,
                    &Response::StatusReply {
                        job_id,
                        state: entry.status.get(),
                    },
                ),
            }
        }
        Request::Cancel { tenant, job_id } => {
            let reg = shared.registry.lock().expect("registry mutex");
            match reg.jobs.get(&job_id) {
                None => send(
                    tx,
                    &Response::Error {
                        code: ErrorCode::UnknownJob,
                        message: format!("no job {job_id}"),
                    },
                ),
                Some(entry) if entry.tenant != tenant => send(
                    tx,
                    &Response::Error {
                        code: ErrorCode::Forbidden,
                        message: format!("job {job_id} belongs to another tenant"),
                    },
                ),
                Some(entry) => {
                    // Cooperative: flips the token; the worker observes
                    // it at pickup or the next stage boundary. Already
                    // terminal jobs are unaffected (cancel is a no-op).
                    entry.cancel.cancel();
                    send(
                        tx,
                        &Response::CancelReply {
                            job_id,
                            state: entry.status.get(),
                        },
                    );
                }
            }
        }
        Request::Stats => send(tx, &Response::StatsReply(wire_stats(shared))),
    }
}

fn handle_submit(
    tenant: String,
    graph: Graph,
    job: BatchJob,
    shared: &Arc<WireShared>,
    tx: &mpsc::Sender<Vec<u8>>,
    waiters: &WaiterList,
) {
    if shared.shutting_down.load(Ordering::Acquire) {
        send(
            tx,
            &Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "server is draining".into(),
            },
        );
        return;
    }
    let lanes = job.lanes.len();
    let cancel = CancelToken::new();
    let status = Arc::new(JobStatusCell::new());
    // Admission control: reserve quota and register the job *before*
    // enqueueing, so a cancel/status for the returned id can never miss,
    // and release on any failure below.
    let job_id = {
        let mut reg = shared.registry.lock().expect("registry mutex");
        // Read-only quota check first: a rejected submit must not leave
        // a tenant entry behind (a peer cycling random tenant ids would
        // otherwise grow the map forever).
        let usage = reg.tenants.get(&tenant).copied().unwrap_or_default();
        if usage.inflight + 1 > shared.config.max_inflight_jobs {
            let code = ErrorCode::QuotaInFlight;
            let message = format!(
                "tenant {tenant:?} at in-flight cap ({})",
                shared.config.max_inflight_jobs
            );
            drop(reg);
            send(tx, &Response::Error { code, message });
            return;
        }
        if usage.queued_lanes + lanes > shared.config.max_queued_lanes {
            let code = ErrorCode::QuotaLanes;
            let message = format!(
                "tenant {tenant:?} would exceed queued-lane cap ({})",
                shared.config.max_queued_lanes
            );
            drop(reg);
            send(tx, &Response::Error { code, message });
            return;
        }
        let usage = reg.tenants.entry(tenant.clone()).or_default();
        usage.inflight += 1;
        usage.queued_lanes += lanes;
        reg.active_jobs += 1;
        reg.next_job_id += 1;
        let job_id = reg.next_job_id;
        reg.jobs.insert(
            job_id,
            JobEntry {
                tenant: tenant.clone(),
                lanes,
                status: Arc::clone(&status),
                cancel: cancel.clone(),
            },
        );
        job_id
    };
    // Enqueue outside the registry lock: a full queue applies
    // backpressure to this connection only.
    match shared
        .jobs
        .submit_with(Arc::new(graph), job, cancel, Arc::clone(&status))
    {
        Ok(ticket) => {
            send(tx, &Response::Submitted { job_id });
            let shared2 = Arc::clone(shared);
            let tx2 = tx.clone();
            let waiter = thread::Builder::new()
                .name("msropm-wire-waiter".into())
                .spawn(move || {
                    match ticket.wait() {
                        Ok(outcome) => {
                            // Release the quota slot *before* streaming
                            // the report: a tenant that resubmits the
                            // moment its report arrives must fit.
                            finalize(&shared2, job_id);
                            let report = WireReport::from_outcome(job_id, &outcome);
                            let frame = proto::encode_response(&Response::Report(report));
                            if tx2.send(frame).is_ok() {
                                shared2.reports_streamed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(ServerError::Cancelled) => {
                            // No report exists for a cancelled job, and
                            // none is ever streamed.
                            finalize(&shared2, job_id);
                        }
                        Err(_) => {
                            status_fail(&shared2, job_id);
                            finalize(&shared2, job_id);
                        }
                    }
                })
                .expect("spawn completion waiter");
            // Reap finished waiters while we hold the lock anyway, so a
            // long-lived server's waiter list tracks in-flight jobs, not
            // all jobs ever submitted.
            let mut list = waiters.lock().expect("waiters mutex");
            let mut i = 0;
            while i < list.len() {
                if list[i].is_finished() {
                    let done = list.swap_remove(i);
                    let _ = done.join();
                } else {
                    i += 1;
                }
            }
            list.push(waiter);
        }
        Err(_) => {
            finalize(shared, job_id);
            send(
                tx,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "job queue closed".into(),
                },
            );
        }
    }
}

/// Marks a worker-died job as failed (panic surfaced via the ticket).
fn status_fail(shared: &WireShared, job_id: u64) {
    let reg = shared.registry.lock().expect("registry mutex");
    if let Some(entry) = reg.jobs.get(&job_id) {
        entry.status.set(JobState::Failed);
    }
}

/// Releases a job's quota reservation once it is terminal and wakes the
/// drain waiter. The registry entry is retained so late status queries
/// resolve, but only the newest [`TERMINAL_JOBS_RETAINED`] terminal
/// jobs — older ones are evicted (status then answers `UnknownJob`),
/// keeping a long-lived daemon's footprint bounded.
fn finalize(shared: &WireShared, job_id: u64) {
    let mut reg = shared.registry.lock().expect("registry mutex");
    let Some(entry) = reg.jobs.get(&job_id) else {
        return;
    };
    let tenant = entry.tenant.clone();
    let lanes = entry.lanes;
    if let Some(usage) = reg.tenants.get_mut(&tenant) {
        usage.inflight = usage.inflight.saturating_sub(1);
        usage.queued_lanes = usage.queued_lanes.saturating_sub(lanes);
        // Idle tenants drop out of the map entirely; quotas are purely
        // about current usage, so an empty entry carries no state.
        if usage.inflight == 0 && usage.queued_lanes == 0 {
            reg.tenants.remove(&tenant);
        }
    }
    reg.active_jobs = reg.active_jobs.saturating_sub(1);
    reg.terminal_order.push_back(job_id);
    while reg.terminal_order.len() > TERMINAL_JOBS_RETAINED {
        if let Some(evict) = reg.terminal_order.pop_front() {
            reg.jobs.remove(&evict);
        }
    }
    drop(reg);
    shared.drained.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_response, encode_request, read_frame, write_frame};
    use msropm_core::MsropmConfig;
    use msropm_graph::generators;
    use std::io::Write;

    fn fast_config() -> MsropmConfig {
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    fn test_server(config: WireConfig) -> WireServer {
        WireServer::bind("127.0.0.1:0", config).expect("bind ephemeral port")
    }

    /// Minimal blocking test client speaking raw frames.
    struct RawClient {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl RawClient {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            RawClient { stream, reader }
        }

        fn send(&mut self, req: &Request) {
            let payload = encode_request(req);
            write_frame(&mut self.stream, &payload).expect("write frame");
            self.stream.flush().expect("flush");
        }

        fn recv(&mut self) -> Response {
            let payload = read_frame(&mut self.reader).expect("read frame");
            decode_response(&payload).expect("decode response")
        }

        fn submit(&mut self, tenant: &str, graph: &Graph, job: BatchJob) -> Response {
            self.send(&Request::Submit {
                tenant: tenant.into(),
                graph: graph.clone(),
                job,
            });
            self.recv()
        }
    }

    /// Reads the next frame, asserting it is a report.
    fn recv_report(c: &mut RawClient) -> WireReport {
        match c.recv() {
            Response::Report(r) => r,
            other => panic!("expected a report frame, got {other:?}"),
        }
    }

    fn small_job(replicas: usize, seed: u64) -> BatchJob {
        BatchJob::uniform(fast_config(), replicas, seed)
    }

    /// A job big enough to hold a 1-worker server busy for a while
    /// (hundreds of ms), so queue-position assertions are robust.
    fn big_job(seed: u64) -> BatchJob {
        BatchJob::uniform(fast_config(), 16, seed)
    }

    #[test]
    fn submit_streams_a_report_with_matching_hash() {
        let server = test_server(WireConfig::default());
        let g = generators::kings_graph(4, 4);
        let mut c = RawClient::connect(server.local_addr());
        let resp = c.submit("t0", &g, small_job(4, 7));
        let Response::Submitted { job_id } = resp else {
            panic!("expected Submitted, got {resp:?}");
        };
        let report = recv_report(&mut c);
        assert_eq!(report.job_id, job_id);
        assert_eq!(report.graph_hash, msropm_graph::graph_hash(&g));
        assert_eq!(report.ranked.len(), 4);
        // Conflict counts are verifiable client-side from the coloring.
        for lane in &report.ranked {
            assert_eq!(proto::verify_lane(&g, lane), Some(lane.conflicts));
        }
        server.shutdown();
    }

    #[test]
    fn tenant_at_inflight_cap_is_rejected_while_others_proceed() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
            },
            max_inflight_jobs: 1,
            max_queued_lanes: 64,
            max_connections: 8,
        });
        let g = generators::kings_graph(6, 6);
        let mut greedy = RawClient::connect(server.local_addr());
        let mut other = RawClient::connect(server.local_addr());

        // Greedy's first job occupies its whole in-flight quota.
        let Response::Submitted { job_id: first } = greedy.submit("greedy", &g, big_job(1)) else {
            panic!("first submit must be admitted");
        };
        // Second submit: typed quota rejection (jobs stay in flight for
        // at least the service time of the first).
        match greedy.submit("greedy", &g, small_job(2, 2)) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::QuotaInFlight),
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // A different tenant is unaffected.
        match other.submit("modest", &g, small_job(2, 3)) {
            Response::Submitted { .. } => {}
            other => panic!("other tenant must be admitted, got {other:?}"),
        }
        // After the first job completes, greedy can submit again.
        loop {
            match greedy.recv() {
                Response::Report(r) if r.job_id == first => break,
                Response::Report(_) => {}
                other => panic!("unexpected frame {other:?}"),
            }
        }
        match greedy.submit("greedy", &g, small_job(2, 4)) {
            Response::Submitted { .. } => {}
            other => panic!("quota must free after completion, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn lane_quota_counts_lanes_not_jobs() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
            },
            max_inflight_jobs: 10,
            max_queued_lanes: 20,
            max_connections: 8,
        });
        let g = generators::kings_graph(6, 6);
        let mut c = RawClient::connect(server.local_addr());
        // 16 lanes admitted; 16 + 8 > 20 rejected on the lane axis.
        let Response::Submitted { .. } = c.submit("t", &g, big_job(1)) else {
            panic!("16-lane job fits the 20-lane cap");
        };
        match c.submit("t", &g, small_job(8, 2)) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::QuotaLanes),
            other => panic!("expected lane-quota rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn cancelled_queued_job_never_reports() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
            },
            ..WireConfig::default()
        });
        let g = generators::kings_graph(6, 6);
        let mut c = RawClient::connect(server.local_addr());
        // Job A occupies the single worker; job B sits in the queue.
        let Response::Submitted { job_id: a } = c.submit("t", &g, big_job(1)) else {
            panic!("submit A");
        };
        let Response::Submitted { job_id: b } = c.submit("t", &g, small_job(4, 2)) else {
            panic!("submit B");
        };
        c.send(&Request::Cancel {
            tenant: "t".into(),
            job_id: b,
        });
        match c.recv() {
            Response::CancelReply { job_id, .. } => assert_eq!(job_id, b),
            other => panic!("expected CancelReply, got {other:?}"),
        }
        // Exactly one report arrives: A's. B is observed cancelled at
        // pickup and the server then goes idle.
        let report = recv_report(&mut c);
        assert_eq!(report.job_id, a);
        // B settles in Cancelled (poll; the worker pops it right after A).
        let mut state = JobState::Queued;
        for _ in 0..200 {
            c.send(&Request::Status {
                tenant: "t".into(),
                job_id: b,
            });
            match c.recv() {
                Response::StatusReply { state: s, .. } => state = s,
                other => panic!("unexpected frame {other:?}"),
            }
            if state == JobState::Cancelled {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(state, JobState::Cancelled);
        // Drain: the server streamed exactly one report.
        server.shutdown();
        // (shutdown consumed the server; reports_streamed checked via a
        // fresh scope in the test below.)
    }

    #[test]
    fn cancel_is_tenant_scoped_and_status_answers_unknown_ids() {
        let server = test_server(WireConfig::default());
        let g = generators::kings_graph(4, 4);
        let mut owner = RawClient::connect(server.local_addr());
        let mut thief = RawClient::connect(server.local_addr());
        let Response::Submitted { job_id } = owner.submit("owner", &g, small_job(2, 1)) else {
            panic!("submit");
        };
        thief.send(&Request::Cancel {
            tenant: "thief".into(),
            job_id,
        });
        match thief.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Forbidden),
            other => panic!("expected Forbidden, got {other:?}"),
        }
        thief.send(&Request::Status {
            tenant: "thief".into(),
            job_id: 999_999,
        });
        match thief.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
            other => panic!("expected UnknownJob, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_do_not_kill_the_connection() {
        let server = test_server(WireConfig::default());
        let mut c = RawClient::connect(server.local_addr());
        // Well-framed garbage: unknown verb byte.
        write_frame(&mut c.stream, &[0x55, 1, 2, 3]).unwrap();
        c.stream.flush().unwrap();
        match c.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVerb),
            other => panic!("expected UnsupportedVerb, got {other:?}"),
        }
        // Well-framed truncated submit body: Malformed, still alive.
        write_frame(&mut c.stream, &[0x01, 0xFF]).unwrap();
        c.stream.flush().unwrap();
        match c.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // The connection still serves real requests afterwards.
        c.send(&Request::Stats);
        match c.recv() {
            Response::StatsReply(_) => {}
            other => panic!("expected StatsReply, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn stats_count_completed_and_cancelled_jobs() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
            },
            ..WireConfig::default()
        });
        let g = generators::kings_graph(5, 5);
        let mut c = RawClient::connect(server.local_addr());
        let Response::Submitted { job_id: a } = c.submit("t", &g, big_job(1)) else {
            panic!("submit A");
        };
        let Response::Submitted { job_id: b } = c.submit("t", &g, small_job(2, 2)) else {
            panic!("submit B");
        };
        c.send(&Request::Cancel {
            tenant: "t".into(),
            job_id: b,
        });
        let Response::CancelReply { .. } = c.recv() else {
            panic!("cancel reply");
        };
        let report = recv_report(&mut c);
        assert_eq!(report.job_id, a);
        // Poll stats until the cancelled job has been observed.
        let mut stats = WireStats::default();
        for _ in 0..200 {
            c.send(&Request::Stats);
            match c.recv() {
                Response::StatsReply(s) => stats = s,
                other => panic!("unexpected frame {other:?}"),
            }
            if stats.jobs_cancelled >= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.jobs_cancelled, 1);
        assert_eq!(server.stats().jobs_completed, 1);
        assert_eq!(server.reports_streamed(), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submits_but_drains_inflight_reports() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
            },
            ..WireConfig::default()
        });
        let g = generators::kings_graph(5, 5);
        let mut c = RawClient::connect(server.local_addr());
        let Response::Submitted { job_id } = c.submit("t", &g, big_job(3)) else {
            panic!("submit");
        };
        // Drain in a background thread while the client is still
        // attached; the in-flight job's report must arrive first.
        let drainer = thread::spawn(move || server.shutdown());
        let report = loop {
            match c.recv() {
                Response::Report(r) => break r,
                Response::Error { .. } => continue,
                other => panic!("unexpected frame {other:?}"),
            }
        };
        assert_eq!(report.job_id, job_id);
        drainer.join().expect("drain completes");
    }
}
