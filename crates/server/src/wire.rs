//! Thread-per-connection TCP front end for the job server.
//!
//! This is the PR 4 "socket protocol over `JobServer::submit`" rung,
//! refactored: everything transport-agnostic — per-tenant quotas, the
//! job registry, admission, drain — now lives in [`crate::session`]
//! and is shared with the epoll-based [`crate::reactor`] front end.
//! What remains here is the legacy *transport*: a blocking
//! [`std::net::TcpListener`] acceptor plus reader/writer threads per
//! connection. It stays the default for small deployments (simple
//! blocking I/O, per-connection backpressure for free); the reactor is
//! the shape for thousands of mostly idle connections.
//!
//! # Connection model
//!
//! Each accepted connection gets a reader thread (parses request
//! frames, answers control verbs inline) and a writer thread draining a
//! FIFO channel of encoded frames — so a slow solve never blocks
//! `status`/`cancel` on the same connection, and report frames from
//! many in-flight jobs interleave safely with verb replies. Job
//! completions are delivered by the **worker thread** through the
//! session's completion hook (quota slot released first, then the
//! encoded report frame is pushed into the connection's writer
//! channel); the per-job waiter threads of PR 4 are gone.
//!
//! # Shutdown
//!
//! [`WireServer::shutdown`] drains gracefully: new submits are rejected
//! with the typed [`crate::proto::ErrorCode::Draining`] error (on *all*
//! connections, before admission — late-arriving submits cannot race
//! the accept-stop), the acceptor stops, every in-flight job runs to
//! its terminal state, all pending report frames are flushed to their
//! connections, and only then are connections and the worker pool torn
//! down.

use crate::proto::{self, ErrorCode, FrontendKind, ProtoError, Request, Response, WireStats};
use crate::session::{DeliverFn, ProblemSubmission, SessionCore};
use crate::{faultinject, lock_unpoisoned};
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

pub use crate::session::WireConfig;

/// The thread-per-connection TCP front end; see the module docs.
pub struct WireServer {
    core: Arc<SessionCore>,
    local_addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
    connections: ConnectionList,
    down: bool,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor; the backing worker pool boots immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: WireConfig) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept + poll keeps shutdown portable (no
        // self-connect tricks): the loop notices the drain flag within
        // one poll interval.
        listener.set_nonblocking(true)?;
        let core = SessionCore::new(config, FrontendKind::Threads);
        let connections = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let core = Arc::clone(&core);
            let connections = Arc::clone(&connections);
            thread::Builder::new()
                .name("msropm-wire-accept".into())
                .spawn(move || accept_loop(&listener, &core, &connections))
                .expect("spawn acceptor")
        };
        Ok(WireServer {
            core,
            local_addr,
            accept: Some(accept),
            connections,
            down: false,
        })
    }

    /// The bound address (reports the ephemeral port after `bind(":0")`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current server-wide counters (the `stats` verb's payload).
    pub fn stats(&self) -> WireStats {
        self.core.wire_stats()
    }

    /// Report frames actually handed to a connection writer.
    pub fn reports_streamed(&self) -> u64 {
        self.core.reports_streamed()
    }

    /// Graceful drain: rejects new submits, stops accepting, lets every
    /// in-flight job reach a terminal state, flushes pending report
    /// frames, then closes connections and the worker pool.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.core.begin_drain();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Wait for every admitted job to reach a terminal state — at
        // that point each completion hook has run and pushed its report
        // frame into a connection's writer channel (the hook holds its
        // own sender clone, so a frame sent before the clone drops is
        // always flushed by the writer).
        self.core.await_drained();
        // Closing the read side ends each reader loop; readers drop
        // their writer senders, writers flush the queued frames (reports
        // included) and exit.
        let mut conns = lock_unpoisoned(&self.connections);
        for (stream, _) in conns.iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        for (_, handle) in conns.drain(..) {
            let _ = handle.join();
        }
        // The JobServer itself drains and joins its workers when the
        // last Arc<SessionCore> drops.
    }
}

impl Drop for WireServer {
    /// Dropping the front end performs the same graceful drain as
    /// [`WireServer::shutdown`].
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

type ConnectionList = Arc<Mutex<Vec<(TcpStream, thread::JoinHandle<()>)>>>;

/// Reaps entries whose handler thread has exited: joins the (finished)
/// thread and drops the retained stream clone, releasing its fd. Called
/// from the accept loop so a daemon serving churning short-lived
/// connections never accumulates dead sockets.
fn sweep_connections(connections: &ConnectionList) {
    let mut conns = lock_unpoisoned(connections);
    let mut i = 0;
    while i < conns.len() {
        if conns[i].1.is_finished() {
            let (_stream, handle) = conns.swap_remove(i);
            let _ = handle.join();
        } else {
            i += 1;
        }
    }
}

fn accept_loop(listener: &TcpListener, core: &Arc<SessionCore>, connections: &ConnectionList) {
    loop {
        if core.is_draining() {
            return;
        }
        sweep_connections(connections);
        match listener.accept() {
            Ok((stream, _peer)) => {
                if core.at_connection_cap() {
                    // Over the cap: one typed error frame, then close.
                    let mut w = BufWriter::new(&stream);
                    let frame = proto::encode_response(&Response::Error {
                        code: ErrorCode::Busy,
                        message: "connection cap reached".into(),
                    });
                    let _ = proto::write_frame(&mut w, &frame);
                    let _ = w.flush();
                    continue;
                }
                stream.set_nonblocking(false).expect("stream mode");
                let _ = stream.set_nodelay(true);
                let reader_stream = match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                core.connection_opened();
                let core2 = Arc::clone(core);
                let handle = thread::Builder::new()
                    .name("msropm-wire-conn".into())
                    .spawn(move || {
                        connection_loop(reader_stream, &core2);
                        core2.connection_closed();
                    })
                    .expect("spawn connection thread");
                lock_unpoisoned(connections).push((stream, handle));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// The connection writer's socket, with the fault-injection write
/// points applied: writes are capped while short-writes is armed
/// (exercising partial-write handling in the `BufWriter` above), and a
/// fired sever countdown shuts the whole connection down mid-frame —
/// an abrupt server-side disconnect as the client sees it. Both checks
/// are single relaxed atomic loads when disarmed.
struct FaultStream(TcpStream);

impl io::Write for FaultStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if faultinject::should_sever_write() {
            let _ = self.0.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "fault injection: write severed",
            ));
        }
        let cap = faultinject::short_write_cap(buf.len());
        self.0.write(&buf[..cap])
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

/// Runs one connection: parse frames, answer verbs, submit jobs with a
/// writer-channel deliver hook. Returns when the peer closes, the
/// framing desyncs, or shutdown closes the read side.
fn connection_loop(stream: TcpStream, core: &Arc<SessionCore>) {
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer = thread::Builder::new()
        .name("msropm-wire-writer".into())
        .spawn(move || {
            let mut out = BufWriter::new(FaultStream(write_stream));
            while let Ok(frame) = rx.recv() {
                if proto::write_frame(&mut out, &frame).is_err() || out.flush().is_err() {
                    // Peer gone: drain silently so senders never block.
                    for _ in rx.iter() {}
                    return;
                }
            }
        })
        .expect("spawn writer thread");

    let mut reader = BufReader::new(stream);
    loop {
        let payload = match proto::read_frame(&mut reader) {
            Ok(p) => p,
            Err(e) => {
                if !proto::is_clean_close(&e) {
                    send(
                        &tx,
                        &Response::Error {
                            code: ErrorCode::Malformed,
                            message: e.to_string(),
                        },
                    );
                }
                break;
            }
        };
        match proto::decode_request(&payload) {
            Ok(Request::Submit {
                tenant,
                graph,
                job,
                deadline_ms,
            }) => {
                let tx2 = tx.clone();
                let deliver: DeliverFn = Box::new(move |core, _job_id, frame| {
                    if let Some(frame) = frame {
                        let is_report = proto::is_report_frame(&frame);
                        if tx2.send(frame).is_ok() && is_report {
                            core.note_report_streamed();
                        }
                    }
                });
                let resp = core.submit_blocking(tenant, graph, job, deadline_ms, deliver);
                send(&tx, &resp);
            }
            Ok(Request::SubmitProblem {
                tenant,
                spec,
                config,
                replicas,
                seed,
                deadline_ms,
            }) => {
                let tx2 = tx.clone();
                let deliver: DeliverFn = Box::new(move |core, _job_id, frame| {
                    if let Some(frame) = frame {
                        let is_report = proto::is_report_frame(&frame);
                        if tx2.send(frame).is_ok() && is_report {
                            core.note_report_streamed();
                        }
                    }
                });
                let resp = core.submit_problem_blocking(
                    ProblemSubmission {
                        tenant,
                        spec,
                        config,
                        replicas,
                        seed,
                        deadline_ms,
                    },
                    deliver,
                );
                send(&tx, &resp);
            }
            Ok(req) => {
                let resp = core
                    .handle_control(&req)
                    .expect("non-submit requests are control verbs");
                send(&tx, &resp);
            }
            Err(ProtoError::BadTag(t)) => send(
                &tx,
                &Response::Error {
                    code: ErrorCode::UnsupportedVerb,
                    message: format!("unknown frame type 0x{t:02X}"),
                },
            ),
            Err(e) => send(
                &tx,
                &Response::Error {
                    code: ErrorCode::Malformed,
                    message: e.to_string(),
                },
            ),
        }
    }
    drop(tx);
    let _ = writer.join();
}

fn send(tx: &mpsc::Sender<Vec<u8>>, resp: &Response) {
    let _ = tx.send(proto::encode_response(resp));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{decode_response, encode_request, read_frame, write_frame, WireReport};
    use crate::{JobState, ServerConfig};
    use msropm_core::{BatchJob, MsropmConfig};
    use msropm_graph::{generators, Graph};
    use std::io::Write;

    fn fast_config() -> MsropmConfig {
        MsropmConfig {
            dt: 0.02,
            ..MsropmConfig::paper_default()
        }
    }

    fn test_server(config: WireConfig) -> WireServer {
        WireServer::bind("127.0.0.1:0", config).expect("bind ephemeral port")
    }

    /// Minimal blocking test client speaking raw frames.
    struct RawClient {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl RawClient {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            RawClient { stream, reader }
        }

        fn send(&mut self, req: &Request) {
            let payload = encode_request(req);
            write_frame(&mut self.stream, &payload).expect("write frame");
            self.stream.flush().expect("flush");
        }

        fn recv(&mut self) -> Response {
            let payload = read_frame(&mut self.reader).expect("read frame");
            decode_response(&payload).expect("decode response")
        }

        fn submit(&mut self, tenant: &str, graph: &Graph, job: BatchJob) -> Response {
            self.send(&Request::Submit {
                tenant: tenant.into(),
                graph: graph.clone(),
                job,
                deadline_ms: 0,
            });
            self.recv()
        }
    }

    /// Reads frames until a report arrives (Submitted replies may be
    /// reordered behind an instantly completing job's report now that
    /// workers deliver frames directly).
    fn recv_report(c: &mut RawClient) -> WireReport {
        loop {
            match c.recv() {
                Response::Report(r) => return r,
                Response::Submitted { .. } => {}
                other => panic!("expected a report frame, got {other:?}"),
            }
        }
    }

    fn small_job(replicas: usize, seed: u64) -> BatchJob {
        BatchJob::uniform(fast_config(), replicas, seed)
    }

    /// A job big enough to hold a 1-worker server busy for a while
    /// (hundreds of ms), so queue-position assertions are robust.
    fn big_job(seed: u64) -> BatchJob {
        BatchJob::uniform(fast_config(), 16, seed)
    }

    #[test]
    fn submit_streams_a_report_with_matching_hash() {
        let server = test_server(WireConfig::default());
        let g = generators::kings_graph(4, 4);
        let mut c = RawClient::connect(server.local_addr());
        let resp = c.submit("t0", &g, small_job(4, 7));
        let Response::Submitted { job_id } = resp else {
            panic!("expected Submitted, got {resp:?}");
        };
        let report = recv_report(&mut c);
        assert_eq!(report.job_id, job_id);
        assert_eq!(report.graph_hash, msropm_graph::graph_hash(&g));
        assert_eq!(report.ranked.len(), 4);
        // Conflict counts are verifiable client-side from the coloring.
        for lane in &report.ranked {
            assert_eq!(proto::verify_lane(&g, lane), Some(lane.conflicts));
        }
        server.shutdown();
    }

    #[test]
    fn tenant_at_inflight_cap_is_rejected_while_others_proceed() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
                ..ServerConfig::default()
            },
            max_inflight_jobs: 1,
            max_queued_lanes: 64,
            max_connections: 8,
        });
        let g = generators::kings_graph(6, 6);
        let mut greedy = RawClient::connect(server.local_addr());
        let mut other = RawClient::connect(server.local_addr());

        // Greedy's first job occupies its whole in-flight quota.
        let Response::Submitted { job_id: first } = greedy.submit("greedy", &g, big_job(1)) else {
            panic!("first submit must be admitted");
        };
        // Second submit: typed quota rejection (jobs stay in flight for
        // at least the service time of the first).
        match greedy.submit("greedy", &g, small_job(2, 2)) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::QuotaInFlight),
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // A different tenant is unaffected.
        match other.submit("modest", &g, small_job(2, 3)) {
            Response::Submitted { .. } => {}
            other => panic!("other tenant must be admitted, got {other:?}"),
        }
        // After the first job completes, greedy can submit again.
        loop {
            match greedy.recv() {
                Response::Report(r) if r.job_id == first => break,
                Response::Report(_) => {}
                other => panic!("unexpected frame {other:?}"),
            }
        }
        match greedy.submit("greedy", &g, small_job(2, 4)) {
            Response::Submitted { .. } => {}
            other => panic!("quota must free after completion, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn lane_quota_counts_lanes_not_jobs() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
                ..ServerConfig::default()
            },
            max_inflight_jobs: 10,
            max_queued_lanes: 20,
            max_connections: 8,
        });
        let g = generators::kings_graph(6, 6);
        let mut c = RawClient::connect(server.local_addr());
        // 16 lanes admitted; 16 + 8 > 20 rejected on the lane axis.
        let Response::Submitted { .. } = c.submit("t", &g, big_job(1)) else {
            panic!("16-lane job fits the 20-lane cap");
        };
        match c.submit("t", &g, small_job(8, 2)) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::QuotaLanes),
            other => panic!("expected lane-quota rejection, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn cancelled_queued_job_never_reports() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
                ..ServerConfig::default()
            },
            ..WireConfig::default()
        });
        let g = generators::kings_graph(6, 6);
        let mut c = RawClient::connect(server.local_addr());
        // Job A occupies the single worker; job B sits in the queue.
        let Response::Submitted { job_id: a } = c.submit("t", &g, big_job(1)) else {
            panic!("submit A");
        };
        let Response::Submitted { job_id: b } = c.submit("t", &g, small_job(4, 2)) else {
            panic!("submit B");
        };
        c.send(&Request::Cancel {
            tenant: "t".into(),
            job_id: b,
        });
        match c.recv() {
            Response::CancelReply { job_id, .. } => assert_eq!(job_id, b),
            other => panic!("expected CancelReply, got {other:?}"),
        }
        // Exactly one report arrives: A's. B is observed cancelled at
        // pickup and the server then goes idle.
        let report = recv_report(&mut c);
        assert_eq!(report.job_id, a);
        // B settles in Cancelled (poll; the worker pops it right after A).
        let mut state = JobState::Queued;
        for _ in 0..200 {
            c.send(&Request::Status {
                tenant: "t".into(),
                job_id: b,
            });
            match c.recv() {
                Response::StatusReply { state: s, .. } => state = s,
                other => panic!("unexpected frame {other:?}"),
            }
            if state == JobState::Cancelled {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(state, JobState::Cancelled);
        // Drain: the server streamed exactly one report.
        server.shutdown();
    }

    #[test]
    fn cancel_is_tenant_scoped_and_status_answers_unknown_ids() {
        let server = test_server(WireConfig::default());
        let g = generators::kings_graph(4, 4);
        let mut owner = RawClient::connect(server.local_addr());
        let mut thief = RawClient::connect(server.local_addr());
        let Response::Submitted { job_id } = owner.submit("owner", &g, small_job(2, 1)) else {
            panic!("submit");
        };
        thief.send(&Request::Cancel {
            tenant: "thief".into(),
            job_id,
        });
        match thief.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Forbidden),
            other => panic!("expected Forbidden, got {other:?}"),
        }
        thief.send(&Request::Status {
            tenant: "thief".into(),
            job_id: 999_999,
        });
        match thief.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownJob),
            other => panic!("expected UnknownJob, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_typed_errors_and_do_not_kill_the_connection() {
        let server = test_server(WireConfig::default());
        let mut c = RawClient::connect(server.local_addr());
        // Well-framed garbage: unknown verb byte.
        write_frame(&mut c.stream, &[0x55, 1, 2, 3]).unwrap();
        c.stream.flush().unwrap();
        match c.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVerb),
            other => panic!("expected UnsupportedVerb, got {other:?}"),
        }
        // Well-framed truncated submit body: Malformed, still alive.
        write_frame(&mut c.stream, &[0x01, 0xFF]).unwrap();
        c.stream.flush().unwrap();
        match c.recv() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected Malformed, got {other:?}"),
        }
        // The connection still serves real requests afterwards.
        c.send(&Request::Stats);
        match c.recv() {
            Response::StatsReply(s) => assert_eq!(s.frontend, FrontendKind::Threads),
            other => panic!("expected StatsReply, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn stats_count_completed_cancelled_and_connections() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
                ..ServerConfig::default()
            },
            ..WireConfig::default()
        });
        let g = generators::kings_graph(5, 5);
        let mut c = RawClient::connect(server.local_addr());
        let Response::Submitted { job_id: a } = c.submit("t", &g, big_job(1)) else {
            panic!("submit A");
        };
        let Response::Submitted { job_id: b } = c.submit("t", &g, small_job(2, 2)) else {
            panic!("submit B");
        };
        c.send(&Request::Cancel {
            tenant: "t".into(),
            job_id: b,
        });
        let Response::CancelReply { .. } = c.recv() else {
            panic!("cancel reply");
        };
        let report = recv_report(&mut c);
        assert_eq!(report.job_id, a);
        // Poll stats until the cancelled job has been observed.
        let mut stats = WireStats::default();
        for _ in 0..200 {
            c.send(&Request::Stats);
            match c.recv() {
                Response::StatsReply(s) => stats = s,
                other => panic!("unexpected frame {other:?}"),
            }
            if stats.jobs_cancelled >= 1 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.jobs_cancelled, 1);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.frontend, FrontendKind::Threads);
        assert_eq!(server.stats().jobs_completed, 1);
        assert_eq!(server.reports_streamed(), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submits_with_draining_but_drains_inflight_reports() {
        let server = test_server(WireConfig {
            server: ServerConfig {
                workers: 1,
                queue_capacity: 8,
                cache_capacity: 4,
                ..ServerConfig::default()
            },
            ..WireConfig::default()
        });
        // A job long enough (~seconds on one worker) that the drain
        // window below is wide open when the late submit lands.
        let g = generators::kings_graph(10, 10);
        let mut c = RawClient::connect(server.local_addr());
        let Response::Submitted { job_id } = c.submit("t", &g, small_job(32, 3)) else {
            panic!("submit");
        };
        // Drain in a background thread while the client is still
        // attached; a late submit on this live connection must get the
        // typed Draining rejection (not an admission, not a hard
        // disconnect), and the in-flight job's report must still arrive.
        let drainer = thread::spawn(move || server.shutdown());
        thread::sleep(Duration::from_millis(100));
        match c.submit("t", &g, small_job(2, 99)) {
            Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Draining, "drain rejections are typed")
            }
            other => panic!("expected Draining rejection, got {other:?}"),
        }
        let report = recv_report(&mut c);
        assert_eq!(report.job_id, job_id);
        drainer.join().expect("drain completes");
    }
}
