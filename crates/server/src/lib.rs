//! # msropm-server — async batch-solve job service
//!
//! The paper's Potts machine is a throughput device: many independent
//! annealing replicas answering coloring/max-cut queries. This crate
//! wraps the workspace's batch solver
//! ([`msropm_core::Msropm::solve_batch_lanes`]-family) as the unit of
//! work behind a request interface, in the spirit of the ASIC-emulated
//! accelerator framing where the oscillator fabric sits behind a job
//! queue:
//!
//! - a **bounded MPMC job queue** ([`queue::BoundedQueue`]) admits
//!   requests and applies backpressure once full;
//! - **N worker threads** drain it, each owning a long-lived
//!   [`msropm_core::BatchArena`] so back-to-back jobs reuse the
//!   integrator scratch and state buffers instead of reallocating;
//! - a shared **problem cache** ([`msropm_core::ProblemCache`], keyed by
//!   [`msropm_graph::io::graph_hash`] + config fingerprint) interns
//!   compiled machines, so repeat topologies skip network/schedule
//!   recompilation entirely;
//! - each job returns a **ranked lane report**
//!   ([`msropm_core::JobReport`]) through a per-job completion channel
//!   ([`JobTicket`]), annotated with queue/service timing.
//!
//! ## Determinism
//!
//! A job is executed by exactly one worker, single-threaded, and
//! `BatchJob::run` is a pure function of `(graph, job)` — so the same
//! job + seed produces a **bit-identical** report whether the server
//! runs 1 worker or 40, hot cache or cold, fresh arena or reused
//! (property-tested in `tests/determinism.rs`). Only completion *order*
//! across different jobs depends on scheduling.
//!
//! ## Example: submit → await → ranked report
//!
//! ```
//! use std::sync::Arc;
//! use msropm_core::{BatchJob, MsropmConfig, SweepParam, SweepSpec};
//! use msropm_graph::generators;
//! use msropm_server::{JobServer, ServerConfig};
//!
//! let server = JobServer::start(ServerConfig {
//!     workers: 2,
//!     queue_capacity: 8,
//!     cache_capacity: 16,
//!     ..ServerConfig::default()
//! });
//!
//! // One tenant's operating point: a 4-lane (K, σ) sweep on a 3×3
//! // King's graph (dt coarsened to keep the example fast).
//! let graph = Arc::new(generators::kings_graph(3, 3));
//! let config = MsropmConfig { dt: 0.02, ..MsropmConfig::paper_default() };
//! let sweep = SweepSpec::new()
//!     .grid(SweepParam::CouplingStrength, vec![0.8, 1.0])
//!     .grid(SweepParam::Noise, vec![0.1, 0.2]);
//! let job = BatchJob::from_sweep(config, &sweep, 42);
//!
//! let ticket = server.submit(Arc::clone(&graph), job).expect("queue open");
//! let outcome = ticket.wait().expect("job completed");
//!
//! // Lanes come back best-first; the report is bit-reproducible.
//! let report = &outcome.report;
//! assert_eq!(report.ranked.len(), 4);
//! assert!(report.best().conflicts <= report.ranked[3].conflicts);
//! assert_eq!(report.graph_hash, msropm_graph::graph_hash(&graph));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faultinject;
pub mod http;
pub mod proto;
pub mod queue;
pub mod reactor;
pub(crate) mod session;
pub mod stats;
pub mod wire;

use msropm_core::{
    num_cores, BatchJob, CacheStats, CancelToken, JobReport, KernelBackend, ProblemCache,
    ShardedArena,
};
use msropm_graph::Graph;
use queue::BoundedQueue;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Locks `m`, recovering the guard from a poisoned mutex instead of
/// panicking. Every lock in this crate's serving paths goes through
/// here: completion hooks fire from `Drop` during a worker panic's
/// unwind, so a poison-propagating `expect` there would turn one
/// injected fault into a double panic (process abort). The protected
/// invariants are all exception-safe single operations (`VecDeque` /
/// `HashMap` mutations that complete or don't), so the recovered state
/// is always consistent.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How wide each job's solve shards across the process-wide
/// [`msropm_core::pool`] (intra-job lane parallelism). Reports are
/// **bit-identical** at every width — the policy trades latency against
/// cross-job throughput, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Adapt per job from queue depth: an idle server gives the lone
    /// job every core (lowest latency); a deep backlog narrows each job
    /// toward one shard so cross-job concurrency carries the
    /// throughput.
    #[default]
    Auto,
    /// Every job runs exactly this many shards (clamped to its lane
    /// count). `Fixed(1)` disables intra-job parallelism outright.
    Fixed(usize),
}

impl ShardPolicy {
    /// Resolves the shard width for one job of `lanes` lanes with
    /// `backlog` jobs waiting behind it.
    fn width(self, lanes: usize, backlog: usize) -> usize {
        let want = match self {
            ShardPolicy::Fixed(n) => n.max(1),
            ShardPolicy::Auto => (num_cores() / (backlog + 1)).max(1),
        };
        want.min(lanes.max(1))
    }
}

/// Sizing knobs of a [`JobServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads draining the queue (each owns a solve arena).
    pub workers: usize,
    /// Jobs admitted to the queue before `submit` blocks (backpressure).
    pub queue_capacity: usize,
    /// Compiled machines the problem cache retains (LRU beyond this).
    pub cache_capacity: usize,
    /// Intra-job shard width policy (see [`ShardPolicy`]).
    pub shards: ShardPolicy,
    /// When set, every accepted job is forced onto this kernel backend
    /// (base config and all lanes — see
    /// [`msropm_core::BatchJob::force_backend`]) before it reaches the
    /// problem cache. `None` honours whatever backend each job asks
    /// for. This is the `msropm_serve --backend` knob: one flag pins
    /// the whole deployment to e.g. the fixed-point kernel.
    pub backend: Option<KernelBackend>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 32,
            shards: ShardPolicy::Auto,
            backend: None,
        }
    }
}

/// Queue/service timing of one completed job, measured by the server.
#[derive(Debug, Clone, Copy)]
pub struct JobTiming {
    /// Submit → a worker picked the job up.
    pub queued: Duration,
    /// Pick-up → report ready (cache lookup/compile + solve + ranking).
    pub service: Duration,
}

impl JobTiming {
    /// End-to-end latency: `queued + service`.
    pub fn total(&self) -> Duration {
        self.queued + self.service
    }
}

/// A completed job: the ranked report plus server-side timing.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The ranked lane report (bit-deterministic; see the crate docs).
    pub report: JobReport,
    /// Where the job spent its latency.
    pub timing: JobTiming,
}

/// Errors surfaced to submitters.
#[derive(Debug)]
pub enum ServerError {
    /// The server is shutting down; the job was not enqueued.
    Closed,
    /// The worker executing the job died before replying — it panicked
    /// outside the supervised solve region, or the server tore down
    /// with the job still queued. The supervisor respawns the worker;
    /// the job itself is lost.
    WorkerDied,
    /// The solve panicked; the panic was caught ([`std::panic::catch_unwind`])
    /// and the worker lives on.
    Failed {
        /// The panic payload, best-effort stringified.
        message: String,
    },
    /// The job's deadline expired before it produced a report — shed in
    /// the queue or abandoned at a stage boundary.
    DeadlineExceeded,
    /// The job was cancelled before producing a report (see
    /// [`msropm_core::CancelToken`]); no report exists for it.
    Cancelled,
    /// [`JobTicket::wait_timeout`] elapsed with the job still running;
    /// the ticket is returned for a later retry.
    Timeout(JobTicket),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Closed => write!(f, "job server is shut down"),
            ServerError::WorkerDied => write!(f, "worker died before completing the job"),
            ServerError::Failed { message } => write!(f, "job failed: {message}"),
            ServerError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            ServerError::Cancelled => write!(f, "job was cancelled before completing"),
            ServerError::Timeout(_) => write!(f, "timed out waiting for the job"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Lifecycle of one submitted job, observable through
/// [`JobHandle::state`] (and the wire protocol's `status` verb).
///
/// Transitions are monotone:
/// `Queued → Running → {Done, Cancelled, Failed}`, with
/// `Queued → Cancelled` when a cancel lands before pickup and
/// `Queued → Failed` when a deadline expires before pickup. `Failed`
/// covers every non-cancel way a job dies without a report: the solve
/// panicked (caught, worker lives), the deadline expired, or the
/// executing worker thread died. Cancellation is cooperative — a
/// `cancel()` is *observed* by the worker at pickup or at a stage
/// boundary, so a cancelled job may report `Queued`/`Running` for a
/// short while before settling in `Cancelled`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum JobState {
    /// Submitted, not yet picked up by a worker.
    Queued = 0,
    /// A worker is executing the job.
    Running = 1,
    /// Completed; a report was produced.
    Done = 2,
    /// Cancelled before producing a report.
    Cancelled = 3,
    /// Died without a report: panicking solve, expired deadline, or
    /// dead worker.
    Failed = 4,
}

impl JobState {
    /// Inverse of `self as u8` (for wire decoding).
    pub fn from_u8(b: u8) -> Option<JobState> {
        match b {
            0 => Some(JobState::Queued),
            1 => Some(JobState::Running),
            2 => Some(JobState::Done),
            3 => Some(JobState::Cancelled),
            4 => Some(JobState::Failed),
            _ => None,
        }
    }

    /// `true` for the states a job can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// Shared, lock-free cell holding one job's [`JobState`]; written by the
/// executing worker, read by status queries.
#[derive(Debug, Default)]
pub struct JobStatusCell(AtomicU8);

impl JobStatusCell {
    /// A fresh cell in [`JobState::Queued`].
    pub fn new() -> Self {
        JobStatusCell::default()
    }

    /// Current state.
    pub fn get(&self) -> JobState {
        JobState::from_u8(self.0.load(Ordering::Acquire)).expect("cell holds a valid state")
    }

    /// Records a transition (no ordering enforcement — callers follow
    /// the monotone lifecycle documented on [`JobState`]).
    pub fn set(&self, state: JobState) {
        self.0.store(state as u8, Ordering::Release);
    }

    /// Records a transition and returns the state it replaced (the
    /// session layer uses this to tell a mid-run worker death from an
    /// envelope dropped before pickup).
    pub fn swap(&self, state: JobState) -> JobState {
        JobState::from_u8(self.0.swap(state as u8, Ordering::AcqRel))
            .expect("cell holds a valid state")
    }
}

/// Handle to one in-flight job; redeem it with [`JobTicket::wait`].
#[derive(Debug)]
pub struct JobTicket {
    rx: mpsc::Receiver<JobCompletion>,
}

impl JobTicket {
    fn settle(msg: JobCompletion) -> Result<JobOutcome, ServerError> {
        match msg {
            JobCompletion::Done(outcome) => Ok(outcome),
            JobCompletion::Cancelled => Err(ServerError::Cancelled),
            JobCompletion::Failed { message } => Err(ServerError::Failed { message }),
            JobCompletion::DeadlineExceeded => Err(ServerError::DeadlineExceeded),
            JobCompletion::WorkerDied => Err(ServerError::WorkerDied),
        }
    }

    /// Blocks until the job completes.
    ///
    /// # Errors
    ///
    /// [`ServerError::Cancelled`] if the job was cancelled,
    /// [`ServerError::Failed`] if the solve panicked (caught),
    /// [`ServerError::DeadlineExceeded`] if its deadline expired,
    /// [`ServerError::WorkerDied`] if the executing worker died.
    pub fn wait(self) -> Result<JobOutcome, ServerError> {
        match self.rx.recv() {
            Ok(msg) => Self::settle(msg),
            Err(_) => Err(ServerError::WorkerDied),
        }
    }

    /// Like [`JobTicket::wait`] with an upper bound; on timeout the
    /// ticket comes back inside [`ServerError::Timeout`] so the caller
    /// can keep waiting later.
    ///
    /// # Errors
    ///
    /// [`ServerError::Timeout`] when `dur` elapses first, otherwise as
    /// for [`JobTicket::wait`].
    pub fn wait_timeout(self, dur: Duration) -> Result<JobOutcome, ServerError> {
        match self.rx.recv_timeout(dur) {
            Ok(msg) => Self::settle(msg),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServerError::Timeout(self)),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServerError::WorkerDied),
        }
    }
}

/// Everything a submitter can do with one job: await the report, watch
/// its lifecycle, request cancellation. Returned by
/// [`JobServer::submit_handle`]; the wire front end keeps the status
/// cell and cancel token in its job registry while the ticket rides
/// with the per-job completion waiter.
#[derive(Debug)]
pub struct JobHandle {
    /// Completion channel; consume with [`JobTicket::wait`].
    pub ticket: JobTicket,
    status: Arc<JobStatusCell>,
    cancel: CancelToken,
}

impl JobHandle {
    /// The job's current lifecycle state.
    pub fn state(&self) -> JobState {
        self.status.get()
    }

    /// Shared view of the status cell (for registries outliving the
    /// ticket).
    pub fn status_cell(&self) -> Arc<JobStatusCell> {
        Arc::clone(&self.status)
    }

    /// A clone of the job's cancel token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests cooperative cancellation (observed at worker pickup or
    /// the next stage boundary).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

/// How one submitted job ended, as seen by a completion hook.
#[derive(Debug)]
pub enum JobCompletion {
    /// The job produced a report.
    Done(JobOutcome),
    /// The job was cancelled before producing a report; none exists.
    Cancelled,
    /// The solve panicked; the panic was caught and the worker lives.
    Failed {
        /// The panic payload, best-effort stringified.
        message: String,
    },
    /// The job's deadline expired before it produced a report.
    DeadlineExceeded,
    /// The executing worker died before replying (panic outside the
    /// supervised region, or teardown dropped the queued job).
    WorkerDied,
}

/// A completion callback run **on the worker thread** the moment a job
/// reaches its terminal state — the thread-free alternative to parking
/// a waiter on a [`JobTicket`]. Fires exactly once: if the envelope is
/// destroyed without a verdict (worker panic unwinding, queue dropped),
/// the hook fires [`JobCompletion::WorkerDied`] from `Drop`, so a
/// registered job can never be silently forgotten.
///
/// Hooks must be cheap and panic-free: they run inline in the worker
/// loop (the front ends use them to enqueue an already-encoded frame
/// and poke an event loop).
pub struct CompletionHook(Option<Box<dyn FnOnce(JobCompletion) + Send>>);

impl CompletionHook {
    /// Wraps `f` as a completion hook.
    pub fn new(f: impl FnOnce(JobCompletion) + Send + 'static) -> CompletionHook {
        CompletionHook(Some(Box::new(f)))
    }

    fn fire(mut self, completion: JobCompletion) {
        if let Some(f) = self.0.take() {
            f(completion);
        }
    }
}

impl Drop for CompletionHook {
    fn drop(&mut self) {
        if let Some(f) = self.0.take() {
            f(JobCompletion::WorkerDied);
        }
    }
}

impl fmt::Debug for CompletionHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompletionHook")
            .field("fired", &self.0.is_none())
            .finish()
    }
}

/// A job's completion channel: either the mpsc sender behind a
/// [`JobTicket`] or an in-place [`CompletionHook`].
enum Reply {
    Channel(mpsc::Sender<JobCompletion>),
    Hook(CompletionHook),
}

impl Reply {
    fn deliver(self, completion: JobCompletion) {
        match self {
            // The submitter may have dropped its ticket; that's fine.
            Reply::Channel(tx) => {
                let _ = tx.send(completion);
            }
            Reply::Hook(hook) => hook.fire(completion),
        }
    }
}

/// Everything needed to enqueue one hook-completed job. Returned intact
/// by [`JobServer::try_submit_job`] when the queue is full, so a
/// nonblocking front end can park it and retry; **dropping** a
/// `PendingJob` fires its hook with [`JobCompletion::WorkerDied`].
#[derive(Debug)]
pub struct PendingJob {
    graph: Arc<Graph>,
    job: BatchJob,
    /// Domain digest of the compiled problem this job solves (`0` for a
    /// plain graph submission); scopes the problem-cache slot.
    problem_fingerprint: u64,
    cancel: CancelToken,
    status: Arc<JobStatusCell>,
    deadline: Option<Instant>,
    hook: CompletionHook,
}

impl PendingJob {
    /// Bundles a job with its cancellation/status plumbing, an optional
    /// absolute deadline (expired jobs are shed at pickup or abandoned
    /// at the next stage boundary → [`JobCompletion::DeadlineExceeded`])
    /// and the hook that will observe its completion.
    pub fn new(
        graph: Arc<Graph>,
        job: BatchJob,
        cancel: CancelToken,
        status: Arc<JobStatusCell>,
        deadline: Option<Instant>,
        hook: CompletionHook,
    ) -> PendingJob {
        PendingJob {
            graph,
            job,
            problem_fingerprint: 0,
            cancel,
            status,
            deadline,
            hook,
        }
    }

    /// Scopes this job's problem-cache slot to one compiled problem
    /// (see [`msropm_core::ProblemCache::lookup_problem`]); plain graph
    /// submissions keep the default `0`.
    pub fn with_problem_fingerprint(mut self, fingerprint: u64) -> PendingJob {
        self.problem_fingerprint = fingerprint;
        self
    }

    fn into_envelope(self) -> Envelope {
        Envelope {
            graph: self.graph,
            job: self.job,
            problem_fingerprint: self.problem_fingerprint,
            submitted_at: Instant::now(),
            reply: Reply::Hook(self.hook),
            cancel: self.cancel,
            status: self.status,
            deadline: self.deadline,
        }
    }
}

/// Why [`JobServer::try_submit_job`] handed the job back.
#[derive(Debug)]
pub enum TrySubmitError {
    /// The queue is at capacity; park and retry later.
    Full(PendingJob),
    /// The server is shutting down; the job can never be enqueued.
    Closed(PendingJob),
}

/// One queued request: the job, its graph, the reply channel and the
/// submission timestamp (for queue-delay accounting), plus the
/// cancellation/status plumbing.
struct Envelope {
    graph: Arc<Graph>,
    job: BatchJob,
    problem_fingerprint: u64,
    submitted_at: Instant,
    reply: Reply,
    cancel: CancelToken,
    status: Arc<JobStatusCell>,
    deadline: Option<Instant>,
}

impl Envelope {
    /// Inverse of [`PendingJob::into_envelope`], for handing a job back
    /// to the submitter when the queue cannot take it.
    fn into_pending(self) -> PendingJob {
        PendingJob {
            graph: self.graph,
            job: self.job,
            problem_fingerprint: self.problem_fingerprint,
            cancel: self.cancel,
            status: self.status,
            deadline: self.deadline,
            hook: match self.reply {
                Reply::Hook(hook) => hook,
                Reply::Channel(_) => unreachable!("pending jobs always carry hooks"),
            },
        }
    }
}

struct Shared {
    queue: BoundedQueue<Envelope>,
    cache: Mutex<ProblemCache>,
    shard_policy: ShardPolicy,
    /// Deployment-wide kernel-backend override (see [`ServerConfig::backend`]).
    backend: Option<KernelBackend>,
    jobs_completed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_failed: AtomicU64,
    worker_restarts: AtomicU64,
    jobs_sharded: AtomicU64,
    shard_width_max: AtomicU64,
    /// Live worker handles, shared with the supervisor (which reaps
    /// finished ones and pushes their replacements).
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// How often the supervisor scans for dead workers.
const SUPERVISOR_POLL: Duration = Duration::from_millis(20);
/// Rolling window bounding the worker restart rate…
const RESTART_WINDOW: Duration = Duration::from_secs(1);
/// …to at most this many respawns per window. A panic storm (every job
/// crashing) then costs bounded spawn churn instead of a hot loop; the
/// deficit is made up on later ticks once the window rolls.
const MAX_RESTARTS_PER_WINDOW: usize = 32;

/// The multi-worker batch-solve job service; see the crate docs.
pub struct JobServer {
    shared: Arc<Shared>,
    supervisor: Option<thread::JoinHandle<()>>,
}

impl JobServer {
    /// Boots the worker pool.
    ///
    /// # Panics
    ///
    /// Panics if any sizing knob of `config` is zero.
    pub fn start(config: ServerConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            cache: Mutex::new(ProblemCache::new(config.cache_capacity)),
            shard_policy: config.shards,
            backend: config.backend,
            jobs_completed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            jobs_sharded: AtomicU64::new(0),
            shard_width_max: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let handles: Vec<_> = (0..config.workers)
            .map(|i| spawn_worker(&shared, format!("msropm-worker-{i}")))
            .collect();
        *lock_unpoisoned(&shared.workers) = handles;
        let supervisor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("msropm-supervisor".into())
                .spawn(move || supervisor_loop(&shared))
                .expect("spawn supervisor thread")
        };
        JobServer {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Enqueues `job` against `graph`, blocking while the queue is full
    /// (backpressure), and returns the completion ticket.
    ///
    /// # Errors
    ///
    /// [`ServerError::Closed`] if the server has been shut down.
    pub fn submit(&self, graph: Arc<Graph>, job: BatchJob) -> Result<JobTicket, ServerError> {
        self.submit_handle(graph, job).map(|h| h.ticket)
    }

    /// Like [`JobServer::submit`] but returning the full [`JobHandle`]
    /// (ticket + status cell + cancel token).
    ///
    /// # Errors
    ///
    /// [`ServerError::Closed`] if the server has been shut down.
    pub fn submit_handle(
        &self,
        graph: Arc<Graph>,
        job: BatchJob,
    ) -> Result<JobHandle, ServerError> {
        let cancel = CancelToken::new();
        let status = Arc::new(JobStatusCell::new());
        let ticket = self.submit_with(graph, job, cancel.clone(), Arc::clone(&status))?;
        Ok(JobHandle {
            ticket,
            status,
            cancel,
        })
    }

    /// Submission with caller-provided cancellation/status plumbing —
    /// the wire front end registers the token and cell *before*
    /// enqueueing so a `cancel`/`status` verb can never race a job it
    /// doesn't know yet.
    ///
    /// # Errors
    ///
    /// [`ServerError::Closed`] if the server has been shut down.
    pub fn submit_with(
        &self,
        graph: Arc<Graph>,
        job: BatchJob,
        cancel: CancelToken,
        status: Arc<JobStatusCell>,
    ) -> Result<JobTicket, ServerError> {
        let (tx, rx) = mpsc::channel();
        let envelope = Envelope {
            graph,
            job,
            problem_fingerprint: 0,
            submitted_at: Instant::now(),
            deadline: None,
            reply: Reply::Channel(tx),
            cancel,
            status,
        };
        self.shared
            .queue
            .push(envelope)
            .map_err(|_| ServerError::Closed)?;
        Ok(JobTicket { rx })
    }

    /// Enqueues a hook-completed job, blocking while the queue is full
    /// (backpressure). The job's [`CompletionHook`] fires on the worker
    /// thread when the job reaches a terminal state.
    ///
    /// # Errors
    ///
    /// Gives the job back untouched when the server has been shut down
    /// (dropping it then fires the hook with
    /// [`JobCompletion::WorkerDied`]).
    // The Err variant intentionally carries the whole job back — that
    // give-back is the API (park and retry); boxing it would just move
    // the allocation onto the submit hot path.
    #[allow(clippy::result_large_err)]
    pub fn submit_job(&self, pending: PendingJob) -> Result<(), PendingJob> {
        self.shared
            .queue
            .push(pending.into_envelope())
            .map_err(Envelope::into_pending)
    }

    /// Nonblocking [`JobServer::submit_job`]: never waits for queue
    /// space, handing the job back tagged with why it could not be
    /// enqueued. The reactor front end parks `Full` jobs and retries
    /// when a completion frees capacity.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Full`] or [`TrySubmitError::Closed`], both
    /// carrying the job back intact.
    #[allow(clippy::result_large_err)] // see submit_job: the give-back is the API
    pub fn try_submit_job(&self, pending: PendingJob) -> Result<(), TrySubmitError> {
        use queue::TryPushError;
        match self.shared.queue.try_push(pending.into_envelope()) {
            Ok(()) => Ok(()),
            Err(TryPushError::Full(envelope)) => Err(TrySubmitError::Full(envelope.into_pending())),
            Err(TryPushError::Closed(envelope)) => {
                Err(TrySubmitError::Closed(envelope.into_pending()))
            }
        }
    }

    /// Jobs completed since boot (all workers).
    pub fn jobs_completed(&self) -> u64 {
        self.shared.jobs_completed.load(Ordering::Relaxed)
    }

    /// Jobs observed as cancelled by a worker since boot (at pickup or a
    /// stage boundary); none of them produced a report.
    pub fn jobs_cancelled(&self) -> u64 {
        self.shared.jobs_cancelled.load(Ordering::Relaxed)
    }

    /// Jobs that died without a report since boot: caught solve panics,
    /// expired deadlines, and worker thread deaths (the last counted by
    /// the session layer via [`JobServer::count_failed_job`]).
    pub fn jobs_failed(&self) -> u64 {
        self.shared.jobs_failed.load(Ordering::Relaxed)
    }

    /// Dead workers the supervisor has respawned since boot.
    pub fn worker_restarts(&self) -> u64 {
        self.shared.worker_restarts.load(Ordering::Relaxed)
    }

    /// Jobs that ran with more than one shard since boot (intra-job
    /// parallel solves; see [`ShardPolicy`]).
    pub fn jobs_sharded(&self) -> u64 {
        self.shared.jobs_sharded.load(Ordering::Relaxed)
    }

    /// The widest shard count any job has run with since boot (0 before
    /// the first pickup).
    pub fn shard_width_max(&self) -> u64 {
        self.shared.shard_width_max.load(Ordering::Relaxed)
    }

    /// Counts one failed job observed outside the worker loop — the
    /// session's completion hook calls this when a `WorkerDied` lands
    /// for a running job (the dead worker itself can't count it).
    pub(crate) fn count_failed_job(&self) {
        self.shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Problem-cache counters (hits/misses/evictions/collisions).
    pub fn cache_stats(&self) -> CacheStats {
        lock_unpoisoned(&self.shared.cache).stats()
    }

    /// Jobs currently waiting in the queue (excluding in-flight ones).
    pub fn backlog(&self) -> usize {
        self.shared.queue.len()
    }

    /// Graceful shutdown: stops admitting jobs, lets the backlog drain,
    /// joins every worker. Tickets for already-queued jobs still
    /// complete.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        // The supervisor observes the closed queue and exits within one
        // poll tick; joining it first guarantees no respawn races the
        // worker joins below.
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let current = thread::current().id();
        let handles: Vec<_> = lock_unpoisoned(&self.shared.workers).drain(..).collect();
        for handle in handles {
            // A worker thread can itself run this teardown: its
            // completion hook may hold the last strong reference to the
            // session owning this pool, making the worker the thread
            // that drops it. Joining itself would deadlock (EDEADLK) —
            // detach instead; the thread exits right after this drop.
            if handle.thread().id() == current {
                continue;
            }
            // A panicked worker already surfaced through its job's
            // ticket or hook; don't double-panic here.
            let _ = handle.join();
        }
    }
}

impl Drop for JobServer {
    /// Dropping the server performs the same graceful shutdown as
    /// [`JobServer::shutdown`].
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Either serving front end behind one handle — the shared dispatch
/// used by the `msropm_serve` daemon, the wire benches, and the
/// cross-front-end parity tests, so adding a front end means extending
/// exactly one enum.
pub enum Frontend {
    /// Thread-per-connection front end ([`wire::WireServer`]).
    Threads(wire::WireServer),
    /// Nonblocking event-loop front end ([`reactor::ReactorServer`]).
    Reactor(reactor::ReactorServer),
    /// HTTP/1.1 + JSON gateway front end ([`http::HttpServer`]).
    Http(http::HttpServer),
}

impl Frontend {
    /// Which kind is serving (as carried in stats replies).
    pub fn kind(&self) -> proto::FrontendKind {
        match self {
            Frontend::Threads(_) => proto::FrontendKind::Threads,
            Frontend::Reactor(_) => proto::FrontendKind::Reactor,
            Frontend::Http(_) => proto::FrontendKind::Http,
        }
    }

    /// The bound address (reports the ephemeral port after `bind(":0")`).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            Frontend::Threads(s) => s.local_addr(),
            Frontend::Reactor(s) => s.local_addr(),
            Frontend::Http(s) => s.local_addr(),
        }
    }

    /// Current server-wide counters (the `stats` verb's payload).
    pub fn stats(&self) -> proto::WireStats {
        match self {
            Frontend::Threads(s) => s.stats(),
            Frontend::Reactor(s) => s.stats(),
            Frontend::Http(s) => s.stats(),
        }
    }

    /// Report frames actually handed to a connection writer (for the
    /// HTTP front end: report bodies served to a poll, each counted
    /// once).
    pub fn reports_streamed(&self) -> u64 {
        match self {
            Frontend::Threads(s) => s.reports_streamed(),
            Frontend::Reactor(s) => s.reports_streamed(),
            Frontend::Http(s) => s.reports_streamed(),
        }
    }

    /// Graceful drain of whichever front end is serving.
    pub fn shutdown(self) {
        match self {
            Frontend::Threads(s) => s.shutdown(),
            Frontend::Reactor(s) => s.shutdown(),
            Frontend::Http(s) => s.shutdown(),
        }
    }
}

impl From<wire::WireServer> for Frontend {
    fn from(server: wire::WireServer) -> Frontend {
        Frontend::Threads(server)
    }
}

impl From<reactor::ReactorServer> for Frontend {
    fn from(server: reactor::ReactorServer) -> Frontend {
        Frontend::Reactor(server)
    }
}

impl From<http::HttpServer> for Frontend {
    fn from(server: http::HttpServer) -> Frontend {
        Frontend::Http(server)
    }
}

/// One boot path for every front end: a [`ServerConfig::builder`] chain
/// ending in [`FrontendBuilder::bind`]. The builder exposes the full
/// superset of front-end knobs (worker pool, quotas, event-loop count,
/// write-buffer cap); knobs a front end does not use are ignored by it,
/// so `msropm_serve` parses flags once and a new transport is one
/// [`proto::FrontendKind`] arm here — not another copy of the boot
/// sequence.
///
/// ```no_run
/// use msropm_server::{proto::FrontendKind, ServerConfig, ShardPolicy};
///
/// let server = ServerConfig::builder()
///     .frontend(FrontendKind::Http)
///     .workers(4)
///     .shards(ShardPolicy::Auto)
///     .bind("127.0.0.1:0")?;
/// println!("serving on {}", server.local_addr());
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrontendBuilder {
    kind: proto::FrontendKind,
    config: reactor::ReactorConfig,
}

impl Default for FrontendBuilder {
    fn default() -> Self {
        FrontendBuilder {
            kind: proto::FrontendKind::Threads,
            config: reactor::ReactorConfig::default(),
        }
    }
}

impl FrontendBuilder {
    /// Which front end [`FrontendBuilder::bind`] boots (default:
    /// threads).
    pub fn frontend(mut self, kind: proto::FrontendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Worker threads in the backing pool.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.wire.server.workers = workers;
        self
    }

    /// Job-queue capacity of the backing pool.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.wire.server.queue_capacity = capacity;
        self
    }

    /// Compiled-problem cache slots.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.wire.server.cache_capacity = capacity;
        self
    }

    /// Intra-job lane-sharding policy.
    pub fn shards(mut self, policy: ShardPolicy) -> Self {
        self.config.wire.server.shards = policy;
        self
    }

    /// Force every job onto one kernel backend (see
    /// [`ServerConfig::backend`]).
    pub fn backend(mut self, backend: KernelBackend) -> Self {
        self.config.wire.server.backend = Some(backend);
        self
    }

    /// Per-tenant cap on jobs submitted and not yet terminal.
    pub fn max_inflight_jobs(mut self, cap: usize) -> Self {
        self.config.wire.max_inflight_jobs = cap;
        self
    }

    /// Per-tenant cap on the summed lane count of non-terminal jobs.
    pub fn max_queued_lanes(mut self, cap: usize) -> Self {
        self.config.wire.max_queued_lanes = cap;
        self
    }

    /// Cap on concurrently served connections.
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.config.wire.max_connections = cap;
        self
    }

    /// Event-loop threads (reactor front end only).
    pub fn loops(mut self, loops: usize) -> Self {
        self.config.loops = loops;
        self
    }

    /// Per-connection cap on buffered unsent bytes (reactor and HTTP
    /// front ends).
    pub fn max_write_buffer(mut self, cap: usize) -> Self {
        self.config.max_write_buffer = cap;
        self
    }

    /// Force the portable `poll(2)` backend instead of epoll (reactor
    /// and HTTP front ends).
    pub fn poll_backend(mut self, force: bool) -> Self {
        self.config.poll_backend = force;
        self
    }

    /// The full session/transport config the chain has accumulated.
    pub fn config(&self) -> &reactor::ReactorConfig {
        &self.config
    }

    /// Binds `addr` and boots the selected front end.
    ///
    /// # Errors
    ///
    /// Propagates bind and poller-creation failures.
    pub fn bind<A: std::net::ToSocketAddrs>(self, addr: A) -> std::io::Result<Frontend> {
        match self.kind {
            proto::FrontendKind::Threads => {
                wire::WireServer::bind(addr, self.config.wire).map(Frontend::from)
            }
            proto::FrontendKind::Reactor => {
                reactor::ReactorServer::bind(addr, self.config).map(Frontend::from)
            }
            proto::FrontendKind::Http => http::HttpServer::bind(
                addr,
                http::HttpConfig {
                    wire: self.config.wire,
                    max_write_buffer: self.config.max_write_buffer,
                    poll_backend: self.config.poll_backend,
                },
            )
            .map(Frontend::from),
        }
    }
}

impl ServerConfig {
    /// Starts a [`FrontendBuilder`] chain — the one boot API every
    /// serving binary and test goes through.
    pub fn builder() -> FrontendBuilder {
        FrontendBuilder::default()
    }
}

fn spawn_worker(shared: &Arc<Shared>, name: String) -> thread::JoinHandle<()> {
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(&shared))
        .expect("spawn worker thread")
}

/// Reaps dead workers and respawns them (rate-bounded), keeping the
/// pool at full strength through panicking jobs. A worker can only die
/// from a panic escaping the supervised solve region (its job then
/// surfaces as `WorkerDied` through the hook's `Drop`); the respawned
/// thread picks up the backlog with a fresh arena. Exits once the
/// queue closes — workers then finish naturally and are joined by
/// [`JobServer::shutdown`].
fn supervisor_loop(shared: &Arc<Shared>) {
    let mut recent_restarts: VecDeque<Instant> = VecDeque::new();
    let mut respawned = 0u64;
    while !shared.queue.is_closed() {
        thread::sleep(SUPERVISOR_POLL);
        let now = Instant::now();
        while recent_restarts
            .front()
            .is_some_and(|t| now.duration_since(*t) > RESTART_WINDOW)
        {
            recent_restarts.pop_front();
        }
        let mut workers = lock_unpoisoned(&shared.workers);
        let mut i = 0;
        while i < workers.len() {
            if !workers[i].is_finished() {
                i += 1;
                continue;
            }
            if recent_restarts.len() >= MAX_RESTARTS_PER_WINDOW {
                break; // storm-bounded: retry this one on a later tick
            }
            let dead = workers.swap_remove(i);
            let _ = dead.join(); // reap; the panic already surfaced via its job
            if shared.queue.is_closed() {
                continue; // shutting down: a natural exit, not a death
            }
            respawned += 1;
            workers.push(spawn_worker(shared, format!("msropm-worker-r{respawned}")));
            shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
            recent_restarts.push_back(Instant::now());
        }
    }
}

/// Best-effort stringification of a caught panic payload (`&str` and
/// `String` payloads cover `panic!`/`assert!`; anything else gets a
/// placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "solve panicked (non-string payload)".to_string()
    }
}

fn worker_loop(shared: &Shared) {
    let mut arena = ShardedArena::new();
    while let Some(mut envelope) = shared.queue.pop() {
        // Deployment-wide backend override, applied before the job's
        // config is used anywhere: the problem-cache key is derived
        // from the (overridden) config, so an f64 submission against a
        // `--backend fixed` server resolves to the fixed-point machine,
        // never a stale float compile.
        if let Some(backend) = shared.backend {
            envelope.job.force_backend(backend);
        }
        // Cancellation observed at pickup: skip all work. (Stage-boundary
        // checks inside the supervised run below cover mid-run cancels.)
        if envelope.cancel.is_cancelled() {
            envelope.status.set(JobState::Cancelled);
            shared.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            faultinject::maybe_delay_completion();
            envelope.reply.deliver(JobCompletion::Cancelled);
            continue;
        }
        // Queue-wait deadline: a job that expired before pickup is shed
        // without compiling or solving anything.
        if envelope
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            envelope.status.set(JobState::Failed);
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            faultinject::maybe_delay_completion();
            envelope.reply.deliver(JobCompletion::DeadlineExceeded);
            continue;
        }
        envelope.status.set(JobState::Running);
        // Chaos hook: fires OUTSIDE the catch_unwind region, so the
        // panic kills this thread mid-job — the envelope drops during
        // unwind, its hook fires `WorkerDied`, and the supervisor
        // respawns the worker. (Never fires unless a test armed it.)
        faultinject::maybe_kill_worker();
        // Shard width is decided at pickup from the policy and the
        // *current* backlog: a queue that piled up while this worker was
        // busy narrows the next job toward plain cross-job concurrency.
        let shards = shared
            .shard_policy
            .width(envelope.job.lanes.len(), shared.queue.len());
        if shards > 1 {
            shared.jobs_sharded.fetch_add(1, Ordering::Relaxed);
        }
        shared
            .shard_width_max
            .fetch_max(shards as u64, Ordering::Relaxed);
        let started_at = Instant::now();
        // The entire cache-lookup/compile/solve region is supervised:
        // a panicking solve (bad job, solver bug, injected fault)
        // becomes a typed `Failed` outcome and the worker lives on.
        // `AssertUnwindSafe` is sound here: on a caught panic the arena
        // is discarded and rebuilt, the cache's mutations are
        // complete-or-absent map operations (and its lock recovers from
        // poison), and the envelope stays outside the closure.
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            faultinject::maybe_panic_in_solve();
            // Double-checked caching: only the (cheap, verified) lookup
            // and the insert run under the lock. A miss compiles
            // *unlocked*, so a cold burst never serializes the pool on
            // one worker's compilation; if two workers race the same
            // problem, `intern` keeps the first resident copy
            // (compilations are bit-identical, so which one wins is
            // unobservable).
            let machine = {
                let mut cache = lock_unpoisoned(&shared.cache);
                cache.lookup_problem(
                    &envelope.graph,
                    &envelope.job.config,
                    envelope.problem_fingerprint,
                )
            };
            let machine = machine.unwrap_or_else(|| {
                let compiled = Arc::new(msropm_core::Msropm::new(
                    &envelope.graph,
                    envelope.job.config,
                ));
                let mut cache = lock_unpoisoned(&shared.cache);
                cache.intern_problem(compiled, envelope.problem_fingerprint)
            });
            // Solve outside the cache lock too: workers never serialize
            // on each other's integrations. The abort check combines
            // cancellation with the job's deadline — both land at stage
            // boundaries only (cross-shard joins on the sharded path),
            // so completed runs stay bit-identical at any width.
            envelope.job.run_sharded_with(
                &machine,
                shards,
                &mut arena,
                msropm_core::pool::global(),
                || {
                    envelope.cancel.is_cancelled()
                        || envelope
                            .deadline
                            .is_some_and(|deadline| Instant::now() >= deadline)
                },
            )
        }));
        let completion = match result {
            Err(payload) => {
                // The arena may hold a half-written solve (and a shard
                // panic drops its in-flight arenas); rebuild so the next
                // job starts from clean scratch state.
                arena = ShardedArena::new();
                envelope.status.set(JobState::Failed);
                shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                JobCompletion::Failed {
                    message: panic_message(payload.as_ref()),
                }
            }
            Ok(None) if envelope.cancel.is_cancelled() => {
                // Cancelled at a stage boundary: the run was abandoned
                // and no report exists (nor ever will for this job).
                envelope.status.set(JobState::Cancelled);
                shared.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                JobCompletion::Cancelled
            }
            Ok(None) => {
                // Not cancelled, so the abort closure fired on the
                // deadline: abandoned at a stage boundary.
                envelope.status.set(JobState::Failed);
                shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                JobCompletion::DeadlineExceeded
            }
            Ok(Some(report)) => {
                let finished_at = Instant::now();
                shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
                envelope.status.set(JobState::Done);
                JobCompletion::Done(JobOutcome {
                    report,
                    timing: JobTiming {
                        queued: started_at - envelope.submitted_at,
                        service: finished_at - started_at,
                    },
                })
            }
        };
        faultinject::maybe_delay_completion();
        envelope.reply.deliver(completion);
    }
}
